"""Shared benchmark infrastructure.

Every experiment regenerator uses the same scaled-down cells, built once
per pytest session and memoized here.  The scale policy is DESIGN.md §4:
cells of a few hundred machines, full 29/31-day horizons, the 26-group
scheme preserved via proportional bin widths.  Absolute numbers therefore
differ from the paper's full-scale runs; every bench asserts the *shape*
claims (who wins, by roughly what factor, where the bands lie) and prints
the paper-formatted table for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core import (BENCH_CONFIG, ContinuousLearningDriver,
                        FullyRetrainModel, GrowingModel, baseline_suite)
from repro.datasets import build_step_datasets
from repro.trace import generate_cell

#: Benchmark scale knobs (one place to tune total runtime).
SCALE = 0.03
TASKS_PER_DAY = 1500
SEED = 2025

CELLS = ("clusterdata-2011", "clusterdata-2019a", "clusterdata-2019c",
         "clusterdata-2019d")

#: Machine-readable benchmark results (one JSON object per artifact,
#: one key per bench section) — the perf trajectories tracked across
#: PRs; CI uploads both files as artifacts.  Override the locations
#: with the ``BENCH_SERVE_JSON`` / ``BENCH_TRAIN_JSON`` environment
#: variables.
_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_SERVE_JSON = Path(os.environ.get(
    "BENCH_SERVE_JSON", _REPO_ROOT / "BENCH_serve.json"))
BENCH_TRAIN_JSON = Path(os.environ.get(
    "BENCH_TRAIN_JSON", _REPO_ROOT / "BENCH_train.json"))


def record_bench(path: Path, section: str, payload: dict) -> Path:
    """Merge one bench section into the JSON artifact at ``path``.

    Sections written by earlier tests in the same run (or earlier runs)
    are preserved unless overwritten, so a full bench session leaves
    one complete JSON document behind.
    """

    results: dict = {}
    if path.exists():
        try:
            results = json.loads(path.read_text())
        except (OSError, ValueError):
            results = {}
    results[section] = dict(payload, recorded_at=time.time())
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def record_serve_bench(section: str, payload: dict) -> Path:
    """One serving-side section into :data:`BENCH_SERVE_JSON`."""

    return record_bench(BENCH_SERVE_JSON, section, payload)


def record_train_bench(section: str, payload: dict) -> Path:
    """One training-side section into :data:`BENCH_TRAIN_JSON`."""

    return record_bench(BENCH_TRAIN_JSON, section, payload)


@lru_cache(maxsize=None)
def bench_cell(name: str, tasks_per_day: int = TASKS_PER_DAY,
               seed: int = SEED):
    """One synthetic cell at bench scale (memoized per session)."""

    return generate_cell(name, scale=SCALE, seed=seed,
                         tasks_per_day=tasks_per_day)


@lru_cache(maxsize=None)
def bench_pipeline(name: str, encoding: str = "co-vv",
                   tasks_per_day: int = TASKS_PER_DAY, seed: int = SEED):
    """The Figure 1 pipeline output for one bench cell (memoized)."""

    return build_step_datasets(bench_cell(name, tasks_per_day, seed),
                               encoding=encoding,
                               rng=np.random.default_rng(seed))


def ann_models(seed: int = SEED):
    """Fresh Growing + Fully-Retrain pair under the bench config."""

    return {
        "Growing": GrowingModel(BENCH_CONFIG,
                                rng=np.random.default_rng(seed + 1)),
        "Fully Retrain": FullyRetrainModel(
            BENCH_CONFIG, rng=np.random.default_rng(seed + 2)),
    }


def all_models(seed: int = SEED):
    """The full Table X model set (2 ANN variants + 4 baselines)."""

    models = ann_models(seed)
    models.update(baseline_suite(BENCH_CONFIG,
                                 rng=np.random.default_rng(seed + 3)))
    return models


@lru_cache(maxsize=None)
def bench_run(name: str, full_suite: bool = False, seed: int = SEED):
    """Continuous-learning run over one cell (memoized across benches)."""

    result = bench_pipeline(name, seed=seed)
    models = all_models(seed) if full_suite else ann_models(seed)
    driver = ContinuousLearningDriver(models, batch_size=BENCH_CONFIG.batch_size,
                                      rng=np.random.default_rng(seed))
    return driver.run(result.steps, cell_name=name)
