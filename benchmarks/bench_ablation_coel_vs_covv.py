"""Ablation — growing model on CO-EL vs CO-VV encodings (paper §VI).

"The growing model approach worked well for the CO-VV dataset but not for
CO-EL, as CO-VV features can be grouped for generalization, while CO-EL's
label-encoded COs lack overlapping properties for effective
generalization."

We run the identical growing model over both encodings of the same cell.
CO-VV completes every step inside the paper's thresholds; CO-EL cannot
generalize to collapsed-CO columns unseen in training (a rare pinned-node
CO appearing only in the test split leaves its one-hot column cold), so
it either fails the Group-0 F1 threshold outright or burns fail-fast
retraining budget.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData
from repro.errors import TrainingFailedError

from _common import bench_pipeline


def run_encoding(encoding: str, seed: int) -> dict:
    result = bench_pipeline("clusterdata-2019c", encoding=encoding)
    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(seed))
    total_epochs = 0
    completed = 0
    failed_steps = 0
    for i, step in enumerate(result.steps):
        if step.n_samples < 8:
            continue
        dataset = DatasetData(step.X, step.y,
                              batch_size=BENCH_CONFIG.batch_size,
                              rng=np.random.default_rng(100 + i))
        try:
            outcome = model.fit_step(dataset)
            total_epochs += outcome.epochs
            completed += 1
        except TrainingFailedError:
            failed_steps += 1
            total_epochs += (BENCH_CONFIG.epochs_limit
                             * BENCH_CONFIG.max_training_attempts)
    return {"encoding": encoding, "completed": completed,
            "failed": failed_steps, "epochs": total_epochs,
            "width": result.registry.features_count}


def test_ablation_coel_vs_covv(benchmark):
    covv = run_encoding("co-vv", seed=1)
    coel = run_encoding("co-el", seed=1)

    rows = [[r["encoding"], r["width"], r["completed"], r["failed"],
             r["epochs"]] for r in (covv, coel)]
    print()
    print(render_table(
        ["Encoding", "Final width", "Steps completed", "Steps failed",
         "Total epochs (failures at cap)"], rows,
        title="ABLATION — GROWING MODEL ON CO-EL vs CO-VV "
              "(clusterdata-2019c)"))

    # CO-VV: every step completes inside the thresholds.
    assert covv["failed"] == 0
    assert covv["completed"] >= 6
    # CO-EL: the growing approach breaks down (paper §VI) — at least one
    # step cannot reach the thresholds, and the total training budget is
    # a multiple of CO-VV's.
    assert coel["failed"] >= 1
    assert coel["epochs"] > 3 * covv["epochs"]

    # Benchmark: one CO-VV step (the healthy path).
    result = bench_pipeline("clusterdata-2019c")
    step = result.steps[3]

    def one_step():
        model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(9))
        return model.fit_step(DatasetData(
            step.X, step.y, batch_size=BENCH_CONFIG.batch_size,
            rng=np.random.default_rng(3)))

    benchmark.pedantic(one_step, rounds=1, iterations=1)
