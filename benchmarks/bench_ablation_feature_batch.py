"""Ablation — how many features can be added at once? (paper §VI)

"Adding new features to the ANN should be done gradually.  Experimentation
showed that adding over 40–50 features at once often reduces accuracy and
forces full model retraining."

A controlled lookup workload isolates the variable: a pre-trained model
(80 value columns → 12 groups) absorbs a growth step that appends K new
value columns (each mapping to an existing group) with a proportional
share of new-value rows.  Reported: growth epochs, fail-fast attempts,
accuracy.  The shape claim: growth cost rises with K, and large K costs a
multiple of small K.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData
from repro.errors import TrainingFailedError

D0 = 80
N_ROWS = 2500
BATCHES = (8, 16, 32, 64, 128)


def lookup_rows(rng, n, labels_of):
    """One-hot rows over ``len(labels_of)`` value columns."""

    v = rng.integers(0, len(labels_of), size=n)
    X = np.zeros((n, len(labels_of)), dtype=np.float32)
    X[np.arange(n), v] = 1.0
    return X, labels_of[v].astype(np.int64)


def run_growth(K: int, seed: int) -> tuple[int, int, float, bool]:
    """(growth epochs, attempts, accuracy, succeeded) for K new columns."""

    rng = np.random.default_rng(seed)
    labels0 = rng.integers(0, 12, size=D0)
    labels0[:4] = 0  # a small Group 0 presence
    X0, y0 = lookup_rows(rng, N_ROWS, labels0)
    ds0 = DatasetData(X0, y0, batch_size=BENCH_CONFIG.batch_size,
                      rng=np.random.default_rng(seed + 1))

    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(seed + 2))
    model.fit_step(ds0)

    labels1 = np.concatenate([labels0, rng.integers(0, 12, size=K)])
    X_new, y_new = lookup_rows(np.random.default_rng(seed + 3), N_ROWS,
                               labels1)
    X_old = np.hstack([X0, np.zeros((N_ROWS, K), np.float32)])
    ds1 = DatasetData(np.vstack([X_old, X_new]),
                      np.concatenate([y0, y_new]),
                      batch_size=BENCH_CONFIG.batch_size,
                      rng=np.random.default_rng(seed + 4))
    try:
        outcome = model.fit_step(ds1)
        return outcome.epochs, outcome.attempts, outcome.accuracy, True
    except TrainingFailedError:
        return BENCH_CONFIG.epochs_limit * BENCH_CONFIG.max_training_attempts, \
            BENCH_CONFIG.max_training_attempts, 0.0, False


def test_ablation_feature_batch(benchmark):
    seeds = (11, 12, 13)
    rows = []
    mean_epochs = {}
    for K in BATCHES:
        results = [run_growth(K, seed) for seed in seeds]
        epochs = [r[0] for r in results]
        attempts = [r[1] for r in results]
        accs = [r[2] for r in results if r[3]]
        failures = sum(1 for r in results if not r[3])
        mean_epochs[K] = float(np.mean(epochs))
        rows.append([K, f"{np.mean(epochs):.1f}", f"{np.mean(attempts):.1f}",
                     f"{np.mean(accs):.4f}" if accs else "—", failures])

    print()
    print(render_table(
        ["New features at once", "Growth epochs (avg)", "Attempts (avg)",
         "Accuracy (avg)", "Hard failures"], rows,
        title="ABLATION — FEATURE-ADDITION BATCH SIZE (paper §VI: >40–50 "
              "at once degrades)"))

    # Shape: integrating a large feature batch costs a multiple of a small
    # one (the paper's gradual-addition recommendation).
    assert mean_epochs[BATCHES[-1]] >= mean_epochs[BATCHES[0]] * 1.5
    # Monotone-ish trend across the sweep endpoints and midpoint.
    assert mean_epochs[64] >= mean_epochs[8]

    benchmark.pedantic(run_growth, args=(16, 99), rounds=1, iterations=1)
