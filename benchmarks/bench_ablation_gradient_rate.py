"""Ablation — the pre-trained gradient multiplier (paper §IV.B).

The paper: gradients of pre-trained fc1 columns are scaled by 0.1; "a
scaling factor above 20–30% negated training effects, while zeroing
gradients for pre-trained weights reduced model accuracy".

We sweep rate ∈ {0.0, 0.1, 0.3, 1.0} over the full 2019c step sequence.
Expected shape at bench scale: rate 0 is catastrophic (pre-trained
columns frozen → the model cannot rebalance → repeated fail-fast
retraining, an order of magnitude more epochs), while 0.1 performs at the
paper's operating point.  A documented deviation: under Adam's
per-parameter normalization a *uniform* non-zero scaling is largely
neutralized, so 0.1 / 0.3 / 1.0 behave alike here (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData
from repro.errors import TrainingFailedError

from _common import bench_pipeline

RATES = (0.0, 0.1, 0.3, 1.0)


def run_rate(rate: float, seed: int, steps) -> tuple[int, float]:
    config = BENCH_CONFIG.with_overrides(pretrained_gradient_rate=rate)
    model = GrowingModel(config, rng=np.random.default_rng(seed))
    total_epochs = 0
    accuracy = 0.0
    for i, step in enumerate(steps):
        dataset = DatasetData(step.X, step.y,
                              batch_size=config.batch_size,
                              rng=np.random.default_rng(50 + i))
        try:
            outcome = model.fit_step(dataset)
        except TrainingFailedError:
            total_epochs += config.epochs_limit * config.max_training_attempts
            continue
        total_epochs += outcome.epochs
        accuracy = outcome.accuracy
    return total_epochs, accuracy


def test_ablation_gradient_rate(benchmark):
    result = bench_pipeline("clusterdata-2019c")
    steps = [s for s in result.steps if s.n_samples >= 8]
    seeds = (1, 2)

    rows = []
    mean_epochs = {}
    for rate in RATES:
        outcomes = [run_rate(rate, seed, steps) for seed in seeds]
        epochs = [o[0] for o in outcomes]
        accs = [o[1] for o in outcomes]
        mean_epochs[rate] = float(np.mean(epochs))
        rows.append([rate, f"{np.mean(epochs):.0f}",
                     f"{np.mean(accs):.4f}"])

    print()
    print(render_table(
        ["pretrained_gradient_rate", "Total epochs (avg)",
         "Final accuracy (avg)"], rows,
        title="ABLATION — PRE-TRAINED GRADIENT MULTIPLIER "
              "(paper operating point: 0.1)"))
    print("\nNote: 0.1–1.0 behave alike under Adam's per-parameter "
          "normalization (uniform gradient scaling is scale-invariant "
          "there); the damping's decisive effect is vs. rate 0.")

    # Zeroing pre-trained gradients is catastrophic (paper: reduces
    # accuracy; here it also burns fail-fast retrains).
    assert mean_epochs[0.0] > 3 * mean_epochs[0.1]
    # The paper's operating point is efficient.
    assert mean_epochs[0.1] <= mean_epochs[1.0] * 1.3

    benchmark.pedantic(run_rate, args=(0.1, 7, steps[:4]), rounds=1,
                       iterations=1)
