"""Figure 1 — generation of experimental datasets with AGOCS.

Benchmarks the full trace→dataset pipeline (replay, matching, grouping,
encoding) and prints the dataset-growth journal that the figure's
CO-EL / CO-VV outputs correspond to.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.datasets import build_step_datasets, group_distribution
from repro.trace import generate_cell

from _common import SEED, bench_cell


def test_fig01_dataset_pipeline(benchmark):
    cell = bench_cell("clusterdata-2019c")

    covv = build_step_datasets(cell, rng=np.random.default_rng(SEED))
    coel = build_step_datasets(cell, encoding="co-el",
                               rng=np.random.default_rng(SEED))

    rows = []
    for vv_step, el_step in zip(covv.steps, coel.steps):
        rows.append([vv_step.step_index, vv_step.label,
                     vv_step.n_samples, vv_step.features_after,
                     el_step.features_after])
    print()
    print(render_table(
        ["Step", "Sim time", "Tasks (cum.)", "CO-VV features",
         "CO-EL labels"], rows,
        title="FIG. 1 — AGOCS DATASET GENERATION (both encodings, "
              "clusterdata-2019c)"))
    dist = group_distribution(covv.final.y)
    print(f"\nGroup 0 share: {dist[0] / covv.final.n_samples:.3%} "
          f"(paper band: 0.03%–1.17%)")

    # Both encodings see the same tasks; labels are encoding-independent.
    assert covv.final.n_samples == coel.final.n_samples
    np.testing.assert_array_equal(covv.final.y, coel.final.y)
    # Group-0 incidence inside (a tolerance of) the paper band.
    share = dist[0] / covv.final.n_samples
    assert 0.0002 <= share <= 0.03

    # Benchmark: the full pipeline on a fresh, smaller cell.
    small = generate_cell("2019c", scale=0.02, seed=SEED + 1, days=6,
                          tasks_per_day=600)

    def run():
        return build_step_datasets(small,
                                   rng=np.random.default_rng(0))

    result = benchmark(run)
    assert result.final.n_samples > 0
