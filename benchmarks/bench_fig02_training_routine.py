"""Figure 2 — the CTL-based incrementally expanding training routine.

Benchmarks one full growth step of the routine the figure diagrams:
restore state dict → detect wider feature array → zero-pad fc1.weight →
freeze fc2 → damped-gradient training → early stop on the acceptance
thresholds.  Asserts each stage's observable effect.
"""

from __future__ import annotations

import numpy as np

from repro.core import BENCH_CONFIG, GrowingModel
from repro.core.growing import build_model, extend_state_dict
from repro.core.evaluate import evaluate_model
from repro.datasets import DatasetData

from _common import bench_pipeline


def test_fig02_training_routine(benchmark):
    result = bench_pipeline("clusterdata-2019c")
    steps = result.steps
    pretrain_step = steps[2]
    growth_step = steps[3]
    assert growth_step.features_after > pretrain_step.features_after

    # Stage 0: initial model on the pre-growth dataset.
    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(11))
    ds_pre = DatasetData(pretrain_step.X, pretrain_step.y,
                         batch_size=BENCH_CONFIG.batch_size,
                         rng=np.random.default_rng(1))
    initial = model.fit_step(ds_pre)
    assert initial.from_scratch
    saved_state = model.model.state_dict()

    ds_grow = DatasetData(growth_step.X, growth_step.y,
                          batch_size=BENCH_CONFIG.batch_size,
                          rng=np.random.default_rng(2))

    # Stage 1 (Listing 2): pad within the state dict; equivalence on old
    # data must hold exactly.
    padded = extend_state_dict(saved_state, ds_grow.features_count)
    probe = build_model(ds_grow.features_count, BENCH_CONFIG,
                        np.random.default_rng(0))
    probe.load_state_dict(padded)
    widened_old = ds_pre.widened(ds_grow.features_count)
    before = evaluate_model(ds_pre.X_test, ds_pre.y_test, model.model)
    after = evaluate_model(widened_old.X_test, widened_old.y_test, probe)
    assert abs(before.accuracy - after.accuracy) < 1e-9

    # Stage 2 (Listing 3): damped transfer training to thresholds.
    outcome = model.fit_step(ds_grow)
    assert outcome.grew and not outcome.from_scratch
    assert outcome.accuracy > BENCH_CONFIG.accepted_accuracy
    assert outcome.epochs <= initial.epochs * 2

    print()
    print("FIG. 2 — TRAINING ROUTINE STAGES")
    print(f"  initial training   : {initial.epochs} epochs → "
          f"acc {initial.accuracy:.4f}")
    print(f"  restore + pad      : {pretrain_step.features_after} → "
          f"{growth_step.features_after} features "
          f"(old-data accuracy preserved: {after.accuracy:.4f})")
    print(f"  damped growth step : {outcome.epochs} epochs → "
          f"acc {outcome.accuracy:.4f}, F1_0 {outcome.group_0_f1}")

    # Benchmark unit: a complete growth step (restore→pad→train→evaluate).
    def growth_cycle():
        m = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(11))
        m.model = build_model(ds_pre.features_count, BENCH_CONFIG,
                              np.random.default_rng(4))
        m.model.load_state_dict(saved_state)
        return m.fit_step(ds_grow)

    out = benchmark.pedantic(growth_cycle, rounds=1, iterations=1)
    assert out.features_after == ds_grow.features_count
