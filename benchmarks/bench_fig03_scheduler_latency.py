"""Figure 3 — enhanced cluster job scheduling with the Task CO Analyzer.

Replays the same cell twice: once through the plain main scheduler, once
with the CTLM-backed Task CO Analyzer routing predicted-restrictive tasks
to the High-Priority Scheduler.  The paper's claim: the enhanced schema
"minimizes task scheduling latency by prioritizing tasks with fewer
suitable nodes" without slowing the main path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData
from repro.sim import SimulationConfig, SimulationEngine, TaskCOAnalyzer

from _common import bench_cell, bench_pipeline

SIM = SimulationConfig(scan_budget=24)


@pytest.fixture(scope="module")
def trained_analyzer():
    result = bench_pipeline("clusterdata-2019c")
    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(5))
    for step in result.steps:
        if step.n_samples < 8:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    return TaskCOAnalyzer(model, result.registry, route_threshold=0)


def test_fig03_scheduler_latency(trained_analyzer, benchmark):
    cell = bench_cell("clusterdata-2019c")

    baseline = SimulationEngine(SIM).run(cell)
    enhanced = SimulationEngine(SIM, analyzer=trained_analyzer).run(cell)

    b_restr = baseline.recorder.summary_restrictive()
    e_restr = enhanced.recorder.summary_restrictive()
    b_all = baseline.recorder.summary_all()
    e_all = enhanced.recorder.summary_all()

    rows = [
        ["restrictive (Group 0)", b_restr.count,
         f"{b_restr.mean_s:.2f}", f"{b_restr.p95_s:.2f}",
         f"{e_restr.mean_s:.2f}", f"{e_restr.p95_s:.2f}"],
        ["all tasks", b_all.count, f"{b_all.mean_s:.2f}",
         f"{b_all.p95_s:.2f}", f"{e_all.mean_s:.2f}",
         f"{e_all.p95_s:.2f}"],
    ]
    print()
    print(render_table(
        ["Population", "n", "base mean s", "base p95 s",
         "enhanced mean s", "enhanced p95 s"], rows,
        title="FIG. 3 — SCHEDULING LATENCY WITH / WITHOUT THE TASK CO "
              "ANALYZER (clusterdata-2019c)"))
    speedup = enhanced.restrictive_speedup_vs(baseline)
    analyzer = trained_analyzer
    print(f"\nrestrictive-task speedup: {speedup:.1f}×; analyzer routed "
          f"{analyzer.routed}/{analyzer.predictions} constrained tasks; "
          f"preemptions: {enhanced.hp_stats.preemptions}")

    # Shape claims.
    assert b_restr.count > 0 and e_restr.count > 0
    assert speedup > 3.0, "restrictive latency must drop dramatically"
    assert e_all.mean_s <= b_all.mean_s * 1.15, \
        "main-path latency must not degrade"
    # The high-priority path really ran.
    assert enhanced.hp_stats.scheduled > 0

    # Benchmark unit: a half-day replay through the enhanced stack.
    from repro.trace import MICROS_PER_DAY

    def half_day():
        return SimulationEngine(SIM, analyzer=trained_analyzer).run(
            cell, limit_time=MICROS_PER_DAY // 2)

    result = benchmark.pedantic(half_day, rounds=1, iterations=1)
    assert result.tasks_submitted > 0
