"""Durability — checkpoint write/restore latency, warm-restart time.

PR 10 made every serving cell durable: published models are
checkpointed off-path into a versioned :class:`~repro.serve.CheckpointStore`
and a restarted cell serves warm, at the restored version, before any
retraining.  Self-healing only matters if recovery is *fast*, so this
bench puts latency floors on the whole durability path:

* checkpoint **write** (encode + tmp + fsync + rename, as the async
  checkpointer does it off the publish path): p50 under
  ``WRITE_CEILING_MS``;
* checkpoint **restore** (scan + CRC-validate + decode the newest
  file): p50 under ``RESTORE_CEILING_MS``;
* **warm restart** — the operational claim — cold construction of a
  :class:`~repro.serve.ClassificationService` over an existing state
  dir through its *first completed classification*, in under
  ``WARM_RESTART_CEILING_S``, serving at exactly the pre-crash
  version.

The ceilings are deliberately loose for shared CI hosts (fsync on CI
disks is noisy); the recorded ``durability`` section of
``BENCH_serve.json`` tracks the real medians across PRs.

Run:  python -m pytest benchmarks/bench_serve_durability.py -q -s \\
          --benchmark-disable
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData
from repro.serve import CellCheckpoint, CheckpointStore, ClassificationService

from _common import SEED, bench_pipeline, record_serve_bench

N_WRITES = 12
N_RESTORES = 12
#: Loose CI-host ceilings — the medians recorded into BENCH_serve.json
#: are the numbers that matter; these only catch order-of-magnitude
#: regressions (an accidental sync publish-path write, a quadratic
#: decode, a restore that retrains instead of restoring).
WRITE_CEILING_MS = 500.0
RESTORE_CEILING_MS = 500.0
WARM_RESTART_CEILING_S = 10.0


@pytest.fixture(scope="module")
def deployment():
    """Pipeline output + a model trained on the early growth windows."""

    result = bench_pipeline("clusterdata-2019c")
    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(SEED + 9))
    for step in result.steps[:3]:
        if step.n_samples < 8 or len(np.unique(step.y)) < 2:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    assert model.features_count is not None
    return model, result


def _checkpoint(model, result, version: int) -> CellCheckpoint:
    return CellCheckpoint(
        version=version,
        features_count=model.features_count,
        model_bytes=model.state_bytes(),
        registry_features=result.registry.snapshot(),
        replay_labeled=tuple(
            (task, int(label))
            for task, label in zip(result.tasks[:256], result.labels[:256])))


def test_durability_floors(deployment, tmp_path, benchmark):
    model, result = deployment

    # --- Checkpoint write latency (the off-path save the async
    # checkpointer performs after every publish).
    store = CheckpointStore(tmp_path / "writes", retain=4)
    write_ms = []
    for i in range(N_WRITES):
        t0 = time.perf_counter()
        store.save(_checkpoint(model, result, version=i + 1))
        write_ms.append((time.perf_counter() - t0) * 1e3)
    write_p50 = statistics.median(write_ms)
    checkpoint_bytes = max(p.stat().st_size for p in store.checkpoint_paths())

    # --- Restore latency (scan + validate + decode the newest file).
    restore_ms = []
    for _ in range(N_RESTORES):
        t0 = time.perf_counter()
        restored = store.load_latest()
        restore_ms.append((time.perf_counter() - t0) * 1e3)
        assert restored is not None and restored.version == N_WRITES
    restore_p50 = statistics.median(restore_ms)

    # --- Warm restart: a served cell checkpoints on close; a fresh
    # service over the same dir must answer its first classification
    # at the restored version, fast.
    state_dir = tmp_path / "cell"
    first = ClassificationService(model, result.registry, trainer=False,
                                  state_dir=str(state_dir))
    with first:
        first.publish(model)  # v2 -> durable on close()
    served_version = first.model_version

    t0 = time.perf_counter()
    second = ClassificationService(model, result.registry.__class__(),
                                   trainer=False, state_dir=str(state_dir))
    restore_done = time.perf_counter()
    with second:
        request = second.classify(result.tasks[0], timeout=30)
    warm_restart_s = time.perf_counter() - t0

    assert second.restored_version == served_version
    assert request.version == served_version

    print()
    print(render_table(
        ["write p50 ms", "write max ms", "restore p50 ms", "ckpt KiB",
         "restart->1st classify s", "restored v"],
        [[f"{write_p50:.2f}", f"{max(write_ms):.2f}",
          f"{restore_p50:.2f}", f"{checkpoint_bytes / 1024:.1f}",
          f"{warm_restart_s:.3f}", served_version]],
        title="SERVE — DURABILITY (checkpoint + warm restart)"))

    # Shape claims: writes and restores are milliseconds-scale, and a
    # warm restart serves the pre-crash version within the ceiling.
    assert write_p50 <= WRITE_CEILING_MS
    assert restore_p50 <= RESTORE_CEILING_MS
    assert warm_restart_s <= WARM_RESTART_CEILING_S

    payload = {
        "checkpoint_write_p50_ms": write_p50,
        "checkpoint_write_max_ms": max(write_ms),
        "checkpoint_restore_p50_ms": restore_p50,
        "checkpoint_bytes": checkpoint_bytes,
        "warm_restart_s": warm_restart_s,
        "restore_only_s": restore_done - t0,
        "restored_version": served_version,
        "n_writes": N_WRITES,
    }
    record_serve_bench("durability", payload)
    benchmark.extra_info.update(payload)
