"""Serving throughput — the real-time Task CO Analyzer under open load.

The paper's deployment claim is *near real-time* classification of every
arriving constrained task.  This bench deploys the CTLM model behind the
``repro.serve`` stack (microbatching + hot-swappable model slot), offers
an open-loop Poisson stream replayed from the standard bench cell, and
measures delivered throughput and tail latency.

Floors, tightened as the stack got faster:

* eager single worker (``compile=False``, the fallback path): ≥ 5,000
  classifications/second with nothing dropped — the original PR-1 floor;
* **compiled** single worker (the fused ``InferencePlan`` fast path):
  ≥ 10,000/s, i.e. 2× the eager floor, with every batch served through
  the plan and predictions bit-identical to the eager oracle;
* compiled 4-worker sharded: ≥ 2× the 5k/s single-worker floor (the
  PR-2 floor was 1.5×).

The HTTP variant puts the same compiled stack behind the
:class:`~repro.serve.HttpIngress` and replays load over real sockets —
the floor is deliberately conservative (the wire path is bounded by the
HTTP round-trip, not the classifier) and the recorded section tracks the
wire-overhead p50 delta against the in-process fast path.  The batched
HTTP variant amortizes that round-trip: senders coalesce their backlog
into ``{"tasks": [...]}`` bodies against a 2-listener SO_REUSEPORT
ingress and must clear a floor several multiples of the single-task
wire ceiling, with a clean wire-level misroute audit.

The overload variant offers a bursty stream at ≥ 3× the measured
sustainable rate behind admission control: the service must shed rather
than queue unboundedly (p99 of *accepted* requests under the configured
latency budget, ``accepted + shed == submitted`` exactly), and the
arrival-rate autotuner must deliver goodput at least matching the
fixed-batch baseline.

Every test also records a machine-readable section into
``BENCH_serve.json`` (see ``_common.record_serve_bench``) so the perf
trajectory — including the fast-path-vs-eager speedup — is tracked
across PRs; CI uploads the file as an artifact.

Run:  python -m pytest benchmarks/bench_serve_throughput.py -q -s \\
          --benchmark-json=serve_throughput.json
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import COVVEncoder, DatasetData
from repro.serve import ClassificationService, LoadGenerator, ModelHandle

from _common import SEED, bench_pipeline, record_serve_bench

EAGER_OFFERED_RATE = 12_000.0
FASTPATH_OFFERED_RATE = 24_000.0
DURATION_S = 2.0
THROUGHPUT_FLOOR = 5_000.0
FASTPATH_THROUGHPUT_FLOOR = 2 * THROUGHPUT_FLOOR
SHARDED_WORKERS = 4
SHARDED_OFFERED_RATE = 24_000.0
SHARDED_THROUGHPUT_FLOOR = 2 * THROUGHPUT_FLOOR
# Bursty overload: ≥3× the single-worker delivered rate, compressed 4×
# into burst windows — instantaneous arrivals far outrun any drain rate
# the stack can reach.
OVERLOAD_RATE = 48_000.0
OVERLOAD_BUDGET_MS = 50.0
# HTTP ingress: the wire path is bounded by the per-request HTTP
# round-trip (threaded WSGI servers + a small keep-alive sender pool),
# not by the classification stack — single-task bodies saturate this
# host near ~1k/s with the pre-Flask fast path (was ~850/s through
# Flask routing), so the bench offers well under that and floors
# conservatively.  The point of the section is the wire-overhead delta
# against the in-process fast path, not a throughput race.
HTTP_OFFERED_RATE = 600.0
HTTP_CONNECTIONS = 8
HTTP_THROUGHPUT_FLOOR = 300.0
# Batched wire path: senders coalesce their backlog into {"tasks": []}
# bodies (one round trip per batch) against a 2-listener SO_REUSEPORT
# ingress — the per-request round-trip amortizes away and the wire
# clears multiples of the single-task ceiling.
HTTP_BATCHED_OFFERED_RATE = 8_000.0
HTTP_BATCH = 32
HTTP_LISTENERS = 2
HTTP_BATCHED_THROUGHPUT_FLOOR = 2_000.0

_throughput: dict[str, float] = {}
_latency_p50: dict[str, float] = {}


@pytest.fixture(scope="module")
def deployment():
    """Pipeline output + a model trained on the early growth windows."""

    result = bench_pipeline("clusterdata-2019c")
    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(SEED + 5))
    for step in result.steps[:3]:
        if step.n_samples < 8 or len(np.unique(step.y)) < 2:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    assert model.features_count is not None
    return model, result


def _report_payload(report, **extra) -> dict:
    lat = report.latency
    payload = {
        "offered_rps": report.offered_rate,
        "throughput_rps": report.throughput_rps,
        "n_completed": report.n_completed,
        "p50_us": lat.p50_us, "p95_us": lat.p95_us, "p99_us": lat.p99_us,
        "max_us": lat.max_us, "dropped": report.n_dropped,
    }
    payload.update(extra)
    return payload


def test_serve_throughput(deployment, benchmark):
    """Eager (``compile=False``) single worker: the fallback path must
    still clear the original 5k/s floor."""

    model, result = deployment
    service = ClassificationService(model, result.registry, max_batch=64,
                                    max_wait_us=500, trainer=False,
                                    compile=False)
    with service:
        report = LoadGenerator(
            service, result.tasks, result.labels, rate=EAGER_OFFERED_RATE,
            duration_s=DURATION_S,
            rng=np.random.default_rng(SEED + 6)).run()
    stats = service.stats()

    lat = report.latency
    print()
    print(render_table(
        ["Offered /s", "Delivered /s", "n", "p50 µs", "p95 µs", "p99 µs",
         "max µs", "dropped", "batches", "largest"],
        [[f"{report.offered_rate:,.0f}", f"{report.throughput_rps:,.0f}",
          f"{report.n_completed:,}", f"{lat.p50_us:.0f}",
          f"{lat.p95_us:.0f}", f"{lat.p99_us:.0f}", f"{lat.max_us:.0f}",
          report.n_dropped, report.batches, report.largest_batch]],
        title="SERVE — EAGER OPEN-LOOP THROUGHPUT (clusterdata-2019c)"))

    # Shape claims.
    assert report.n_dropped == 0
    assert report.throughput_rps >= THROUGHPUT_FLOOR
    assert lat.p99_us > 0
    # compile=False must keep every batch on the eager oracle path.
    assert stats.compiled_batches == 0
    _throughput["eager"] = report.throughput_rps
    record_serve_bench("eager_single_worker", _report_payload(report))

    # Results ride along in the benchmark JSON (perf trajectory).
    benchmark.extra_info.update(report.to_dict())

    # Benchmark unit: one full 64-task microbatch through the service.
    batch = result.tasks[:64]

    def classify_batch():
        requests = [service_bench.submit(task) for task in batch]
        for request in requests:
            request.wait(5)
        return requests

    service_bench = ClassificationService(model, result.registry,
                                          max_batch=64, max_wait_us=200,
                                          trainer=False, compile=False)
    with service_bench:
        benchmark(classify_batch)


def _model_level_batch_us(fn, n_iter: int = 200, repeats: int = 5) -> float:
    """Best-of-``repeats`` mean microseconds per call of ``fn``."""

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(n_iter):
            fn()
        best = min(best, (time.perf_counter() - start) / n_iter)
    return best * 1e6


def test_serve_throughput_fastpath(deployment, benchmark):
    """Compiled single worker: ≥ 2× the eager floor, every batch on the
    plan, and predictions bit-identical to the eager oracle."""

    model, result = deployment
    service = ClassificationService(model, result.registry, max_batch=64,
                                    max_wait_us=500, trainer=False,
                                    compile=True)
    with service:
        report = LoadGenerator(
            service, result.tasks, result.labels,
            rate=FASTPATH_OFFERED_RATE, duration_s=DURATION_S,
            rng=np.random.default_rng(SEED + 6)).run()
    stats = service.stats()

    # Equivalence suite: the compiled plan must agree with the eager
    # model bit-for-bit on the whole replay corpus, encoded at the full
    # registry width (wider than the model — the align/slice case).
    handle = ModelHandle()
    snapshot = handle.publish(model)
    plan = snapshot.plan
    assert plan is not None and plan.model_version == snapshot.version
    encoder = COVVEncoder(result.registry)
    scratch = plan.scratch(512)
    for start in range(0, len(result.tasks), 512):
        chunk = result.tasks[start:start + 512]
        X = encoder.encode_rows(chunk)
        fast = plan.predict(X, scratch)
        eager = snapshot.predict(snapshot.align(X.toarray()))
        assert np.array_equal(fast, eager), \
            f"fast path diverged from eager oracle in chunk @{start}"

    # Model-level speedup (encode + classify one 64-task microbatch):
    # the open-loop numbers above are producer-bound on small hosts, so
    # the per-batch cost is what tracks the fast path's win.
    batch = result.tasks[:64]
    plan_us = _model_level_batch_us(
        lambda: plan.predict(encoder.encode_rows(batch), scratch))

    def eager_batch():
        X = encoder.encode_rows(batch)
        return snapshot.predict(snapshot.align(X.toarray()))

    eager_us = _model_level_batch_us(eager_batch)
    speedup = eager_us / plan_us

    lat = report.latency
    eager_rps = _throughput.get("eager")
    print()
    print(render_table(
        ["Offered /s", "Delivered /s", "vs eager", "p50 µs", "p99 µs",
         "dropped", "compiled batches", "batch µs (plan/eager)"],
        [[f"{report.offered_rate:,.0f}", f"{report.throughput_rps:,.0f}",
          "—" if eager_rps is None
          else f"{report.throughput_rps / eager_rps:.2f}x",
          f"{lat.p50_us:.0f}", f"{lat.p99_us:.0f}", report.n_dropped,
          f"{stats.compiled_batches}/{stats.batches}",
          f"{plan_us:.0f}/{eager_us:.0f} ({speedup:.1f}x)"]],
        title="SERVE — COMPILED FAST-PATH THROUGHPUT (clusterdata-2019c)"))

    assert report.n_dropped == 0
    assert report.throughput_rps >= FASTPATH_THROUGHPUT_FLOOR
    # Every served batch went through the compiled plan…
    assert stats.compiled_batches == stats.batches > 0
    # …and the fused forward beats the eager Module path per batch.
    assert speedup >= 1.0

    _throughput["fastpath"] = report.throughput_rps
    _latency_p50["fastpath"] = lat.p50_us
    record_serve_bench("fastpath_single_worker", _report_payload(
        report,
        compiled_batches=stats.compiled_batches,
        model_level_batch_us={"plan": plan_us, "eager": eager_us},
        fastpath_vs_eager_speedup=speedup))

    benchmark.extra_info.update(report.to_dict())
    benchmark.extra_info["fastpath_vs_eager_speedup"] = speedup

    # Benchmark unit: one full 64-task microbatch through the compiled
    # service.
    def classify_batch():
        requests = [service_bench.submit(task) for task in batch]
        for request in requests:
            request.wait(5)
        return requests

    service_bench = ClassificationService(model, result.registry,
                                          max_batch=64, max_wait_us=200,
                                          trainer=False, compile=True)
    with service_bench:
        benchmark(classify_batch)


def test_serve_throughput_sharded(deployment, benchmark):
    """4 compiled batcher shards over the shared queue: the sharded
    floor is 2× the single-worker floor, with zero drops and every
    shard's counters adding up."""

    model, result = deployment
    service = ClassificationService(model, result.registry, max_batch=64,
                                    max_wait_us=500, trainer=False,
                                    n_workers=SHARDED_WORKERS)
    with service:
        report = LoadGenerator(
            service, result.tasks, result.labels,
            rate=SHARDED_OFFERED_RATE, duration_s=DURATION_S,
            rng=np.random.default_rng(SEED + 7)).run()
    stats = service.stats()

    lat = report.latency
    single = _throughput.get("fastpath")
    print()
    print(render_table(
        ["Workers", "Offered /s", "Delivered /s", "vs 1-worker",
         "p50 µs", "p99 µs", "dropped", "shard completions"],
        [[SHARDED_WORKERS, f"{report.offered_rate:,.0f}",
          f"{report.throughput_rps:,.0f}",
          "—" if single is None
          else f"{report.throughput_rps / single:.2f}x",
          f"{lat.p50_us:.0f}", f"{lat.p99_us:.0f}", report.n_dropped,
          "/".join(f"{n:,}" for n in stats.shard_completed)]],
        title="SERVE — SHARDED OPEN-LOOP THROUGHPUT (clusterdata-2019c)"))

    assert report.n_dropped == 0
    assert report.throughput_rps >= SHARDED_THROUGHPUT_FLOOR
    # Shard bookkeeping: every completion is attributed to exactly one
    # shard, the work actually spread beyond a single worker, and the
    # shards served compiled.
    assert stats.workers == SHARDED_WORKERS
    assert sum(stats.shard_completed) == report.n_completed
    assert np.count_nonzero(stats.shard_completed) >= 2
    assert stats.compiled_batches == stats.batches > 0

    record_serve_bench("compiled_sharded", _report_payload(
        report, workers=SHARDED_WORKERS,
        shard_completed=list(stats.shard_completed)))

    benchmark.extra_info.update(report.to_dict())
    benchmark.extra_info["workers"] = SHARDED_WORKERS
    benchmark.extra_info["shard_completed"] = list(stats.shard_completed)

    # Benchmark unit: one full 64-task microbatch through the sharded
    # service.
    batch = result.tasks[:64]

    def classify_batch():
        requests = [service_bench.submit(task) for task in batch]
        for request in requests:
            request.wait(5)
        return requests

    service_bench = ClassificationService(model, result.registry,
                                          max_batch=64, max_wait_us=200,
                                          trainer=False,
                                          n_workers=SHARDED_WORKERS)
    with service_bench:
        benchmark(classify_batch)


def test_serve_throughput_http(deployment, benchmark):
    """The same compiled stack behind the HTTP ingress: what a scheduler
    calling over the network sees.

    The wire path must lose nothing and clear its (deliberately
    conservative) floor; the recorded section carries the p50 delta
    against the in-process fast path so the wire overhead is tracked
    across PRs rather than argued about.  The in-process floors above
    are untouched — this section is additive.
    """

    from repro.serve import HttpIngress

    model, result = deployment
    service = ClassificationService(model, result.registry, max_batch=64,
                                    max_wait_us=500, trainer=False)
    with service:
        with HttpIngress(service, port=0) as ingress:
            report = LoadGenerator(
                tasks=result.tasks, labels=result.labels,
                rate=HTTP_OFFERED_RATE, duration_s=DURATION_S,
                url=ingress.url, http_connections=HTTP_CONNECTIONS,
                rng=np.random.default_rng(SEED + 10)).run()
    stats = service.stats()

    lat = report.latency
    fastpath_p50 = _latency_p50.get("fastpath")
    overhead_us = (None if fastpath_p50 is None
                   else lat.p50_us - fastpath_p50)
    print()
    print(render_table(
        ["Offered /s", "Delivered /s", "n", "p50 µs", "p99 µs", "dropped",
         "wire overhead p50"],
        [[f"{report.offered_rate:,.0f}", f"{report.throughput_rps:,.0f}",
          f"{report.n_completed:,}", f"{lat.p50_us:.0f}",
          f"{lat.p99_us:.0f}", report.n_dropped,
          "—" if overhead_us is None else f"+{overhead_us:,.0f}µs"]],
        title="SERVE — HTTP INGRESS THROUGHPUT (clusterdata-2019c)"))

    assert report.n_dropped == 0
    assert report.n_completed == report.n_requests
    assert report.throughput_rps >= HTTP_THROUGHPUT_FLOOR
    # The wire run really went through the serving stack (not a stub).
    assert stats.completed == report.n_completed
    assert stats.compiled_batches == stats.batches > 0

    _throughput["http"] = report.throughput_rps
    record_serve_bench("http_single_worker", _report_payload(
        report, http_connections=HTTP_CONNECTIONS,
        wire_overhead_p50_us=overhead_us,
        in_process_fastpath_p50_us=fastpath_p50))

    benchmark.extra_info.update(report.to_dict())

    # Benchmark unit: one classify round-trip over a warm keep-alive
    # connection (body pre-encoded — the wire cost itself).
    import json as _json
    from http.client import HTTPConnection

    service_bench = ClassificationService(model, result.registry,
                                          max_batch=64, max_wait_us=200,
                                          trainer=False)
    body = _json.dumps({"task": result.tasks[0].to_dict()}).encode()

    with service_bench:
        with HttpIngress(service_bench, port=0) as ingress:
            conn = HTTPConnection("127.0.0.1", ingress.port, timeout=10)

            def classify_over_wire():
                conn.request("POST", "/classify", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                payload = response.read()
                assert response.status == 200, payload
                return payload

            try:
                benchmark(classify_over_wire)
            finally:
                conn.close()


def test_serve_throughput_http_batched(deployment, benchmark):
    """Batched ``/classify`` bodies over a multi-listener ingress: the
    wire path with the round-trip amortized away.

    Senders coalesce their backlog into ``{"tasks": [...]}`` bodies of
    up to ``HTTP_BATCH`` tasks; the ingress runs ``HTTP_LISTENERS``
    SO_REUSEPORT servers over one serving stack.  Acceptance: zero
    drops, every task resolved exactly once, the batched floor (a
    multiple of the single-task wire ceiling), and a clean wire-level
    misroute audit through ``POST /audit``.
    """

    from repro.serve import HttpIngress

    model, result = deployment
    service = ClassificationService(model, result.registry, max_batch=256,
                                    max_wait_us=500, trainer=False)
    with service:
        with HttpIngress(service, port=0,
                         n_listeners=HTTP_LISTENERS) as ingress:
            report = LoadGenerator(
                tasks=result.tasks, labels=result.labels,
                rate=HTTP_BATCHED_OFFERED_RATE, duration_s=DURATION_S,
                url=ingress.url, http_connections=HTTP_CONNECTIONS,
                http_batch=HTTP_BATCH,
                rng=np.random.default_rng(SEED + 11)).run()
    stats = service.stats()

    lat = report.latency
    single_wire = _throughput.get("http")
    print()
    print(render_table(
        ["Offered /s", "Delivered /s", "vs single-task wire", "n",
         "p50 µs", "p99 µs", "dropped", "audited", "misrouted"],
        [[f"{report.offered_rate:,.0f}", f"{report.throughput_rps:,.0f}",
          "—" if single_wire is None
          else f"{report.throughput_rps / single_wire:.1f}x",
          f"{report.n_completed:,}", f"{lat.p50_us:.0f}",
          f"{lat.p99_us:.0f}", report.n_dropped, report.n_audited,
          report.n_misrouted]],
        title="SERVE — BATCHED HTTP INGRESS THROUGHPUT "
              "(clusterdata-2019c)"))

    assert report.n_dropped == 0
    assert report.n_completed == report.n_requests
    assert report.throughput_rps >= HTTP_BATCHED_THROUGHPUT_FLOOR
    # The wire-level misroute audit ran and found nothing misrouted.
    assert report.n_audited > 0
    assert report.n_misrouted == 0
    # The wire run really went through the serving stack (not a stub).
    assert stats.completed == report.n_completed
    assert stats.compiled_batches == stats.batches > 0

    record_serve_bench("http_batched", _report_payload(
        report, http_connections=HTTP_CONNECTIONS,
        http_batch=HTTP_BATCH, n_listeners=HTTP_LISTENERS,
        n_audited=report.n_audited, n_misrouted=report.n_misrouted,
        single_task_wire_rps=single_wire))

    benchmark.extra_info.update(report.to_dict())

    # Benchmark unit: one 32-task batched round trip over a warm
    # keep-alive connection (body pre-encoded — the amortized wire cost).
    import json as _json
    from http.client import HTTPConnection

    service_bench = ClassificationService(model, result.registry,
                                          max_batch=256, max_wait_us=200,
                                          trainer=False)
    body = _json.dumps(
        {"tasks": [task.to_dict()
                   for task in result.tasks[:HTTP_BATCH]]}).encode()

    with service_bench:
        with HttpIngress(service_bench, port=0) as ingress:
            conn = HTTPConnection("127.0.0.1", ingress.port, timeout=10)

            def classify_batch_over_wire():
                conn.request("POST", "/classify", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                payload = response.read()
                assert response.status == 200, payload
                return payload

            try:
                benchmark(classify_batch_over_wire)
            finally:
                conn.close()


def _overload_run(model, result, *, autotune: bool, max_batch: int):
    """One bursty overload run behind a 50 ms admission budget."""

    service = ClassificationService(
        model, result.registry, max_batch=max_batch, max_wait_us=1000,
        trainer=False, latency_budget_ms=OVERLOAD_BUDGET_MS,
        shed_policy="reject", autotune=autotune)
    with service:
        report = LoadGenerator(
            service, result.tasks, rate=OVERLOAD_RATE,
            duration_s=DURATION_S, pattern="bursty",
            rng=np.random.default_rng(SEED + 8)).run()
    return report


def test_serve_overload_autotune_goodput(deployment, benchmark):
    """Bursty overload at ≥3× sustainable: shed, don't queue unboundedly.

    Acceptance: p99 latency of *accepted* requests stays under the
    50 ms budget, ``accepted + shed == submitted`` exactly (and nothing
    accepted is lost), and the arrival-rate autotuner's goodput is ≥
    the fixed-batch baseline on the identical arrival schedule.
    """

    model, result = deployment
    fixed = _overload_run(model, result, autotune=False, max_batch=64)
    tuned = _overload_run(model, result, autotune=True, max_batch=256)

    print()
    rows = []
    for name, report in (("fixed-64", fixed), ("autotune-256", tuned)):
        lat = report.latency
        rows.append([name, f"{report.offered_rate:,.0f}",
                     f"{report.n_requests:,}", f"{report.n_accepted:,}",
                     f"{report.n_shed:,}", f"{report.accept_rate:.0%}",
                     f"{report.goodput_rps:,.0f}", f"{lat.p50_us:.0f}",
                     f"{lat.p99_us:.0f}", report.n_dropped])
    print(render_table(
        ["Batcher", "Offered /s", "Submitted", "Accepted", "Shed",
         "Accept %", "Goodput /s", "p50 µs", "p99 µs", "lost"],
        rows, title="SERVE — BURSTY OVERLOAD, ADMISSION-CONTROLLED "
                    "(clusterdata-2019c)"))

    for report in (fixed, tuned):
        # Exactly-once accounting: the gate partitions submissions,
        # terminal outcomes partition admissions; nothing is lost.
        assert report.n_requests == report.n_accepted + report.n_shed
        assert report.n_accepted == (report.n_completed + report.n_evicted
                                     + report.n_expired + report.n_dropped)
        assert report.n_dropped == 0
        # The stream genuinely overloads the cell, and the controller
        # sheds instead of letting accepted latency blow the budget.
        assert report.n_shed > 0
        assert report.latency.p99_us < OVERLOAD_BUDGET_MS * 1000.0

    # Acceptance floor: autotuned goodput at least matches the
    # fixed-batch baseline (delivered margin on a quiet host is ~25%),
    # and the tuner actually exploited its larger batch cap.
    assert tuned.goodput_rps >= fixed.goodput_rps
    assert tuned.largest_batch >= fixed.largest_batch

    record_serve_bench("bursty_overload", {
        "fixed": fixed.to_dict(), "autotuned": tuned.to_dict(),
        "budget_ms": OVERLOAD_BUDGET_MS})

    benchmark.extra_info["fixed"] = fixed.to_dict()
    benchmark.extra_info["autotuned"] = tuned.to_dict()

    # Benchmark unit: one bursty overload second through the autotuned,
    # admission-controlled service.
    service_bench = ClassificationService(
        model, result.registry, max_batch=256, max_wait_us=1000,
        trainer=False, latency_budget_ms=OVERLOAD_BUDGET_MS, autotune=True)

    def overload_second():
        return LoadGenerator(
            service_bench, result.tasks, rate=OVERLOAD_RATE, duration_s=0.25,
            pattern="bursty", rng=np.random.default_rng(SEED + 9)).run()

    with service_bench:
        benchmark.pedantic(overload_second, rounds=3, iterations=1)
