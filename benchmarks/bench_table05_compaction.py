"""Table V — sample CO compactions.

Regenerates the paper's five worked compaction examples and benchmarks
compaction throughput over a realistic constraint-set mix.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.constraints import Constraint, ConstraintOperator, compact
from repro.errors import CompactionError
from repro.trace import TaskEvent, TaskEventKind

from _common import bench_cell

EQ = ConstraintOperator.EQUAL
NE = ConstraintOperator.NOT_EQUAL
LT = ConstraintOperator.LESS_THAN
GT = ConstraintOperator.GREATER_THAN

TABLE_V_ROWS = [
    ("Between (redundant bound dropped)",
     [Constraint("AM", LT, "8"), Constraint("AM", LT, "3"),
      Constraint("AM", GT, "0")],
     "3 > ${AM} > 0"),
    ("Between (NE folds into bound)",
     [Constraint("AM", NE, "1"), Constraint("AM", GT, "3"),
      Constraint("AM", NE, "4")],
     "${AM} > 4"),
    ("Non-Equal-Array",
     [Constraint("N", NE, "a"), Constraint("N", NE, "b"),
      Constraint("N", NE, "c")],
     "${N} <> 'a'; 'b'; 'c'"),
    ("Equal supersedes Not-Equals",
     [Constraint("G", NE, "a"), Constraint("G", NE, "b"),
      Constraint("G", EQ, "c")],
     "${G} = 'c'"),
]

CONTRADICTION = [Constraint("DC", EQ, "1"), Constraint("DC", EQ, "7")]


def test_table05_compaction(benchmark):
    rows = []
    for label, constraints, expected in TABLE_V_ROWS:
        task = compact(constraints)
        rendered = task.render()
        assert rendered == expected, f"{label}: {rendered!r}"
        rows.append([label,
                     "; ".join(c.render() for c in constraints), rendered])

    with pytest.raises(CompactionError):
        compact(CONTRADICTION)
    rows.append(["Unsatisfiable (logged & skipped)",
                 "; ".join(c.render() for c in CONTRADICTION),
                 "CompactionError"])

    print()
    print(render_table(["Case", "Input CO", "Collapsed CO"], rows,
                       title="TABLE V — SAMPLE CO COMPACTIONS",
                       align_right=False))

    # Throughput: compaction over the bench cell's real constraint mix.
    cell = bench_cell("clusterdata-2019c")
    constraint_sets = [e.constraints for e in
                       cell.trace.events_of(TaskEvent)
                       if e.kind is TaskEventKind.SUBMIT and e.constraints]
    sets = constraint_sets[:2000]

    def run():
        return [compact(cs) for cs in sets]

    tasks = benchmark(run)
    assert len(tasks) == len(sets)
