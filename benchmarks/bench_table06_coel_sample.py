"""Table VI — sample of the CO-EL dataset (clusterdata-2011).

Builds the CO-EL (collapsed-CO one-hot) dataset for the 2011 bench cell,
prints a sample block, and benchmarks CO-EL encoding throughput.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.datasets import COELEncoder, COELRegistry

from _common import bench_pipeline


def test_table06_coel_sample(benchmark):
    result = bench_pipeline("clusterdata-2011", encoding="co-el")
    final = result.final
    registry = result.registry

    assert result.encoding == "co-el"
    assert final.X.shape[1] == registry.features_count
    # One-hot structure: every stored cell is exactly 1.
    assert final.X.nnz > 0
    assert np.all(final.X.data == 1.0)
    # Each task defines at least one collapsed CO, rarely more than a few.
    row_counts = np.diff(final.X.indptr)
    assert row_counts.min() >= 1
    assert row_counts.max() <= 8

    labels = registry.labels()
    headers = ["Task"] + [lbl[:18] for lbl in labels[:8]] + ["Group"]
    rows = []
    dense = np.asarray(final.X[:10, :8].todense()).astype(int)
    for i in range(10):
        rows.append([f"t{i}"] + dense[i].tolist() + [int(final.y[i])])
    print()
    print(render_table(headers, rows,
                       title="TABLE VI — SAMPLE OF THE CO-EL DATASET "
                             "(clusterdata-2011, first 8 label columns)"))
    print(f"\nCO-EL label space: {registry.features_count} distinct "
          f"collapsed COs over {final.n_samples} tasks")

    # Benchmark: encode a slice of tasks through a fresh CO-EL encoder.
    from repro.constraints import compact
    from repro.trace import TaskEvent, TaskEventKind
    from _common import bench_cell
    cell = bench_cell("clusterdata-2011")
    tasks = []
    for e in cell.trace.events_of(TaskEvent):
        if e.kind is TaskEventKind.SUBMIT and e.constraints:
            tasks.append(compact(e.constraints))
            if len(tasks) >= 3000:
                break

    def run():
        enc = COELEncoder(COELRegistry())
        for t in tasks:
            enc.observe(t)
        return enc.encode_rows(tasks)

    X = benchmark(run)
    assert X.shape[0] == len(tasks)
