"""Table VII — the reversed '0/1' CO-VV notation.

Regenerates the paper's four worked rows over the attribute ``AM`` domain
(none, 0..9) exactly, and benchmarks the value-vector primitive.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.constraints import Constraint, ConstraintOperator
from repro.constraints.compaction import compact_attribute
from repro.datasets import spec_value_vector

GE = ConstraintOperator.GREATER_THAN_EQUAL
GT = ConstraintOperator.GREATER_THAN
LT = ConstraintOperator.LESS_THAN
NE = ConstraintOperator.NOT_EQUAL

VALUES = [None] + [str(i) for i in range(10)]

ROWS = [
    ("${AM} >= 5", [Constraint("AM", GE, "5")],
     [1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0]),
    ("3 > ${AM} > 0", [Constraint("AM", LT, "3"), Constraint("AM", GT, "0")],
     [1, 1, 0, 0, 1, 1, 1, 1, 1, 1, 1]),
    ("${AM} <> 0; 7; 8", [Constraint("AM", NE, "0"),
                          Constraint("AM", NE, "7"),
                          Constraint("AM", NE, "8")],
     [0, 1, 0, 0, 0, 0, 0, 0, 1, 1, 0]),
    ("${AM} > 0", [Constraint("AM", GT, "0")],
     [1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
]


def test_table07_covv_notation(benchmark):
    headers = ["CO", "(none)"] + [f"AM:{i}" for i in range(10)]
    table_rows = []
    specs = []
    for label, constraints, expected in ROWS:
        spec = compact_attribute("AM", constraints)
        specs.append(spec)
        vec = spec_value_vector(spec, VALUES)
        np.testing.assert_array_equal(vec, expected), label
        table_rows.append([label] + vec.tolist())

    print()
    print(render_table(headers, table_rows,
                       title="TABLE VII — REVERSED '0/1' NOTATION OF CO "
                             "AND MATCHED ATTRIBUTE VALUES"))

    big_domain = [None] + [str(i) for i in range(2000)]

    def run():
        return [spec_value_vector(s, big_domain) for s in specs]

    vectors = benchmark(run)
    assert all(v.shape == (2001,) for v in vectors)
