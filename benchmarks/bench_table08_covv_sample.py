"""Table VIII — sample of the CO-VV dataset (clusterdata-2019a).

Builds the CO-VV dataset for the 2019a bench cell, prints a sample block,
verifies the reversed-notation/sparsity structure, and benchmarks CO-VV
encoding throughput with the spec-pattern memo.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.constraints import compact
from repro.datasets import COVVEncoder, FeatureRegistry
from repro.trace import TaskEvent, TaskEventKind

from _common import bench_cell, bench_pipeline


def test_table08_covv_sample(benchmark):
    result = bench_pipeline("clusterdata-2019a")
    final = result.final
    registry = result.registry

    assert final.X.shape[1] == registry.features_count
    # Reversed notation: stored entries are the *unacceptable* cells (=1).
    assert np.all(final.X.data == 1.0)
    density = final.X.nnz / (final.X.shape[0] * final.X.shape[1])
    assert density < 0.5  # sparse (paper: <0.01% at 16k features)

    labels = registry.feature_labels()
    show = min(10, registry.features_count)
    headers = ["Task"] + [lbl[:12] for lbl in labels[:show]] + ["Group"]
    dense = np.asarray(final.X[:10, :show].todense()).astype(int)
    rows = [[f"t{i}"] + dense[i].tolist() + [int(final.y[i])]
            for i in range(10)]
    print()
    print(render_table(headers, rows,
                       title="TABLE VIII — SAMPLE OF THE CO-VV DATASET "
                             "(clusterdata-2019a, first columns)"))
    print(f"\nfeature array: {registry.features_count} columns, "
          f"density {density:.2%}, {final.n_samples} tasks")

    cell = bench_cell("clusterdata-2019a")
    tasks = []
    for e in cell.trace.events_of(TaskEvent):
        if e.kind is TaskEventKind.SUBMIT and e.constraints:
            tasks.append(compact(e.constraints))
            if len(tasks) >= 3000:
                break

    def run():
        reg = FeatureRegistry()
        enc = COVVEncoder(reg)
        for t in tasks:
            enc.observe(t)
        return enc.encode_rows(tasks)

    X = benchmark(run)
    assert X.shape[0] == len(tasks)
