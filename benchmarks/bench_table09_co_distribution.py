"""Table IX — distribution of tasks with CO by volume, CPU and memory.

Regenerates the min/max/avg bands for all four cells and asserts each
falls inside (a tolerance of) the paper's published band — the generator
is calibrated to those bands, so this bench is the calibration check.
"""

from __future__ import annotations

from repro.analysis import co_distribution, render_table
from repro.trace import get_profile

from _common import CELLS, bench_cell


def test_table09_co_distribution(benchmark):
    rows = []
    for name in CELLS:
        cell = bench_cell(name)
        dist = co_distribution(cell)
        profile = get_profile(name)

        # Volume band tracks the paper's Table IX row (generator target).
        band = profile.co_volume
        assert band.lo * 0.5 <= dist.by_volume.avg <= band.hi * 1.1, name
        assert dist.by_volume.lo <= band.avg, name
        assert dist.by_volume.hi >= band.avg * 0.75, name

        rows.append([name,
                     *dist.by_volume.as_percent(),
                     *dist.by_cpu.as_percent(),
                     *dist.by_mem.as_percent()])

    headers = ["GCD archive", "Vol min", "Vol max", "Vol avg",
               "CPU min", "CPU max", "CPU avg",
               "Mem min", "Mem max", "Mem avg"]
    print()
    print(render_table(headers, rows,
                       title="TABLE IX — DISTRIBUTION OF TASKS WITH CO BY "
                             "VOLUME, REQUESTED CPU AND MEMORY"))
    print("\npaper bands (volume): " + "; ".join(
        f"{n}: {get_profile(n).co_volume.lo:.1%}–"
        f"{get_profile(n).co_volume.hi:.1%} "
        f"(avg {get_profile(n).co_volume.avg:.1%})" for n in CELLS))

    # 2019a is the most CO-heavy cell in the paper; the shape must hold.
    a = co_distribution(bench_cell("clusterdata-2019a")).by_volume.avg
    d = co_distribution(bench_cell("clusterdata-2019d")).by_volume.avg
    assert a > d, "2019a must carry a higher CO share than 2019d"

    cell = bench_cell("clusterdata-2019c")
    result = benchmark(co_distribution, cell)
    assert result.n_tasks > 0
