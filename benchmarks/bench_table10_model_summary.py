"""Table X — summary of model evaluation results.

Runs all six models (Growing, Fully Retrain, MLP, Ridge, SGD, Ensemble
Voter) over all four cells' growth-step sequences and prints the Table X
layout.  Shape assertions:

* every model's average accuracy is high (ANN variants above the paper's
  0.95 early-stop threshold),
* Group-0 F1 is high for the ANN variants (paper: 0.96–1.0),
* the Growing model needs meaningfully fewer epochs than Fully Retrain
  on every cell (paper: 40%–91% fewer).
"""

from __future__ import annotations

import pytest

from repro.analysis import epoch_reduction, table_x_report

from _common import CELLS, bench_run


@pytest.fixture(scope="module")
def runs():
    return {name: bench_run(name, full_suite=True) for name in CELLS}


def test_table10_model_summary(runs, benchmark):
    print()
    print(table_x_report(runs))
    print()
    for name, run in runs.items():
        reduction = epoch_reduction(run)
        print(f"{name}: Growing uses {reduction:.0%} fewer epochs than "
              f"Fully Retrain")

    for name, run in runs.items():
        growing = run.summary("Growing")
        fully = run.summary("Fully Retrain")
        # Early-stop thresholds respected on every step → averages above.
        assert growing.avg_accuracy > 0.95, name
        assert fully.avg_accuracy > 0.95, name
        assert growing.avg_group_0_f1 is None or growing.avg_group_0_f1 > 0.9
        # Headline claim: fewer epochs for the growing model.
        assert epoch_reduction(run) >= 0.2, (
            f"{name}: expected ≥20% epoch reduction (paper: 40–91%)")
        # Baselines train but are less consistent (paper §V).
        for baseline in ("MLP Classifier", "Ridge Classifier",
                         "SGD Classifier", "Ensemble Voter"):
            assert run.summary(baseline).avg_accuracy > 0.8, (name, baseline)

    # Benchmark unit: one growing-model step on the final 2019c dataset.
    import numpy as np
    from repro.core import GrowingModel, BENCH_CONFIG
    from repro.datasets import DatasetData
    from _common import bench_pipeline

    steps = bench_pipeline("clusterdata-2019c").steps

    def one_continuous_run():
        model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(7))
        for step in steps[:4]:
            if step.n_samples < 8:
                continue
            model.fit_step(DatasetData(step.X, step.y,
                                       batch_size=BENCH_CONFIG.batch_size,
                                       rng=np.random.default_rng(3)))
        return model

    model = benchmark.pedantic(one_continuous_run, rounds=1, iterations=1)
    assert model.features_count is not None
