"""Table XI — per-step model evaluation for clusterdata-2019c.

Prints the step-by-step detail the paper reports for its sample cell:
each feature-array extension's simulation time, feature count, and each
model's accuracy / Group-0 F1 / epoch count.  Asserts the step dynamics
the paper describes: features grow monotonically, the growing model's
per-step epochs stay far below the fully-retrained model's, and both
meet the acceptance thresholds at every step.
"""

from __future__ import annotations

from repro.analysis import table_xi_report

from _common import bench_pipeline, bench_run


def test_table11_2019c_steps(benchmark):
    run = bench_run("clusterdata-2019c")
    print()
    print(table_xi_report(run))

    growing_rows = run.rows["Growing"]
    fully_rows = run.rows["Fully Retrain"]
    assert len(growing_rows) == len(fully_rows)
    assert len(growing_rows) >= 6  # many retraining steps over 31 days

    # Feature array grows monotonically across steps (Table XI dynamic).
    features = [r.features for r in growing_rows]
    assert features == sorted(features)
    assert all(r.n_new_features > 0 for r in growing_rows)

    # Paper thresholds hold at every retraining step.
    for row in growing_rows + fully_rows:
        assert row.outcome.accuracy > 0.95
        assert row.outcome.group_0_f1 is None or row.outcome.group_0_f1 > 0.9

    # After the initial model exists, growth steps are cheap: the growing
    # model's median per-step epochs sit well below fully-retrain's.
    import statistics
    grow_step_epochs = [r.outcome.epochs for r in growing_rows[1:]]
    full_step_epochs = [r.outcome.epochs for r in fully_rows[1:]]
    assert statistics.median(grow_step_epochs) <= \
        statistics.median(full_step_epochs)
    assert sum(grow_step_epochs) < sum(full_step_epochs)

    # Benchmark unit: re-encoding the final cumulative dataset.
    result = bench_pipeline("clusterdata-2019c")
    final = result.steps[-1]
    benchmark(lambda: final.X.toarray())
