"""Section V timing claim — per-step retraining cost.

The paper (on a 2023 MacBook Pro, full-scale data): baselines and the
fully-retrained model take 7–42 minutes per step, while the Growing model
takes 17 minutes once and then 1–6 minutes per subsequent step — "almost
in real time".  At bench scale we assert the *ratios*: the Growing
model's average growth-step wall time is a small fraction of the
fully-retrained model's, and far below the epoch-bound baselines'.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table

from _common import CELLS, bench_run


def test_timing_per_step(benchmark):
    rows = []
    ratios = []
    for name in CELLS:
        run = bench_run(name, full_suite=True)
        growing = run.summary("Growing")
        fully = run.summary("Fully Retrain")
        mlp = run.summary("MLP Classifier")
        rows.append([
            name,
            f"{growing.seconds_initial:.2f}",
            f"{growing.avg_seconds_per_growth_step:.2f}",
            f"{fully.avg_seconds_per_growth_step:.2f}",
            f"{mlp.avg_seconds_per_growth_step:.2f}",
        ])
        if growing.avg_seconds_per_growth_step > 0:
            ratios.append(fully.avg_seconds_per_growth_step
                          / growing.avg_seconds_per_growth_step)

    print()
    print(render_table(
        ["Dataset", "Growing initial s", "Growing s/step",
         "Fully Retrain s/step", "MLP s/step"], rows,
        title="§V TIMING — WALL TIME PER RETRAINING STEP (bench scale)"))
    print(f"\nFully-Retrain / Growing step-time ratios: "
          f"{['%.1f' % r for r in ratios]}")

    # Growing's growth steps are cheaper than full retraining on average
    # across cells (the paper's order-of-magnitude claim, relaxed for
    # bench-scale variance).
    assert np.mean(ratios) > 1.5
    # MLP (trained to convergence, not early-stopped) costs multiples of a
    # growing step everywhere.
    for name in CELLS:
        run = bench_run(name, full_suite=True)
        growing = run.summary("Growing")
        mlp = run.summary("MLP Classifier")
        assert mlp.avg_seconds_per_growth_step > \
            growing.avg_seconds_per_growth_step

    run = bench_run("clusterdata-2019c", full_suite=True)
    benchmark(lambda: run.summary("Growing"))
