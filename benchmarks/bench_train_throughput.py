"""Training throughput — the fused retraining path vs eager autograd.

The paper's continuous-learning promise is only as good as the
retrain→publish staleness window: a served Task CO Analyzer is exactly
as fresh as the last ``BackgroundTrainer`` publish.  This bench pins the
compiled :class:`~repro.core.TrainPlan` (fused NumPy backprop, CSR in
both directions) against the eager Listing-3 autograd loop on the
standard bench cell, at three levels:

* **Epoch throughput** — raw training rows/second over the bench
  corpus, identical batches.  Floor: fused ≥ 3× eager.
* **Acceptance equivalence** — ``fit_step`` on a fixed seed accepts the
  same model on both paths: identical epoch counts and attempts,
  accuracy equal within 1e-6.  (The perf win must not change *what*
  gets published.)
* **Retrain-trigger→publish latency** — the serving-scale scenario: a
  ``BackgroundTrainer`` holding the full replay corpus as observations
  retrains a cloned deployment and hot-swaps.  Floor: the fused
  trigger→publish latency is ≤ half the eager one.

Every test records a machine-readable section into ``BENCH_train.json``
(shared :func:`_common.record_bench` infrastructure with the serving
bench); CI uploads the file as an artifact next to ``BENCH_serve.json``.

Run:  python -m pytest benchmarks/bench_train_throughput.py -q -s \\
          --benchmark-disable
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel, build_model, \
    compile_training
from repro import nn
from repro.datasets import DatasetData
from repro.serve import BackgroundTrainer, ModelHandle
from repro.sim import RetrainPolicy

from _common import SEED, bench_pipeline, record_train_bench

#: Fused epoch throughput must beat eager autograd by at least this.
EPOCH_SPEEDUP_FLOOR = 3.0
#: Fused retrain-trigger→publish latency must at least halve eager's.
PUBLISH_SPEEDUP_FLOOR = 2.0
BENCH_EPOCHS = 8


@pytest.fixture(scope="module")
def deployment():
    """Pipeline output + a model trained on the early growth windows
    (the same deployment shape the serving bench uses)."""

    result = bench_pipeline("clusterdata-2019c")
    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(SEED + 5))
    for step in result.steps[:3]:
        if step.n_samples < 8 or len(np.unique(step.y)) < 2:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    assert model.features_count is not None
    return model, result


def _training_step(result):
    """The widest late growth window — bench-scale training data."""

    step = result.steps[-1]
    assert step.n_samples >= 1000
    return step


def _eager_epochs(model, X, y, order_rng, batch_size: int,
                  epochs: int) -> float:
    """Timed eager Listing-3 epochs (autograd loop, fresh Adam)."""

    loss_fn = nn.CrossEntropyLoss(weight=BENCH_CONFIG.class_weights())
    optimizer = nn.Adam(model.parameters(),
                        lr=BENCH_CONFIG.learning_rate)
    n = X.shape[0]
    started = time.perf_counter()
    for _epoch in range(epochs):
        order = np.arange(n)
        order_rng.shuffle(order)
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            optimizer.zero_grad()
            loss = loss_fn(model(nn.from_numpy(
                np.ascontiguousarray(X[idx]))), y[idx])
            loss.backward()
            optimizer.step()
    return time.perf_counter() - started


def _fused_epochs(model, X, y, order_rng, batch_size: int,
                  epochs: int) -> float:
    """Timed fused epochs through the compiled TrainPlan (CSR input)."""

    plan = compile_training(model, lr=BENCH_CONFIG.learning_rate,
                            class_weights=BENCH_CONFIG.class_weights())
    n = X.shape[0]
    started = time.perf_counter()
    for _epoch in range(epochs):
        order = np.arange(n)
        order_rng.shuffle(order)
        plan.train_epoch(X, y, order, batch_size)
    elapsed = time.perf_counter() - started
    plan.finish()
    return elapsed


def test_train_epoch_throughput(deployment, benchmark):
    """Fused epochs must run ≥ 3× the eager autograd path on identical
    batches of the bench corpus — the design matrix staying CSR."""

    _model, result = deployment
    step = _training_step(result)
    X_sparse = step.X.tocsr().astype(np.float32)
    X_dense = X_sparse.toarray()
    y = np.asarray(step.y, dtype=np.int64)
    n, width = X_dense.shape
    batch = BENCH_CONFIG.batch_size

    eager_model = build_model(width, BENCH_CONFIG,
                              np.random.default_rng(SEED + 11))
    fused_model = build_model(width, BENCH_CONFIG,
                              np.random.default_rng(SEED + 11))

    # Warm both paths (buffer growth, BLAS thread spin-up), then time
    # best-of-3 interleaved repeats — a single shot is at the mercy of
    # whatever else the host is doing.
    _eager_epochs(eager_model, X_dense, y,
                  np.random.default_rng(0), batch, 1)
    _fused_epochs(fused_model, X_sparse, y,
                  np.random.default_rng(0), batch, 1)
    eager_s = fused_s = float("inf")
    for repeat in range(3):
        eager_s = min(eager_s, _eager_epochs(
            eager_model, X_dense, y, np.random.default_rng(SEED + repeat),
            batch, BENCH_EPOCHS))
        fused_s = min(fused_s, _fused_epochs(
            fused_model, X_sparse, y, np.random.default_rng(SEED + repeat),
            batch, BENCH_EPOCHS))

    eager_rps = n * BENCH_EPOCHS / eager_s
    fused_rps = n * BENCH_EPOCHS / fused_s
    speedup = eager_s / fused_s

    print()
    print(render_table(
        ["Path", "Rows", "Width", "Epochs", "Seconds", "Rows/s",
         "Speedup"],
        [["eager autograd", f"{n:,}", width, BENCH_EPOCHS,
          f"{eager_s:.3f}", f"{eager_rps:,.0f}", "1.00x"],
         ["fused TrainPlan (CSR)", f"{n:,}", width, BENCH_EPOCHS,
          f"{fused_s:.3f}", f"{fused_rps:,.0f}", f"{speedup:.2f}x"]],
        title="TRAIN — EPOCH THROUGHPUT, FUSED vs EAGER "
              "(clusterdata-2019c)"))

    assert speedup >= EPOCH_SPEEDUP_FLOOR, \
        f"fused epoch speedup {speedup:.2f}x under the " \
        f"{EPOCH_SPEEDUP_FLOOR}x floor"

    record_train_bench("epoch_throughput", {
        "rows": n, "width": width, "epochs": BENCH_EPOCHS,
        "batch_size": batch,
        "eager_s": eager_s, "fused_s": fused_s,
        "eager_rows_per_s": eager_rps, "fused_rows_per_s": fused_rps,
        "fused_vs_eager_speedup": speedup,
        "floor": EPOCH_SPEEDUP_FLOOR})

    benchmark.extra_info["fused_vs_eager_speedup"] = speedup
    plan = compile_training(fused_model, lr=BENCH_CONFIG.learning_rate,
                            class_weights=BENCH_CONFIG.class_weights())
    order = np.arange(n)

    def fused_epoch():
        plan.train_epoch(X_sparse, y, order, batch)

    benchmark.pedantic(fused_epoch, rounds=3, iterations=1)


def test_fused_and_eager_accept_the_same_model(deployment, benchmark):
    """The equivalence oracle at bench scale: identical epoch counts and
    attempts, accuracy within 1e-6, on both a plain fit and a transfer
    (growth) fit."""

    _model, result = deployment
    rows = []
    outcomes = {}
    for fused in (True, False):
        gm = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(SEED + 21))
        step_outcomes = []
        for step in result.steps[:4]:
            if step.n_samples < 8 or len(np.unique(step.y)) < 2:
                continue
            dataset = DatasetData(
                step.X, step.y, batch_size=BENCH_CONFIG.batch_size,
                keep_sparse=fused,
                rng=np.random.default_rng(step.step_index))
            step_outcomes.append(gm.fit_step(dataset, fused=fused))
        outcomes[fused] = step_outcomes
        for outcome in step_outcomes:
            rows.append(["fused" if fused else "eager",
                         f"{outcome.features_before}->"
                         f"{outcome.features_after}",
                         outcome.epochs, outcome.attempts,
                         f"{outcome.accuracy:.6f}",
                         "yes" if outcome.grew else "no"])

    print()
    print(render_table(
        ["Path", "Width", "Epochs", "Attempts", "Accuracy", "Grew"],
        rows, title="TRAIN — FUSED vs EAGER ACCEPTANCE EQUIVALENCE"))

    assert len(outcomes[True]) == len(outcomes[False]) >= 2
    grew = [o.grew for o in outcomes[True]]
    assert any(grew), "bench steps never exercised transfer training"
    for fused_o, eager_o in zip(outcomes[True], outcomes[False]):
        assert fused_o.epochs == eager_o.epochs
        assert fused_o.attempts == eager_o.attempts
        assert abs(fused_o.accuracy - eager_o.accuracy) < 1e-6

    record_train_bench("acceptance_equivalence", {
        "steps": len(outcomes[True]),
        "epochs": [o.epochs for o in outcomes[True]],
        "accuracy_fused": [o.accuracy for o in outcomes[True]],
        "accuracy_eager": [o.accuracy for o in outcomes[False]],
        "max_accuracy_delta": max(
            abs(f.accuracy - e.accuracy)
            for f, e in zip(outcomes[True], outcomes[False])),
    })
    benchmark.extra_info["epochs"] = [o.epochs for o in outcomes[True]]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _consecutive_retrains(model, result, warm_start: bool,
                          cycles: int = 3) -> list:
    """``cycles`` back-to-back retrains over the same observation
    buffer — the repeated-trigger regime warm starting targets."""

    handle = ModelHandle()
    handle.publish(model, clone=True)
    trainer = BackgroundTrainer(
        handle, result.registry,
        policy=RetrainPolicy(growth_threshold=4, min_observations=50),
        warm_start=warm_start, rng=np.random.default_rng(SEED + 41))
    for task, label in zip(result.tasks, result.labels):
        trainer.observe(task, int(label))
    updates = [trainer.train_once() for _ in range(cycles)]
    assert all(u is not None for u in updates)
    return updates


def test_warm_start_cuts_followup_epochs(deployment, benchmark):
    """Consecutive retrains with resumed Adam state: the first cycle is
    identical (no state to resume), every follow-up runs warm, and the
    warm follow-ups never need more epochs than cold restarts on the
    same seeds — the staleness window shrinks with the epoch count."""

    model, result = deployment
    cold = _consecutive_retrains(model, result, warm_start=False)
    warm = _consecutive_retrains(model, result, warm_start=True)

    rows = []
    for label, updates in (("cold restart", cold), ("warm start", warm)):
        for update in updates:
            rows.append([label, update.version, update.epochs,
                         f"{update.accuracy:.4f}",
                         f"{update.train_seconds * 1e3:,.0f} ms",
                         "yes" if update.warm_started else "no"])
    print()
    print(render_table(
        ["Path", "Version", "Epochs", "Accuracy", "Trigger->publish",
         "Warm"],
        rows, title="TRAIN — CONSECUTIVE RETRAINS, WARM vs COLD ADAM "
                    "(clusterdata-2019c)"))

    # Cycle 1 has no state to resume: both paths are bit-identical.
    assert warm[0].epochs == cold[0].epochs
    assert abs(warm[0].accuracy - cold[0].accuracy) < 1e-6
    assert not warm[0].warm_started
    # Every follow-up resumed the previous cycle's moments…
    assert all(u.warm_started for u in warm[1:])
    assert not any(u.warm_started for u in cold)
    # …and converged at least as fast, at acceptance-grade accuracy.
    warm_epochs = sum(u.epochs for u in warm[1:])
    cold_epochs = sum(u.epochs for u in cold[1:])
    assert warm_epochs <= cold_epochs, \
        f"warm follow-ups needed {warm_epochs} epochs vs {cold_epochs} cold"
    assert all(u.accuracy > 0.9 for u in warm)

    record_train_bench("warm_start_retrains", {
        "cycles": len(warm),
        "epochs_cold": [u.epochs for u in cold],
        "epochs_warm": [u.epochs for u in warm],
        "followup_epochs_cold": cold_epochs,
        "followup_epochs_warm": warm_epochs,
        "followup_epochs_saved": cold_epochs - warm_epochs,
        "followup_s_cold": sum(u.train_seconds for u in cold[1:]),
        "followup_s_warm": sum(u.train_seconds for u in warm[1:]),
        "accuracy_warm": [u.accuracy for u in warm],
        "accuracy_cold": [u.accuracy for u in cold]})
    benchmark.extra_info["followup_epochs_saved"] = cold_epochs - warm_epochs
    benchmark.pedantic(
        lambda: _consecutive_retrains(model, result, warm_start=True,
                                      cycles=2),
        rounds=2, iterations=1)


def _retrain_once(model, result, fused: bool):
    """One serving-scale retrain-trigger→publish cycle."""

    handle = ModelHandle()
    handle.publish(model, clone=True)
    trainer = BackgroundTrainer(
        handle, result.registry,
        policy=RetrainPolicy(growth_threshold=4, min_observations=50),
        fused=fused, rng=np.random.default_rng(SEED + 31))
    for task, label in zip(result.tasks, result.labels):
        trainer.observe(task, int(label))
    assert trainer.due()
    update = trainer.train_once()
    assert update is not None
    assert handle.version == 2
    return update


def test_retrain_trigger_to_publish_latency(deployment, benchmark):
    """End-to-end staleness window at serving scale: the fused path's
    retrain-trigger→publish latency must be ≤ half the eager path's,
    while publishing an equivalent model (same epochs, accuracy within
    1e-6 on the fixed seed)."""

    model, result = deployment
    # Warm shared caches (encoder memos, BLAS) off the clock.
    _retrain_once(model, result, fused=True)
    fused = _retrain_once(model, result, fused=True)
    eager = _retrain_once(model, result, fused=False)
    speedup = eager.train_seconds / fused.train_seconds

    print()
    print(render_table(
        ["Path", "Observations", "Width", "Epochs", "Accuracy",
         "Trigger->publish", "Speedup"],
        [["eager autograd", f"{eager.n_observations:,}",
          f"{eager.features_before}->{eager.features_after}",
          eager.epochs, f"{eager.accuracy:.4f}",
          f"{eager.train_seconds * 1e3:,.0f} ms", "1.00x"],
         ["fused TrainPlan", f"{fused.n_observations:,}",
          f"{fused.features_before}->{fused.features_after}",
          fused.epochs, f"{fused.accuracy:.4f}",
          f"{fused.train_seconds * 1e3:,.0f} ms", f"{speedup:.2f}x"]],
        title="TRAIN — RETRAIN-TRIGGER→PUBLISH LATENCY AT SERVING "
              "SCALE (clusterdata-2019c)"))

    # Same model accepted either way…
    assert fused.epochs == eager.epochs
    assert abs(fused.accuracy - eager.accuracy) < 1e-6
    assert fused.features_after == eager.features_after
    # …published at least twice as fast.
    assert speedup >= PUBLISH_SPEEDUP_FLOOR, \
        f"retrain->publish speedup {speedup:.2f}x under the " \
        f"{PUBLISH_SPEEDUP_FLOOR}x floor"

    record_train_bench("retrain_trigger_to_publish", {
        "observations": fused.n_observations,
        "epochs": fused.epochs,
        "eager_s": eager.train_seconds,
        "fused_s": fused.train_seconds,
        "speedup": speedup,
        "floor": PUBLISH_SPEEDUP_FLOOR,
        "staleness_closed_s": fused.staleness_closed_s})

    benchmark.extra_info["eager_s"] = eager.train_seconds
    benchmark.extra_info["fused_s"] = fused.train_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.pedantic(lambda: _retrain_once(model, result, fused=True),
                       rounds=2, iterations=1)
