#!/usr/bin/env python
"""Continuous transfer learning over a 31-day cell: Growing vs Fully Retrain.

The paper's central experiment (Tables X & XI): replay a computing cell's
feature-growth steps and compare the CTLM growing model against full
retraining and the sklearn-style baselines, reporting accuracy, Group-0
F1, epoch counts, and wall time per step.

Run:  python examples/continuous_transfer_learning.py --cell 2019c
      python examples/continuous_transfer_learning.py --all-baselines
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import epoch_reduction, table_xi_report
from repro.core import (BENCH_CONFIG, ContinuousLearningDriver,
                        FullyRetrainModel, GrowingModel, baseline_suite)
from repro.datasets import build_step_datasets
from repro.trace import generate_cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", default="2019c")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--tasks-per-day", type=int, default=1500)
    parser.add_argument("--all-baselines", action="store_true",
                        help="also run MLP / Ridge / SGD / Ensemble Voter")
    args = parser.parse_args()

    cell = generate_cell(args.cell, scale=args.scale, seed=args.seed,
                         tasks_per_day=args.tasks_per_day)
    print(f"cell {cell.name}: {cell.n_machines} machines, "
          f"{len(cell.step_times)} growth steps")
    result = build_step_datasets(cell)

    models: dict[str, object] = {
        "Growing": GrowingModel(BENCH_CONFIG,
                                rng=np.random.default_rng(args.seed + 1)),
        "Fully Retrain": FullyRetrainModel(
            BENCH_CONFIG, rng=np.random.default_rng(args.seed + 2)),
    }
    if args.all_baselines:
        models.update(baseline_suite(
            BENCH_CONFIG, rng=np.random.default_rng(args.seed + 3)))

    driver = ContinuousLearningDriver(models,
                                      batch_size=BENCH_CONFIG.batch_size,
                                      rng=np.random.default_rng(args.seed))
    run = driver.run(result.steps, cell_name=cell.name, verbose=True)

    print()
    print(table_xi_report(run))
    print()
    for name, summary in run.summaries().items():
        f1 = ("—" if summary.avg_group_0_f1 is None
              else f"{summary.avg_group_0_f1:.5f}")
        print(f"{name:>18}: avg acc {summary.avg_accuracy:.5f}  "
              f"avg F1_0 {f1}  epochs {summary.epochs_total}  "
              f"initial {summary.seconds_initial:.1f}s  "
              f"per-step {summary.avg_seconds_per_growth_step:.2f}s")
    reduction = epoch_reduction(run)
    print(f"\nGrowing model used {reduction:.0%} fewer epochs than full "
          f"retraining (paper: 40–91% fewer)")


if __name__ == "__main__":
    main()
