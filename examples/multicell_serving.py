#!/usr/bin/env python
"""Multi-cell serving: one Task CO Analyzer stack per computing cell.

The paper evaluates four computing cells with distinct constraint
vocabularies; per-queue/per-partition agents are the standard shape for
related RL schedulers.  This example deploys one model + registry per
cell behind a :class:`~repro.serve.CellRouter`, drives an interleaved
open-loop stream across all cells, hot-swaps every cell's model
mid-stream, and audits completed requests against the exact per-cell
version that served them — zero drops and zero cross-cell misroutes is
the acceptance bar.

Run:  python examples/multicell_serving.py [--cells 2019a,2019c] \
          [--workers 2] [--rate 6000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData, build_step_datasets
from repro.serve import CellRouter, LoadGenerator
from repro.trace import generate_cell


def train_initial(result, seed: int) -> GrowingModel:
    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(seed))
    for step in result.steps[:3]:
        if step.n_samples < 8 or len(np.unique(step.y)) < 2:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    return model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", default="2019a,2019c",
                        help="comma-separated trace profiles, one serving "
                             "stack each")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--tasks-per-day", type=int, default=400)
    parser.add_argument("--days", type=int, default=4)
    parser.add_argument("--rate", type=float, default=6000.0)
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--workers", type=int, default=2,
                        help="batcher shards per cell")
    args = parser.parse_args()

    router = CellRouter(n_workers=args.workers)
    corpora = {}
    for k, profile in enumerate(p for p in args.cells.split(",") if p):
        cell = generate_cell(profile, scale=args.scale,
                             seed=args.seed + k,
                             days=args.days,
                             tasks_per_day=args.tasks_per_day)
        result = build_step_datasets(cell)
        model = train_initial(result, args.seed + 10 + k)
        if model.features_count is None or not result.tasks:
            raise SystemExit(f"{profile}: nothing trainable to serve")
        router.add_cell(cell.name, model, result.registry,
                        rng=np.random.default_rng(args.seed + 20 + k))
        corpora[cell.name] = (result.tasks, result.labels)
        print(f"{cell.name}: {model.features_count}-feature model, "
              f"{len(result.tasks):,} constrained tasks in corpus")

    with router:
        report = LoadGenerator(
            router, corpora=corpora, rate=args.rate,
            duration_s=args.duration, swap_midstream=True,
            rng=np.random.default_rng(args.seed + 30)).run()

    print(f"\n{report}")
    stats = router.stats()
    for cell_id, cell_stats in stats.cells.items():
        print(f"  {cell_id}: {cell_stats.completed:,} classified over "
              f"{cell_stats.batches} batches "
              f"(largest {cell_stats.largest_batch}), "
              f"{cell_stats.swaps} hot-swap(s), "
              f"shards {list(cell_stats.shard_completed)}")
    assert report.n_dropped == 0, "dropped requests"
    assert report.n_misrouted == 0, "cross-cell misroutes"
    print(f"zero drops, zero misroutes ({report.n_audited} audited) "
          f"across {stats.swaps} mid-stream hot-swaps")


if __name__ == "__main__":
    main()
