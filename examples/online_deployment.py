#!/usr/bin/env python
"""Online deployment: the Figure 3 parallel model-update path.

The paper: "updating ML model runs in parallel and won't block or slow
down the main cluster scheduler."  This example deploys a model trained
only on the cell's *first* feature-growth window, then lets the
:class:`~repro.sim.OnlineModelUpdater` retrain it out-of-band as new
constraint vocabulary arrives during the replay — the serving analyzer
keeps routing from the stale model until each update publishes.

Run:  python examples/online_deployment.py [--cell 2019c]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData, build_step_datasets
from repro.sim import (OnlineModelUpdater, SimulationConfig,
                       SimulationEngine, TaskCOAnalyzer)
from repro.trace import MICROS_PER_MINUTE, format_sim_time, generate_cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", default="2019c")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--tasks-per-day", type=int, default=1000)
    parser.add_argument("--retrain-delay-min", type=int, default=5,
                        help="simulated side-car training latency")
    args = parser.parse_args()

    cell = generate_cell(args.cell, scale=args.scale, seed=args.seed,
                         tasks_per_day=args.tasks_per_day)
    result = build_step_datasets(cell)

    # Deploy with early knowledge only (the first three growth windows —
    # enough to have seen a few Group-0 examples; rare-class cold start is
    # otherwise unavoidable).
    model = GrowingModel(BENCH_CONFIG,
                         rng=np.random.default_rng(args.seed + 1))
    epochs = 0
    for step in result.steps[:3]:
        if step.n_samples < 8:
            continue
        outcome = model.fit_step(DatasetData(
            step.X, step.y, batch_size=BENCH_CONFIG.batch_size,
            rng=np.random.default_rng(step.step_index)))
        epochs += outcome.epochs
    print(f"deployed initial model: {model.features_count} features, "
          f"trained in {epochs} epochs on the first three windows "
          f"(registry already spans {result.registry.features_count})")

    updater = OnlineModelUpdater(
        model, result.registry, growth_threshold=4,
        retrain_delay_us=args.retrain_delay_min * MICROS_PER_MINUTE,
        min_observations=300, rng=np.random.default_rng(args.seed + 2))
    analyzer = TaskCOAnalyzer(model, result.registry, route_threshold=0)
    engine = SimulationEngine(SimulationConfig(scan_budget=24),
                              analyzer=analyzer, updater=updater)
    replay = engine.run(cell)

    print(f"\nreplay: {replay.tasks_submitted:,} tasks, "
          f"{analyzer.routed} of {analyzer.predictions} constrained "
          f"arrivals routed to the high-priority path")
    print(f"out-of-band updates published: {len(updater.updates)} "
          f"(failed: {updater.failed_updates})")
    print("\n  triggered    published    features     epochs  accuracy")
    for record in updater.updates:
        print(f"  {format_sim_time(record.triggered_at):>9}    "
              f"{format_sim_time(record.published_at):>9}    "
              f"{record.features_before:4d} -> {record.features_after:4d}"
              f"  {record.epochs:6d}  {record.accuracy:.4f}")
    print(f"\nserving model ended at {model.features_count} features "
          f"(registry: {result.registry.features_count}); restrictive-task "
          f"latency: {replay.recorder.summary_restrictive()}")


if __name__ == "__main__":
    main()
