#!/usr/bin/env python
"""Quickstart: train the CTLM growing model on one synthetic cell.

Generates a bench-scale clusterdata-2019c cell, runs the AGOCS dataset
pipeline (Figure 1), and feeds each feature-growth step to the growing
model — printing one line per Table XI-style retraining step.

Run:  python examples/quickstart.py [--cell 2019c] [--seed 0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData, build_step_datasets
from repro.trace import generate_cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", default="2019c",
                        help="cell name/alias (2011, 2019a, 2019c, 2019d)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.03,
                        help="cell-size fraction of the full trace")
    parser.add_argument("--tasks-per-day", type=int, default=1200)
    args = parser.parse_args()

    print(f"generating synthetic {args.cell} cell "
          f"(scale={args.scale}, seed={args.seed}) ...")
    cell = generate_cell(args.cell, scale=args.scale, seed=args.seed,
                         tasks_per_day=args.tasks_per_day)
    print(f"  {cell.n_machines} machines, {len(cell.trace):,} trace events, "
          f"group bin = {cell.group_bin} nodes")

    print("replaying trace through the AGOCS pipeline (Figure 1) ...")
    result = build_step_datasets(cell)
    print(f"  {result.n_tasks_with_co:,} constrained tasks of "
          f"{result.n_tasks_total:,}; feature array grew to "
          f"{result.registry.features_count} columns over "
          f"{len(result.steps)} steps")

    model = GrowingModel(BENCH_CONFIG,
                         rng=np.random.default_rng(args.seed + 1))
    print("\nstep  sim time   features  samples  epochs  accuracy  F1(g0)")
    for step in result.steps:
        if step.n_samples < 8:
            continue
        dataset = DatasetData(step.X, step.y,
                              batch_size=BENCH_CONFIG.batch_size,
                              rng=np.random.default_rng(step.step_index))
        outcome = model.fit_step(dataset)
        f1 = "  —  " if outcome.group_0_f1 is None \
            else f"{outcome.group_0_f1:.3f}"
        mode = "grow" if outcome.grew else ("init" if outcome.from_scratch
                                            else "cont")
        print(f"{step.step_index:4d}  {step.label:>9}  "
              f"{step.features_after:8d}  {step.n_samples:7d}  "
              f"{outcome.epochs:6d}  {outcome.accuracy:.4f}    {f1}  "
              f"[{mode}]")

    print(f"\nfinal model: {model.features_count} input features; "
          f"total epochs: {sum(o.epochs for o in model.history)}")


if __name__ == "__main__":
    main()
