#!/usr/bin/env python
"""Figure 3 demo: the Task CO Analyzer + High-Priority Scheduler.

Trains the CTLM on a cell's growth steps, installs it as the Task CO
Analyzer in front of the simulated cluster scheduler, and replays the
same workload twice — once plain, once enhanced — reporting scheduling
latency for restrictive (Group 0) tasks and for everyone else.

Run:  python examples/scheduler_integration.py [--cell 2019c]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import render_table
from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData, build_step_datasets
from repro.sim import SimulationConfig, SimulationEngine, TaskCOAnalyzer
from repro.trace import generate_cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", default="2019c")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--tasks-per-day", type=int, default=1200)
    parser.add_argument("--scan-budget", type=int, default=24,
                        help="main-scheduler queue scans per 10s cycle")
    args = parser.parse_args()

    cell = generate_cell(args.cell, scale=args.scale, seed=args.seed,
                         tasks_per_day=args.tasks_per_day)
    print(f"training the Task CO Analyzer model on {cell.name} ...")
    result = build_step_datasets(cell)
    model = GrowingModel(BENCH_CONFIG,
                         rng=np.random.default_rng(args.seed + 1))
    for step in result.steps:
        if step.n_samples < 8:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))

    sim_config = SimulationConfig(scan_budget=args.scan_budget)
    print("replaying through the plain main scheduler ...")
    baseline = SimulationEngine(sim_config).run(cell)
    print("replaying with the Task CO Analyzer + High-Priority Scheduler ...")
    analyzer = TaskCOAnalyzer(model, result.registry, route_threshold=0)
    enhanced = SimulationEngine(sim_config, analyzer=analyzer).run(cell)

    rows = []
    for label, base_s, enh_s in (
        ("restrictive (Group 0)", baseline.recorder.summary_restrictive(),
         enhanced.recorder.summary_restrictive()),
        ("all constrained", baseline.recorder.summary_constrained(),
         enhanced.recorder.summary_constrained()),
        ("all tasks", baseline.recorder.summary_all(),
         enhanced.recorder.summary_all()),
    ):
        rows.append([label, base_s.count, f"{base_s.mean_s:.2f}",
                     f"{base_s.p95_s:.2f}", f"{enh_s.mean_s:.2f}",
                     f"{enh_s.p95_s:.2f}"])
    print()
    print(render_table(
        ["Population", "n", "base mean s", "base p95 s",
         "enhanced mean s", "enhanced p95 s"], rows,
        title="FIG. 3 — ENHANCED CLUSTER JOB SCHEDULING WITH THE TASK CO "
              "ANALYZER"))
    print(f"\nanalyzer: routed {analyzer.routed} of {analyzer.predictions} "
          f"constrained tasks to the high-priority path; "
          f"preemptions (forced migration): "
          f"{enhanced.hp_stats.preemptions}; deferred: "
          f"{enhanced.hp_stats.deferred}")
    print(f"restrictive-task speedup: "
          f"{enhanced.restrictive_speedup_vs(baseline):.1f}×")


if __name__ == "__main__":
    main()
