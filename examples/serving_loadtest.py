#!/usr/bin/env python
"""Real-time serving: microbatching, background retraining, hot-swap.

The production counterpart of ``examples/online_deployment.py``: instead
of a simulated timebase, a real :class:`~repro.serve.ClassificationService`
absorbs an open-loop task stream while a background trainer watches the
feature registry and hot-swaps extended models without blocking serving
("updating ML model runs in parallel and won't block or slow down the
main cluster scheduler").

Run:  python examples/serving_loadtest.py [--rate 8000] [--pattern bursty]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import BENCH_CONFIG, GrowingModel
from repro.datasets import DatasetData, build_step_datasets
from repro.serve import ClassificationService, LoadGenerator
from repro.sim import RetrainPolicy
from repro.trace import generate_cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", default="2019c")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--tasks-per-day", type=int, default=400)
    parser.add_argument("--days", type=int, default=4)
    parser.add_argument("--rate", type=float, default=8000.0)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--pattern", default="poisson",
                        choices=["poisson", "bursty"])
    parser.add_argument("--workers", type=int, default=1,
                        help="microbatcher worker shards")
    parser.add_argument("--latency-budget-ms", type=float, default=None,
                        help="shed arrivals whose projected queueing "
                             "delay exceeds this budget (try 20 with "
                             "--rate 40000 --pattern bursty)")
    parser.add_argument("--shed-policy", default="reject",
                        choices=["reject", "drop-oldest"])
    parser.add_argument("--autotune", action="store_true",
                        help="re-fit microbatch size/wait to the "
                             "observed arrival rate")
    args = parser.parse_args()

    cell = generate_cell(args.cell, scale=args.scale, seed=args.seed,
                         days=args.days, tasks_per_day=args.tasks_per_day)
    result = build_step_datasets(cell)

    # Deploy with first-window knowledge only, so the registry already
    # holds vocabulary the served model has never seen — a retrain (with
    # input-layer extension) becomes due as observations stream in.
    model = GrowingModel(BENCH_CONFIG,
                         rng=np.random.default_rng(args.seed + 1))
    for step in result.steps:
        if step.n_samples < 8 or len(np.unique(step.y)) < 2:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(0)))
        break
    print(f"{cell.name}: deployed {model.features_count}-feature model; "
          f"registry spans {result.registry.features_count} "
          f"({len(result.tasks):,} constrained tasks in corpus)")

    policy = RetrainPolicy(growth_threshold=4, min_observations=100)
    service = ClassificationService(model, result.registry,
                                    n_workers=args.workers, policy=policy,
                                    latency_budget_ms=args.latency_budget_ms,
                                    shed_policy=args.shed_policy,
                                    autotune=args.autotune,
                                    rng=np.random.default_rng(args.seed + 2))
    with service:
        report = LoadGenerator(
            service, result.tasks, result.labels, rate=args.rate,
            duration_s=args.duration, pattern=args.pattern,
            observe_every=2,
            rng=np.random.default_rng(args.seed + 3)).run()

    print(report)
    stats = service.stats()
    print(f"batches: {stats.batches} (mean {stats.mean_batch:.1f}, "
          f"largest {stats.largest_batch}); observations fed: "
          f"{stats.observations:,}")
    if service.admission is not None:
        snap = service.admission.snapshot()
        print(f"admission: {stats.shed:,} shed "
              f"({stats.shed_rejected:,} gate / {stats.shed_evicted:,} "
              f"evicted / {stats.shed_expired:,} expired); observed "
              f"arrival {snap['arrival_rate']:,.0f}/s, drain "
              f"{snap['service_rate']:,.0f}/s per worker")
    if service.autotuner is not None:
        print(f"autotuner: settled at batch {stats.batch_limit} / "
              f"wait {stats.wait_limit_us}µs for "
              f"{service.autotuner.arrival_rate:,.0f}/s offered")
    assert service.trainer is not None
    for update in service.trainer.updates:
        print(f"hot-swap -> v{update.version}: {update.features_before} -> "
              f"{update.features_after} features in {update.epochs} epochs "
              f"(acc {update.accuracy:.3f}), trained off-path in "
              f"{update.train_seconds:.2f}s")
    if not service.trainer.updates:
        print("no retrain became due (try a larger cell or lower "
              "--min-observations)")


if __name__ == "__main__":
    main()
