#!/usr/bin/env python
"""Trace-substrate tour: generation, formats, anomalies, statistics.

Demonstrates the Google-Cluster-Data substrate end to end: synthesize a
cell, compute its Table IX workload statistics, write/read both archive
formats (2011 CSV, 2019 JSON), and run the anomaly injection →
AGOCS auto-correction round trip.

Run:  python examples/trace_tools.py [--outdir /tmp/repro-cells]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import co_distribution, render_table
from repro.trace import (CellArchive, autocorrect, generate_cell,
                         inject_anomalies, read_2019, write_2019)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default=None,
                        help="directory for the on-disk archives")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    outdir = Path(args.outdir) if args.outdir else \
        Path(tempfile.mkdtemp(prefix="repro-cells-"))

    # 1. Synthesize two cells, one per trace generation.
    cells = {}
    for name in ("2011", "2019c"):
        cells[name] = generate_cell(name, scale=0.02, seed=args.seed,
                                    days=6, tasks_per_day=600)
        cell = cells[name]
        print(f"{cell.name}: {cell.n_machines} machines, "
              f"{len(cell.trace):,} events "
              f"({cell.trace.format}-format archive)")

    # 2. Table IX statistics.
    rows = []
    for cell in cells.values():
        dist = co_distribution(cell)
        rows.append([cell.name, *dist.by_volume.as_percent(),
                     *dist.by_cpu.as_percent(), *dist.by_mem.as_percent()])
    print()
    print(render_table(
        ["Cell", "Vol min", "Vol max", "Vol avg", "CPU min", "CPU max",
         "CPU avg", "Mem min", "Mem max", "Mem avg"], rows,
        title="TABLE IX STATISTICS (6-day sample)"))

    # 3. Persist and reload in native formats.
    print()
    for cell in cells.values():
        archive = CellArchive(outdir / cell.name)
        archive.save(cell)
        reloaded = archive.load()
        assert len(reloaded.trace) == len(cell.trace)
        print(f"archived {cell.name} -> {outdir / cell.name} "
              f"({cell.trace.format} format) and reloaded "
              f"{len(reloaded.trace):,} events")

    # 4. Anomaly injection and AGOCS auto-correction.
    cell = cells["2019c"]
    rng = np.random.default_rng(args.seed + 7)
    defective, injected = inject_anomalies(cell.trace, rng,
                                           update_rate=0.03,
                                           missing_termination_rate=0.03)
    fixed, corrections = autocorrect(defective)
    print(f"\nanomaly round-trip on {cell.name}:")
    print(f"  injected: {injected.misordered_updates} mis-ordered updates, "
          f"{injected.dropped_terminations} missing terminations")
    print(f"  AGOCS fixes: {corrections.updates_offset} updates offset "
          f"after creation, {corrections.terminations_synthesized} task "
          f"markers removed with their collections")

    # 5. The corrected trace round-trips through the 2019 JSON codec.
    path = outdir / "fixed.jsonl"
    write_2019(fixed, path)
    assert len(read_2019(path)) == len(fixed)
    print(f"  corrected trace serialized to {path}")


if __name__ == "__main__":
    main()
