"""repro — Continuous Transfer Learning for real-time HPC cluster scheduling.

A complete, from-scratch reproduction of Sliwko & Mizera-Pietraszko,
"Enhancing Cluster Scheduling in HPC: A Continuous Transfer Learning for
Real-Time Optimization" (IPDPSW 2025), including every substrate the
paper depends on:

* :mod:`repro.nn` — PyTorch-style autograd/NN framework over NumPy,
* :mod:`repro.learn` — sklearn-style baseline classifiers and metrics,
* :mod:`repro.constraints` — the 8 GCD constraint operators, Table V
  compaction, and vectorized task↔machine matching,
* :mod:`repro.trace` — GCD 2011/2019 trace formats, synthetic cell
  generation, anomaly injection/auto-correction,
* :mod:`repro.datasets` — CO-EL / CO-VV encodings, 26-group labelling,
  the Figure 1 dataset pipeline,
* :mod:`repro.core` — the CTLM growing model (the paper's contribution),
  the fully-retrain variant, baselines, and the continuous-learning
  driver,
* :mod:`repro.sim` — the AGOCS-style scheduling simulator with the
  Figure 3 Task CO Analyzer / High-Priority Scheduler,
* :mod:`repro.serve` — the real-time classification service
  (microbatching, hot-swapped models, background retraining, load
  generation),
* :mod:`repro.analysis` — Table IX statistics and report rendering.

Quickstart::

    from repro.trace import generate_cell
    from repro.datasets import build_step_datasets, DatasetData
    from repro.core import GrowingModel, BENCH_CONFIG

    cell = generate_cell("2019c", scale=0.04, seed=0, tasks_per_day=2000)
    result = build_step_datasets(cell)
    model = GrowingModel(BENCH_CONFIG)
    for step in result.steps:
        outcome = model.fit_step(DatasetData(step.X, step.y))
        print(step.label, outcome.epochs, outcome.accuracy)
"""

from . import analysis, constraints, core, datasets, errors, learn, nn, rng
from . import serve, sim, trace

__version__ = "1.1.0"

__all__ = ["nn", "learn", "constraints", "trace", "datasets", "core", "sim",
           "serve", "analysis", "errors", "rng", "__version__"]
