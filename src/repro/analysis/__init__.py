"""``repro.analysis`` — workload statistics, table rendering, reports."""

from .reporting import epoch_reduction, table_x_report, table_xi_report
from .stats import CODistribution, ShareBand, co_distribution
from .tables import format_float, format_optional, render_table

__all__ = [
    "ShareBand", "CODistribution", "co_distribution",
    "render_table", "format_float", "format_optional",
    "table_x_report", "table_xi_report", "epoch_reduction",
]
