"""Concurrency lint + runtime race harness for the serving stack.

Static side (``repro lint``): a GuardedBy-style lock-discipline
checker, a blocking-call-under-lock checker, and a lexical lock-order
graph with cycle detection — see :mod:`.checker`, :mod:`.lockorder`,
:mod:`.driver`.  Runtime side (``REPRO_LOCK_DEBUG=1``): instrumented
locks that record per-thread acquisition order and hold times and
raise on observed lock-order inversion — see :mod:`.runtime`.
"""

from .annotations import FileAnnotations, scan_annotations
from .checker import FileChecker, check_source
from .driver import iter_python_files, run_lint
from .lockorder import LockOrderGraph
from .model import Finding, GuardDecl, LintReport, LockOrderEdge, Suppression
from .runtime import (
    InstrumentedLock,
    LockOrderError,
    OrderTracker,
    default_tracker,
    lock_debug_enabled,
    new_condition,
    new_lock,
)

__all__ = [
    "FileAnnotations",
    "FileChecker",
    "Finding",
    "GuardDecl",
    "InstrumentedLock",
    "LintReport",
    "LockOrderEdge",
    "LockOrderGraph",
    "LockOrderError",
    "OrderTracker",
    "Suppression",
    "check_source",
    "default_tracker",
    "iter_python_files",
    "lock_debug_enabled",
    "new_condition",
    "new_lock",
    "run_lint",
    "scan_annotations",
]
