"""Source-comment annotation scanning for the concurrency checkers.

The annotation language is trailing comments, in the spirit of Clang's
thread-safety attributes / Java's ``@GuardedBy`` adapted to Python:

``# guarded-by: <lock>``
    On a ``self.<field> = ...`` assignment (usually in ``__init__``):
    every read/write of ``<field>`` must happen inside a
    ``with self.<lock>:`` block of the same function.

``# unguarded-ok: <reason>``
    Escape hatch for a deliberate lock-free access (atomic snapshot
    reads, control-plane-only paths).  The reason is mandatory — an
    empty one is itself a finding.

``# blocking-ok: <reason>``
    Same escape hatch for the blocking-call-under-lock checker.

``# requires-lock: <lock>[, <lock>...]``
    On a ``def`` line: the function is only ever called with those
    locks already held, so the checker treats them as held for the
    whole body (and seeds the static lock-order graph accordingly).

``# lock-alias: <name> = <lock>``
    Declares ``self.<name>`` to be the same underlying lock as
    ``self.<lock>`` (a ``threading.Condition`` wrapping it, a shared
    reference).  ``Condition(self.<lock>)`` construction is also
    auto-detected without the comment.

A module-level ``GUARDED_BY = {"Class.field": "lock", ...}`` literal
dict is the comment-free alternative for declaring guards (keys without
a class prefix apply to every class in the module).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["FileAnnotations", "scan_annotations"]

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")
_UNGUARDED_OK = re.compile(r"#\s*unguarded-ok:(.*)$")
_BLOCKING_OK = re.compile(r"#\s*blocking-ok:(.*)$")
_REQUIRES = re.compile(r"#\s*requires-lock:\s*([A-Za-z_][\w.,\s]*)")
_ALIAS = re.compile(r"#\s*lock-alias:\s*([A-Za-z_]\w*)\s*=\s*([A-Za-z_]\w*)")


@dataclass(slots=True)
class FileAnnotations:
    """Per-line annotation comments extracted from one source file.

    All maps are keyed by 1-based physical line number.  ``unguarded_ok``
    and ``blocking_ok`` map to the (possibly empty) reason text; an
    empty reason is the *bad-suppression* signal the checker reports.
    """

    guarded_by: dict[int, str] = field(default_factory=dict)
    unguarded_ok: dict[int, str] = field(default_factory=dict)
    blocking_ok: dict[int, str] = field(default_factory=dict)
    requires: dict[int, tuple[str, ...]] = field(default_factory=dict)
    aliases: dict[int, tuple[str, str]] = field(default_factory=dict)

    def suppression_reason(self, tag_map: dict[int, str],
                           start: int, end: int) -> tuple[bool, str]:
        """Whether lines ``start..end`` carry a suppression, and its
        reason (first one found wins)."""

        for line in range(start, end + 1):
            if line in tag_map:
                return True, tag_map[line]
        return False, ""


def scan_annotations(source: str) -> FileAnnotations:
    """Extract every annotation comment from ``source``.

    The scan is line-based and deliberately permissive about what code
    precedes the comment; the checker decides what each annotation
    attaches to from the AST side.  Annotation markers inside string
    literals would be misread — the convention is comments-only, which
    the test fixtures pin.
    """

    ann = FileAnnotations()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        m = _GUARDED_BY.search(text)
        if m:
            ann.guarded_by[lineno] = m.group(1)
        m = _UNGUARDED_OK.search(text)
        if m:
            ann.unguarded_ok[lineno] = m.group(1).strip()
        m = _BLOCKING_OK.search(text)
        if m:
            ann.blocking_ok[lineno] = m.group(1).strip()
        m = _REQUIRES.search(text)
        if m:
            names = tuple(name.strip() for name in m.group(1).split(",")
                          if name.strip())
            if names:
                ann.requires[lineno] = names
        m = _ALIAS.search(text)
        if m:
            ann.aliases[lineno] = (m.group(1), m.group(2))
    return ann
