"""AST lock-discipline + blocking-call checker for one source file.

:class:`FileChecker` runs three analyses in a single AST pass per
function, sharing one model of *which locks are held here*:

* **Guard discipline** — every access to a field declared
  ``# guarded-by: <lock>`` (or listed in a module-level ``GUARDED_BY``
  map) must be lexically enclosed in ``with self.<lock>:`` within the
  same function.  ``__init__`` / ``__new__`` / ``__del__`` are exempt
  (the object is not shared yet / anymore), and a trailing
  ``# unguarded-ok: <reason>`` suppresses a single access — with the
  reason mandatory.
* **Blocking calls under a lock** — ``time.sleep``, ``subprocess``,
  ``socket`` / ``http.client`` / ``urllib.request`` operations,
  ``Thread.join`` and ``Event.wait`` inside a ``with <lock>:`` body
  stall every other thread contending for that lock.  Waiting on the
  *innermost Condition itself* is the one sanctioned pattern
  (``Condition.wait`` releases its own lock) — waiting while any other
  lock is also held is still flagged.
* **Acquisition-order edges** — every lexically nested ``with``
  acquisition (plus ``# requires-lock`` entry states) contributes a
  *held → acquired* edge to the file-set-wide lock-order graph that
  :mod:`.lockorder` checks for cycles.

The analysis is deliberately intra-procedural: an access in a helper
called with a lock held is covered by annotating the helper with
``# requires-lock``, not by whole-program inference.  Accesses through
another object (``self.admission.shed_total``) are out of scope — the
discipline of a field belongs to the class that declares it.
"""

from __future__ import annotations

import ast
import re

from .annotations import FileAnnotations, scan_annotations
from .model import Finding, GuardDecl, LockOrderEdge, Suppression

__all__ = ["FileChecker", "check_source"]

#: Functions where unguarded access to the instance's own fields is
#: allowed: the instance is not visible to other threads yet (or is
#: being torn down).
EXEMPT_FUNCTIONS = frozenset({"__init__", "__new__", "__del__"})

#: Resolved dotted-call prefixes considered blocking.
BLOCKING_PREFIXES = (
    "time.sleep",
    "subprocess.",
    "socket.",
    "http.client.",
    "urllib.request.",
)

#: With-target names that participate in the lock-order graph.  The
#: guard checker tracks *every* ``with`` target; the order graph only
#: wants locks, so plain context managers (files, ExitStacks) stay out.
_LOCKISH = re.compile(r"lock|cond|mutex|sem(?:aphore)?|wake|guard", re.I)

_CONDITION_CALLEES = frozenset({"threading.Condition", "Condition"})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""

    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``."""

    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _ClassInfo:
    """Guard table + lock aliases for one class."""

    __slots__ = ("name", "guards", "aliases")

    def __init__(self, name: str):
        self.name = name
        self.guards: dict[str, str] = {}   # field -> declared lock name
        self.aliases: dict[str, str] = {}  # lock name -> aliased lock name

    def canonical(self, lock: str) -> str:
        seen = set()
        while lock in self.aliases and lock not in seen:
            seen.add(lock)
            lock = self.aliases[lock]
        return lock


class _HeldLock:
    """One entry on the statically-tracked held-locks stack."""

    __slots__ = ("local", "node_name", "line")

    def __init__(self, local: str, node_name: str, line: int):
        self.local = local          # canonical in-class name ("_cond")
        self.node_name = node_name  # graph node ("MicroBatcher._cond")
        self.line = line


class FileChecker:
    """Run all static concurrency checks over one parsed file."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.annotations: FileAnnotations = scan_annotations(source)
        self.findings: list[Finding] = []
        self.suppressions: list[Suppression] = []
        self.guards: list[GuardDecl] = []
        self.edges: list[LockOrderEdge] = []
        self._imports: dict[str, str] = {}
        self._module_guards: dict[str | None, dict[str, str]] = {}
        self._consumed_guard_lines: set[int] = set()
        self._consumed_alias_lines: set[int] = set()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> None:
        try:
            tree = ast.parse(self.source)
        except SyntaxError as exc:
            self._finding(exc.lineno or 1, "parse-error",
                          f"file does not parse: {exc.msg}")
            return
        self._collect_imports(tree)
        self._collect_module_guard_map(tree)
        module_name = re.sub(r"\.py$", "", self.path.replace("\\", "/")
                             .rsplit("/", 1)[-1])
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._check_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node, class_info=None,
                                     scope_name=module_name)
        self._report_dangling_annotations()

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.asname and alias.name or local
                    self._imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: not a stdlib module
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._imports[local] = f"{node.module}.{alias.name}"

    def _collect_module_guard_map(self, tree: ast.Module) -> None:
        """Parse ``GUARDED_BY = {"Class.field": "lock", ...}``."""

        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == "GUARDED_BY"
                       for t in node.targets):
                continue
            try:
                mapping = ast.literal_eval(node.value)
            except (ValueError, SyntaxError):
                mapping = None
            if not isinstance(mapping, dict):
                self._finding(node.lineno, "bad-declaration",
                              "GUARDED_BY must be a literal dict of "
                              "'Class.field' (or 'field') -> 'lock'")
                continue
            for key, lock in mapping.items():
                if not (isinstance(key, str) and isinstance(lock, str)):
                    self._finding(node.lineno, "bad-declaration",
                                  f"GUARDED_BY entry {key!r}: {lock!r} "
                                  f"is not a string pair")
                    continue
                cls, _, fld = key.rpartition(".")
                scope = cls or None
                self._module_guards.setdefault(scope, {})[fld] = lock
                self.guards.append(GuardDecl(self.path, node.lineno,
                                             scope, fld, lock))

    def _collect_class_info(self, node: ast.ClassDef) -> _ClassInfo:
        info = _ClassInfo(node.name)
        info.guards.update(self._module_guards.get(None, {}))
        info.guards.update(self._module_guards.get(node.name, {}))
        # Trailing ``# guarded-by`` comments on assignments to
        # ``self.<field>`` (or class-body attributes).
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, ast.AnnAssign):
                targets = [sub.target]
            else:
                continue
            lock = None
            for line in range(sub.lineno, (sub.end_lineno or sub.lineno) + 1):
                if line in self.annotations.guarded_by:
                    lock = self.annotations.guarded_by[line]
                    decl_line = line
                    break
            for target in targets:
                field = _self_attr(target)
                if field is None and isinstance(target, ast.Name):
                    field = target.id
                if field is None:
                    continue
                if lock is not None:
                    info.guards[field] = lock
                    self._consumed_guard_lines.add(decl_line)
                    self.guards.append(GuardDecl(self.path, decl_line,
                                                 node.name, field, lock))
                self._detect_auto_alias(info, target, sub)
        # ``# lock-alias: a = b`` comments inside the class span.
        for line, (alias, lock) in self.annotations.aliases.items():
            if node.lineno <= line <= (node.end_lineno or node.lineno):
                info.aliases[alias] = lock
                self._consumed_alias_lines.add(line)
        return info

    def _detect_auto_alias(self, info: _ClassInfo, target: ast.AST,
                           assign: ast.AST) -> None:
        """``self.Y = threading.Condition(self.X)`` ⇒ alias Y → X."""

        field = _self_attr(target)
        value = getattr(assign, "value", None)
        if field is None or not isinstance(value, ast.Call):
            return
        callee = _dotted(value.func)
        if callee is None:
            return
        resolved = self._resolve_call(callee)
        if (resolved or callee) not in _CONDITION_CALLEES \
                and callee not in _CONDITION_CALLEES:
            return
        if value.args:
            wrapped = _self_attr(value.args[0])
            if wrapped is not None:
                info.aliases[field] = wrapped

    # ------------------------------------------------------------------
    # per-class / per-function dispatch
    # ------------------------------------------------------------------
    def _check_class(self, node: ast.ClassDef) -> None:
        info = self._collect_class_info(node)
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(sub, class_info=info,
                                     scope_name=node.name)
            elif isinstance(sub, ast.ClassDef):
                self._check_class(sub)

    def _requires_locks(self, node: ast.AST) -> tuple[str, ...]:
        body = getattr(node, "body", None)
        last = (body[0].lineno - 1) if body else node.lineno
        for line in range(node.lineno, max(node.lineno, last) + 1):
            if line in self.annotations.requires:
                return self.annotations.requires[line]
        return ()

    def _check_function(self, node, class_info: _ClassInfo | None,
                        scope_name: str) -> None:
        checker = _FunctionWalk(self, node, class_info, scope_name)
        checker.run()

    # ------------------------------------------------------------------
    # helpers shared with the function walker
    # ------------------------------------------------------------------
    def _resolve_call(self, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        base = self._imports.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    def _finding(self, line: int, kind: str, message: str) -> None:
        self.findings.append(Finding(self.path, line, kind, message))

    def _suppressed(self, tag_map: dict[int, str], tag: str,
                    start: int, end: int) -> bool:
        """Consume a suppression comment covering ``start..end``.

        Returns True when the access is suppressed *with a reason*;
        an empty reason records a ``bad-suppression`` finding and does
        NOT suppress.
        """

        hit, reason = self.annotations.suppression_reason(tag_map, start,
                                                          end)
        if not hit:
            return False
        if not reason:
            self._finding(start, "bad-suppression",
                          f"# {tag}: must carry a reason — an unexplained "
                          f"suppression is a finding, not an escape")
            return False
        self.suppressions.append(Suppression(self.path, start, tag, reason))
        return True

    def _report_dangling_annotations(self) -> None:
        for line in sorted(set(self.annotations.guarded_by)
                           - self._consumed_guard_lines):
            self._finding(line, "bad-declaration",
                          "guarded-by annotation is not attached to a "
                          "field assignment (the comment must trail the "
                          "assignment statement)")


class _FunctionWalk:
    """Single-function recursive walk tracking the held-lock stack."""

    def __init__(self, file_checker: FileChecker, node,
                 class_info: _ClassInfo | None, scope_name: str):
        self.fc = file_checker
        self.node = node
        self.info = class_info
        self.scope = scope_name
        self.held: list[_HeldLock] = []
        self._stmt_span: list[tuple[int, int]] = []
        self.exempt = (class_info is not None
                       and node.name in EXEMPT_FUNCTIONS)

    # -- naming --------------------------------------------------------
    def _canonical(self, local: str) -> str:
        return self.info.canonical(local) if self.info else local

    def _node_name(self, local: str, is_self: bool) -> str:
        owner = self.info.name if (is_self and self.info) else self.scope
        return f"{owner}.{local}"

    def _lock_from_expr(self, expr: ast.AST) -> tuple[str, str] | None:
        """(local canonical name, graph node name) for a with-target."""

        attr = _self_attr(expr)
        if attr is not None:
            local = self._canonical(attr)
            return local, self._node_name(local, is_self=True)
        if isinstance(expr, ast.Name):
            return expr.id, self._node_name(expr.id, is_self=False)
        dotted = _dotted(expr)
        if dotted is not None:
            return dotted, dotted
        return None

    def _lockish(self, local: str) -> bool:
        if _LOCKISH.search(local):
            return True
        if self.info and local in set(self.info.guards.values()):
            return True
        return False

    # -- entry ---------------------------------------------------------
    def run(self) -> None:
        for required in self.fc._requires_locks(self.node):
            local = self._canonical(required)
            self.held.append(_HeldLock(local,
                                       self._node_name(local, is_self=True),
                                       self.node.lineno))
        for stmt in self.node.body:
            self._visit(stmt)

    # -- traversal -----------------------------------------------------
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: runs later, possibly without the lock —
            # analyze it conservatively with a fresh (empty) held stack.
            self.fc._check_function(node, self.info, self.scope)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        is_simple_stmt = isinstance(node, (
            ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return,
            ast.Raise, ast.Assert, ast.Delete))
        if is_simple_stmt:
            self._stmt_span.append((node.lineno,
                                    node.end_lineno or node.lineno))
        if isinstance(node, ast.Call):
            self._check_call(node)
        elif isinstance(node, ast.Attribute):
            self._check_attribute(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        if is_simple_stmt:
            self._stmt_span.pop()

    def _visit_with(self, node) -> None:
        pushed = 0
        for item in node.items:
            self._visit(item.context_expr)  # the expr itself may access
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
            lock = self._lock_from_expr(item.context_expr)
            if lock is None:
                continue
            local, node_name = lock
            if self._lockish(local):
                for held in self.held:
                    if (self._lockish(held.local)
                            and held.node_name != node_name):
                        self.fc.edges.append(LockOrderEdge(
                            held.node_name, node_name, self.fc.path,
                            item.context_expr.lineno))
            self.held.append(_HeldLock(local, node_name,
                                       item.context_expr.lineno))
            pushed += 1
        for stmt in node.body:
            self._visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    # -- the checks ----------------------------------------------------
    def _span_for(self, node: ast.AST) -> tuple[int, int]:
        if self._stmt_span:
            return self._stmt_span[-1]
        return node.lineno, node.end_lineno or node.lineno

    def _check_attribute(self, node: ast.Attribute) -> None:
        if self.exempt or self.info is None:
            return
        field = _self_attr(node)
        if field is None or field not in self.info.guards:
            return
        lock = self._canonical(self.info.guards[field])
        if any(held.local == lock for held in self.held):
            return
        start, end = self._span_for(node)
        if self.fc._suppressed(self.fc.annotations.unguarded_ok,
                               "unguarded-ok", start, end):
            return
        write = isinstance(node.ctx, (ast.Store, ast.Del))
        kind = "unguarded-write" if write else "unguarded-read"
        self.fc._finding(
            node.lineno, kind,
            f"{self.info.name}.{field} is guarded by "
            f"self.{self.info.guards[field]} but accessed without it "
            f"held (add 'with self.{self.info.guards[field]}:', a "
            f"requires-lock annotation on the function, or an explained "
            f"unguarded-ok comment)")

    def _check_call(self, node: ast.Call) -> None:
        # Only lock-ish held entries count: ``with service:`` or
        # ``with open(...) as fh:`` are context managers other threads
        # do not contend on, so blocking inside them is fine.
        held_locks = [h for h in self.held if self._lockish(h.local)]
        if not held_locks:
            return
        reason = self._blocking_reason(node, held_locks)
        if reason is None:
            return
        start, end = self._span_for(node)
        if self.fc._suppressed(self.fc.annotations.blocking_ok,
                               "blocking-ok", start, end):
            return
        locks = ", ".join(h.node_name for h in held_locks)
        self.fc._finding(
            node.lineno, "blocking-under-lock",
            f"{reason} while holding {locks} — blocking calls under a "
            f"lock stall every contending thread (move it outside the "
            f"critical section or add an explained blocking-ok comment)")

    def _blocking_reason(self, node: ast.Call,
                         held_locks: list[_HeldLock]) -> str | None:
        dotted = _dotted(node.func)
        if dotted is not None:
            resolved = self.fc._resolve_call(dotted) or dotted
            for prefix in BLOCKING_PREFIXES:
                if resolved == prefix or (prefix.endswith(".")
                                          and resolved.startswith(prefix)):
                    return f"call to {resolved}"
        if not isinstance(node.func, ast.Attribute):
            return None
        method = node.func.attr
        receiver = node.func.value
        if method == "join":
            text = _dotted(receiver) or ""
            if "thread" in text.lower():
                return f"{text}.join()"
            return None
        if method == "wait":
            lock = self._lock_from_expr(receiver)
            receiver_local = lock[0] if lock else None
            others = [h for h in held_locks if h.local != receiver_local]
            if receiver_local is not None and not others:
                # Condition.wait on the innermost (only) held lock: the
                # wait releases exactly that lock — the sanctioned
                # condition-variable pattern.
                return None
            text = _dotted(receiver) or "<expr>"
            if others and receiver_local is not None:
                return (f"{text}.wait() releases only its own lock; "
                        f"still holding "
                        f"{', '.join(h.node_name for h in others)}")
            return f"{text}.wait()"
        return None


def check_source(path: str, source: str) -> FileChecker:
    """Convenience wrapper: build, run, return the checker."""

    checker = FileChecker(path, source)
    checker.run()
    return checker
