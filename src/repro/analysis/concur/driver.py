"""Top-level lint driver: walk files, run checks, aggregate a report."""

from __future__ import annotations

import os

from .checker import check_source
from .lockorder import LockOrderGraph
from .model import Finding, LintReport

__all__ = ["iter_python_files", "run_lint"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist",
              ".pytest_cache", ".ruff_cache", "node_modules"}


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""

    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in files:
                if name.endswith(".py"):
                    out.add(os.path.join(root, name))
    return sorted(out)


def run_lint(paths: list[str], dot_path: str | None = None) -> LintReport:
    """Lint every ``.py`` under ``paths``; optionally dump the DOT graph.

    The lock-order graph is built across the whole file set — deadlock
    cycles are usually *cross*-module (A takes its own lock then calls
    into B; B does the reverse), so per-file analysis would miss them.
    """

    report = LintReport()
    for path in iter_python_files(paths):
        report.files.append(path)
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.findings.append(Finding(path, 0, "parse-error",
                                           f"cannot read file: {exc}"))
            continue
        checker = check_source(path, source)
        report.findings.extend(checker.findings)
        report.suppressions.extend(checker.suppressions)
        report.guards.extend(checker.guards)
        report.edges.extend(checker.edges)

    graph = LockOrderGraph(report.edges)
    cycle = graph.cycle_finding()
    if cycle is not None:
        report.findings.append(cycle)
    if dot_path:
        with open(dot_path, "w", encoding="utf-8") as fh:
            fh.write(graph.to_dot())
    return report
