"""Static lock-order graph: cycle detection + DOT rendering.

The checker emits one :class:`~.model.LockOrderEdge` per lexically
nested acquisition (*held* → *acquired*).  Here those edges become a
directed graph over lock names; a cycle means two code paths acquire
the same pair of locks in opposite orders — the classic deadlock shape.
The graph also renders to Graphviz DOT so the acquisition discipline
can be reviewed (and diffed) by eye.
"""

from __future__ import annotations

from collections import defaultdict

from .model import Finding, LockOrderEdge

__all__ = ["LockOrderGraph"]


class LockOrderGraph:
    """Directed graph of observed *held → acquired* lock pairs."""

    def __init__(self, edges: list[LockOrderEdge] | None = None):
        self._adj: dict[str, set[str]] = defaultdict(set)
        self._sites: dict[tuple[str, str], LockOrderEdge] = {}
        for edge in edges or []:
            self.add(edge)

    def add(self, edge: LockOrderEdge) -> None:
        self._adj[edge.held].add(edge.acquired)
        self._adj.setdefault(edge.acquired, set())
        # First site wins: one representative location per edge is
        # enough for the DOT label and the cycle message.
        self._sites.setdefault((edge.held, edge.acquired), edge)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._adj)

    def edges(self) -> list[tuple[str, str]]:
        return sorted((a, b) for a, succs in self._adj.items()
                      for b in succs)

    # ------------------------------------------------------------------
    # cycle detection
    # ------------------------------------------------------------------
    def find_cycle(self) -> list[str] | None:
        """A cycle as ``[a, b, ..., a]``, or None if the graph is a DAG.

        Iterative three-color DFS; deterministic (sorted neighbor
        order) so the same graph always reports the same cycle.
        """

        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self._adj}
        parent: dict[str, str] = {}
        for root in sorted(self._adj):
            if color[root] != WHITE:
                continue
            stack: list[tuple[str, list[str]]] = [
                (root, sorted(self._adj[root]))]
            color[root] = GRAY
            while stack:
                node, succs = stack[-1]
                if not succs:
                    color[node] = BLACK
                    stack.pop()
                    continue
                nxt = succs.pop(0)
                if color[nxt] == GRAY:
                    cycle = [nxt]
                    cur = node
                    while cur != nxt:
                        cycle.append(cur)
                        cur = parent[cur]
                    cycle.append(nxt)
                    cycle.reverse()
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, sorted(self._adj[nxt])))
        return None

    def cycle_finding(self) -> Finding | None:
        cycle = self.find_cycle()
        if cycle is None:
            return None
        # Anchor the finding at the site of the edge that closes the
        # cycle (last hop) so the report points at real code.
        site = self._sites.get((cycle[-2], cycle[-1]))
        path = " -> ".join(cycle)
        return Finding(
            site.file if site else "<lock-order>",
            site.line if site else 0,
            "lock-order-cycle",
            f"lock acquisition order has a cycle: {path} — two paths "
            f"take these locks in opposite orders, which can deadlock")

    # ------------------------------------------------------------------
    # DOT rendering
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        lines = [
            "digraph lock_order {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace"];',
        ]
        for node in self.nodes:
            lines.append(f'  "{node}";')
        for held, acquired in self.edges():
            site = self._sites[(held, acquired)]
            label = f"{site.file.rsplit('/', 1)[-1]}:{site.line}"
            lines.append(f'  "{held}" -> "{acquired}" '
                         f'[label="{label}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"
