"""Data model shared by the concurrency checkers.

A lint run produces :class:`Finding` instances (discipline violations,
blocking calls under a lock, lock-order cycles, malformed annotations),
:class:`Suppression` records (every ``unguarded-ok`` / ``blocking-ok``
escape hatch that was actually exercised, with its mandatory reason),
and :class:`LockOrderEdge` entries (the statically-observed *acquire A
then B* pairs the deadlock check runs over).  Everything rolls up into
one :class:`LintReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Finding", "Suppression", "GuardDecl", "LockOrderEdge", "LintReport",
]

#: Finding kinds, in the order the report sorts equal-location findings.
KINDS = (
    "parse-error",        # file failed to parse at all
    "bad-declaration",    # malformed guarded-by / GUARDED_BY entry
    "bad-suppression",    # escape hatch without a written reason
    "unguarded-read",     # guarded field read outside its lock
    "unguarded-write",    # guarded field written outside its lock
    "blocking-under-lock",  # sleep/IO/join/wait while holding a lock
    "lock-order-cycle",   # the static acquisition graph has a cycle
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One checker complaint, anchored to a source location."""

    file: str
    line: int
    kind: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.kind}] {self.message}"


@dataclass(frozen=True, slots=True)
class Suppression:
    """One exercised escape hatch (``unguarded-ok`` / ``blocking-ok``).

    Suppressions are first-class output: the acceptance bar is *zero
    unexplained* suppressions, so every one carries the reason its
    author wrote down.
    """

    file: str
    line: int
    tag: str
    reason: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.tag}] {self.reason}"


@dataclass(frozen=True, slots=True)
class GuardDecl:
    """One *field → lock* declaration (``# guarded-by`` or GUARDED_BY)."""

    file: str
    line: int
    class_name: str | None  # None = applies to every class in the module
    field: str
    lock: str


@dataclass(frozen=True, slots=True)
class LockOrderEdge:
    """Statically observed acquisition order: ``held`` → ``acquired``."""

    held: str
    acquired: str
    file: str
    line: int


@dataclass(slots=True)
class LintReport:
    """Aggregated result of one ``repro lint`` run."""

    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    guards: list[GuardDecl] = field(default_factory=list)
    edges: list[LockOrderEdge] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted_findings(self) -> list[Finding]:
        kind_rank = {kind: i for i, kind in enumerate(KINDS)}
        return sorted(self.findings,
                      key=lambda f: (f.file, f.line,
                                     kind_rank.get(f.kind, len(KINDS))))

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": len(self.files),
            "guarded_fields": len(self.guards),
            "findings": [{"file": f.file, "line": f.line, "kind": f.kind,
                          "message": f.message}
                         for f in self.sorted_findings()],
            "suppressions": [{"file": s.file, "line": s.line, "tag": s.tag,
                              "reason": s.reason}
                             for s in self.suppressions],
            "lock_order_edges": [{"held": e.held, "acquired": e.acquired,
                                  "file": e.file, "line": e.line}
                                 for e in self.edges],
        }

    def render(self) -> str:
        lines = [f.render() for f in self.sorted_findings()]
        unique_edges = sorted({(e.held, e.acquired) for e in self.edges})
        lines.append(
            f"{len(self.files)} file(s): {len(self.guards)} guarded "
            f"field(s), {len(self.suppressions)} explained "
            f"suppression(s), {len(unique_edges)} lock-order edge(s), "
            f"{len(self.findings)} finding(s)")
        return "\n".join(lines)
