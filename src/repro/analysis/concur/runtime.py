"""Runtime lock instrumentation: acquisition order + hold times.

The static checker proves *lexical* discipline; this module watches the
*dynamic* behavior.  :func:`new_lock` / :func:`new_condition` are the
factories the serving stack uses for every lock it creates — with
``REPRO_LOCK_DEBUG=1`` in the environment they return an
:class:`InstrumentedLock` registered with the process-wide
:class:`OrderTracker`; otherwise they return plain ``threading``
primitives with zero overhead.

The tracker maintains, per thread, the stack of currently-held locks
and, globally, the set of *held → acquired* edges keyed by lock *name*
(not instance: ``MicroBatcher._cond`` from two different batchers is
the same discipline).  Observing an edge whose reverse was already
recorded is a lock-order inversion — it is recorded for the end-of-run
report **and** raised as :class:`LockOrderError`, because worker loops
may swallow exceptions.  Re-acquiring a non-reentrant lock the thread
already holds would self-deadlock, so that raises immediately instead
of hanging the suite.

Hold times land in log2-bucketed histograms per lock name; the report
gives approximate p50/p99 per lock, which is what the soak/overload
suites print when instrumentation is on.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = [
    "InstrumentedLock", "LockOrderError", "OrderTracker",
    "default_tracker", "lock_debug_enabled", "new_condition", "new_lock",
]

ENV_FLAG = "REPRO_LOCK_DEBUG"


def lock_debug_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0", "false", "no")


class LockOrderError(RuntimeError):
    """Observed lock-order inversion or certain self-deadlock."""


class _Hold:
    """Log2-bucketed histogram of hold durations for one lock name."""

    __slots__ = ("count", "total_s", "max_s", "buckets")

    # bucket i covers [2**(i-1), 2**i) microseconds; bucket 0 is < 1us.
    N_BUCKETS = 40

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.buckets = [0] * self.N_BUCKETS

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        us = seconds * 1e6
        idx = 0
        while idx < self.N_BUCKETS - 1 and us >= (1 << idx):
            idx += 1
        self.buckets[idx] += 1

    def quantile_s(self, q: float) -> float:
        """Upper bound of the bucket containing quantile ``q``."""

        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for idx, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return (1 << idx) / 1e6
        return self.max_s


class OrderTracker:
    """Process-wide recorder of acquisition order and hold times."""

    def __init__(self) -> None:
        self._meta = threading.Lock()  # guards everything below
        self._edges: dict[tuple[str, str], tuple[str, str]] = {}
        self._inversions: list[str] = []
        self._holds: dict[str, _Hold] = {}
        self._tls = threading.local()

    # -- per-thread held stack -----------------------------------------
    def _stack(self) -> list["InstrumentedLock"]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- hooks called by InstrumentedLock ------------------------------
    def note_acquired(self, lock: "InstrumentedLock") -> None:
        stack = self._stack()
        thread = threading.current_thread().name
        errors: list[str] = []
        with self._meta:
            for held in stack:
                if held.name == lock.name:
                    # Same name, different instance (e.g. two batcher
                    # shards): ordering between peers is instance-
                    # dependent, not a discipline edge.
                    continue
                edge = (held.name, lock.name)
                rev = (lock.name, held.name)
                if rev in self._edges:
                    where = self._edges[rev]
                    msg = (f"lock-order inversion: {thread} acquired "
                           f"{lock.name} while holding {held.name}, but "
                           f"thread {where[0]} previously acquired "
                           f"{held.name} while holding {lock.name}")
                    self._inversions.append(msg)
                    errors.append(msg)
                else:
                    self._edges.setdefault(edge, (thread, ""))
        if errors:
            # Do NOT push: the caller unwinds the acquisition, so the
            # lock must not linger on this thread's held stack.
            raise LockOrderError("; ".join(errors))
        stack.append(lock)

    def note_released(self, lock: "InstrumentedLock",
                      held_s: float) -> None:
        stack = self._stack()
        # Condition.wait releases out of LIFO order; remove by identity.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                break
        with self._meta:
            hold = self._holds.get(lock.name)
            if hold is None:
                hold = self._holds[lock.name] = _Hold()
            hold.record(held_s)

    def check_reentry(self, lock: "InstrumentedLock") -> None:
        if any(held is lock for held in self._stack()):
            msg = (f"certain self-deadlock: "
                   f"{threading.current_thread().name} re-acquired "
                   f"non-reentrant lock {lock.name} it already holds")
            with self._meta:
                self._inversions.append(msg)
            raise LockOrderError(msg)

    # -- reporting -----------------------------------------------------
    @property
    def inversions(self) -> list[str]:
        with self._meta:
            return list(self._inversions)

    def edges(self) -> list[tuple[str, str]]:
        with self._meta:
            return sorted(self._edges)

    def hold_stats(self) -> dict[str, dict[str, float]]:
        with self._meta:
            return {
                name: {
                    "count": h.count,
                    "mean_us": (h.total_s / h.count * 1e6) if h.count
                    else 0.0,
                    "p50_us": h.quantile_s(0.50) * 1e6,
                    "p99_us": h.quantile_s(0.99) * 1e6,
                    "max_us": h.max_s * 1e6,
                }
                for name, h in sorted(self._holds.items())
            }

    def report(self) -> str:
        lines = ["lock hold times (approx, log2 buckets):"]
        for name, stats in self.hold_stats().items():
            lines.append(
                f"  {name}: n={int(stats['count'])} "
                f"mean={stats['mean_us']:.1f}us "
                f"p50={stats['p50_us']:.1f}us "
                f"p99={stats['p99_us']:.1f}us "
                f"max={stats['max_us']:.1f}us")
        edges = self.edges()
        lines.append(f"observed acquisition edges: {len(edges)}")
        for held, acquired in edges:
            lines.append(f"  {held} -> {acquired}")
        inv = self.inversions
        lines.append(f"lock-order inversions: {len(inv)}")
        lines.extend(f"  {msg}" for msg in inv)
        return "\n".join(lines)

    def reset(self) -> None:
        with self._meta:
            self._edges.clear()
            self._inversions.clear()
            self._holds.clear()


_default_tracker = OrderTracker()


def default_tracker() -> OrderTracker:
    return _default_tracker


class InstrumentedLock:
    """``threading.Lock`` wrapper reporting to an :class:`OrderTracker`.

    Implements the full lock protocol — ``acquire`` / ``release`` /
    context manager / ``locked`` — plus ``_is_owned``, which
    ``threading.Condition`` probes on its wrapped lock, so
    ``Condition(new_lock(...))`` composes: every wait's release and
    re-acquire flows through the instrumentation and splits the hold
    time correctly.
    """

    __slots__ = ("name", "_lock", "_tracker", "_owner", "_acquired_at")

    def __init__(self, name: str,
                 tracker: OrderTracker | None = None) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._tracker = tracker or default_tracker()
        self._owner: int | None = None
        self._acquired_at = 0.0

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        if blocking:
            self._tracker.check_reentry(self)
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._owner = threading.get_ident()
            self._acquired_at = time.perf_counter()
            try:
                self._tracker.note_acquired(self)
            except LockOrderError:
                # Unwind fully: a raising acquire must leave the lock
                # released, or the next acquirer deadlocks on it.
                self._owner = None
                self._lock.release()
                raise
        return got

    def release(self) -> None:
        held_s = time.perf_counter() - self._acquired_at
        self._owner = None
        self._lock.release()
        self._tracker.note_released(self, held_s)

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "locked" if self.locked() else "unlocked"
        return f"<InstrumentedLock {self.name!r} {state}>"


def new_lock(name: str) -> "threading.Lock | InstrumentedLock":
    """A lock for shared serving state, instrumented when debugging.

    ``name`` should be ``Class.attr`` — inversion detection is keyed by
    name so the same discipline is enforced across instances.
    """

    if lock_debug_enabled():
        return InstrumentedLock(name)
    return threading.Lock()


def new_condition(name: str) -> threading.Condition:
    """A condition variable whose underlying lock is :func:`new_lock`."""

    return threading.Condition(new_lock(name))
