"""Formatting helpers turning driver results into paper-shaped reports."""

from __future__ import annotations

from ..core.driver import RunResult
from .tables import format_float, render_table

__all__ = ["table_x_report", "table_xi_report", "epoch_reduction"]


def table_x_report(results: dict[str, RunResult]) -> str:
    """Render the Table X summary: one row per cell, one column group per model.

    ``results`` maps cell name → its :class:`RunResult` (each run holding
    the same model set).
    """

    if not results:
        raise ValueError("no results to report")
    model_names = list(next(iter(results.values())).rows)
    headers = ["Dataset"]
    for name in model_names:
        headers += [f"{name} acc", f"{name} F1_0", f"{name} ep"]
    rows = []
    for cell_name, run in results.items():
        row = [cell_name]
        for name in model_names:
            summary = run.summary(name)
            row += [format_float(summary.avg_accuracy),
                    format_float(summary.avg_group_0_f1),
                    summary.epochs_total if summary.epochs_total else "—"]
        rows.append(row)
    return render_table(headers, rows,
                        title="TABLE X — SUMMARY OF MODEL EVALUATION RESULTS")


def table_xi_report(run: RunResult) -> str:
    """Render a Table XI-style per-step detail for one cell."""

    model_names = list(run.rows)
    headers = ["Step", "Sim time", "Features", "Samples"]
    for name in model_names:
        headers += [f"{name} acc", f"{name} F1_0", f"{name} ep"]
    n_steps = max(len(rows) for rows in run.rows.values())
    table_rows = []
    for i in range(n_steps):
        base = None
        cells = []
        for name in model_names:
            rows = run.rows[name]
            if i < len(rows):
                r = rows[i]
                base = base or r
                cells += [format_float(r.outcome.accuracy),
                          format_float(r.outcome.group_0_f1),
                          r.outcome.epochs]
            else:
                cells += ["—", "—", "—"]
        table_rows.append([base.step_index, base.time_label, base.features,
                           base.n_samples] + cells)
    return render_table(
        headers, table_rows,
        title=f"TABLE XI — MODEL EVALUATION RESULTS FOR {run.cell_name}")


def epoch_reduction(run: RunResult, growing: str = "Growing",
                    fully: str = "Fully Retrain") -> float:
    """Fractional epoch reduction of the growing model vs full retraining.

    The paper reports 40% (2019a) to 91% (2019c) fewer epochs.
    """

    g = run.summary(growing).epochs_total
    f = run.summary(fully).epochs_total
    if f == 0:
        raise ValueError("fully-retrain run has no epochs")
    return 1.0 - g / f
