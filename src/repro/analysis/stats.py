"""Workload statistics (paper Table IX).

"Table IX presents the distribution of tasks with CO based on volume,
requested CPU, and memory ratios across the examined workload trace
repositories" — per-day shares of constrained tasks, reported as
min/max/avg over the trace horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.events import MICROS_PER_DAY, CellTrace, TaskEvent, TaskEventKind
from ..trace.synthetic import SyntheticCell

__all__ = ["ShareBand", "CODistribution", "co_distribution"]


@dataclass(frozen=True, slots=True)
class ShareBand:
    """(min, max, avg) of a per-day share series."""

    lo: float
    hi: float
    avg: float

    @classmethod
    def from_series(cls, series: np.ndarray) -> "ShareBand":
        series = np.asarray(series, dtype=np.float64)
        if series.size == 0:
            return cls(0.0, 0.0, 0.0)
        return cls(float(series.min()), float(series.max()),
                   float(series.mean()))

    def as_percent(self) -> tuple[str, str, str]:
        return (f"{self.lo:.1%}", f"{self.hi:.1%}", f"{self.avg:.1%}")


@dataclass
class CODistribution:
    """One cell's Table IX row (plus the underlying daily series)."""

    cell_name: str
    by_volume: ShareBand
    by_cpu: ShareBand
    by_mem: ShareBand
    daily_volume: np.ndarray
    daily_cpu: np.ndarray
    daily_mem: np.ndarray
    n_tasks: int
    n_tasks_with_co: int


def co_distribution(cell: SyntheticCell | CellTrace,
                    name: str | None = None) -> CODistribution:
    """Compute the tasks-with-CO share bands from a trace's SUBMIT events."""

    trace = cell.trace if isinstance(cell, SyntheticCell) else cell
    cell_name = name or trace.name

    day_tasks: dict[int, list[float]] = {}
    per_day: dict[int, dict[str, float]] = {}
    n_total = n_co = 0
    for event in trace.events_of(TaskEvent):
        if event.kind is not TaskEventKind.SUBMIT:
            continue
        day = event.time // MICROS_PER_DAY
        slot = per_day.setdefault(day, {"n": 0.0, "n_co": 0.0, "cpu": 0.0,
                                        "cpu_co": 0.0, "mem": 0.0,
                                        "mem_co": 0.0})
        constrained = bool(event.constraints)
        slot["n"] += 1
        slot["cpu"] += event.cpu_request
        slot["mem"] += event.mem_request
        n_total += 1
        if constrained:
            n_co += 1
            slot["n_co"] += 1
            slot["cpu_co"] += event.cpu_request
            slot["mem_co"] += event.mem_request

    days = sorted(per_day)
    vol = np.array([per_day[d]["n_co"] / per_day[d]["n"]
                    for d in days if per_day[d]["n"] > 0])
    cpu = np.array([per_day[d]["cpu_co"] / per_day[d]["cpu"]
                    for d in days if per_day[d]["cpu"] > 0])
    mem = np.array([per_day[d]["mem_co"] / per_day[d]["mem"]
                    for d in days if per_day[d]["mem"] > 0])

    return CODistribution(
        cell_name=cell_name,
        by_volume=ShareBand.from_series(vol),
        by_cpu=ShareBand.from_series(cpu),
        by_mem=ShareBand.from_series(mem),
        daily_volume=vol, daily_cpu=cpu, daily_mem=mem,
        n_tasks=n_total, n_tasks_with_co=n_co)
