"""Plain-text table rendering for benchmark output.

Every bench prints its result in the same row/column layout the paper's
table uses, via this small fixed-width renderer (no external deps).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_float", "format_optional"]


def format_float(value: float | None, digits: int = 5) -> str:
    """Paper-style numeric cell (e.g. 0.99957); dash for missing."""

    if value is None:
        return "—"
    return f"{value:.{digits}f}"


def format_optional(value, fallback: str = "—") -> str:
    return fallback if value is None else str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None, align_right: bool = True) -> str:
    """Fixed-width table with a header rule; cells are str()-ed."""

    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if align_right and i > 0
                         else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
