"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the library's main workflows so the reproduction can be
driven without writing Python:

* ``generate``  — synthesize a cell and archive it to disk,
* ``stats``     — Table IX workload statistics for an archived cell,
* ``train``     — continuous transfer learning over an archived cell
  (Growing vs Fully Retrain, optional baselines), Table XI report,
* ``simulate``  — the Figure 3 scheduler experiment on an archived cell,
* ``serve``     — run the real-time classification service over an
  archive's task stream, with background retraining and hot-swap
  (``--workers`` shards the batcher; ``--cells`` adds extra cells from
  trace profiles behind a multi-cell router; ``--latency-budget-ms`` /
  ``--shed-policy`` enable cell-aware backpressure and ``--autotune``
  re-fits the microbatch to the arrival rate); with ``--http-port``
  the stack is exposed over an HTTP ingress (``/classify``,
  ``/metrics``, ``/healthz``, ...) until interrupted instead of being
  driven by the built-in load generator,
* ``loadtest``  — open-loop load generation against the service,
  reporting throughput, goodput, shed/accept rates, and p50/p95/p99
  latency (optionally as JSON); exits non-zero on any lost request
  or cross-cell misroute; with ``--url`` the same run drives a live
  HTTP ingress over the wire,
* ``info``      — library / experiment inventory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous Transfer Learning for HPC cluster "
                    "scheduling (IPDPSW 2025 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a cell archive")
    gen.add_argument("outdir", type=Path, help="archive directory to create")
    gen.add_argument("--cell", default="2019c",
                     help="2011 | 2019a | 2019c | 2019d")
    gen.add_argument("--scale", type=float, default=0.03)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--days", type=int, default=None)
    gen.add_argument("--tasks-per-day", type=int, default=1200)

    stats = sub.add_parser("stats", help="Table IX statistics for an archive")
    stats.add_argument("archive", type=Path)

    train = sub.add_parser("train", help="continuous learning experiment")
    train.add_argument("archive", type=Path)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--all-baselines", action="store_true")
    train.add_argument("--encoding", default="co-vv",
                       choices=["co-vv", "co-el"])

    sim = sub.add_parser("simulate", help="Figure 3 scheduler experiment")
    sim.add_argument("archive", type=Path)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--scan-budget", type=int, default=24)

    def add_serving_args(p, default_rate: float, default_duration: float):
        p.add_argument("archive", type=Path)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rate", type=float, default=default_rate,
                       help="offered arrival rate, tasks/second")
        p.add_argument("--duration", type=float, default=default_duration,
                       help="load duration in seconds")
        p.add_argument("--pattern", default="poisson",
                       choices=["poisson", "bursty"])
        p.add_argument("--train-steps", type=int, default=3,
                       help="growth windows used for the initial model")
        p.add_argument("--max-batch", type=int, default=64)
        p.add_argument("--max-wait-us", type=int, default=500)
        p.add_argument("--observe-every", type=int, default=4,
                       help="feed every n-th task to the trainer "
                            "(0 disables observations)")
        p.add_argument("--workers", type=int, default=1,
                       help="microbatcher worker shards per cell")
        p.add_argument("--latency-budget-ms", type=float, default=None,
                       help="per-cell latency budget: arrivals whose "
                            "projected queueing delay exceeds it are shed "
                            "(OverloadedError with a retry-after hint) "
                            "instead of queueing unboundedly")
        p.add_argument("--max-queue", type=int, default=None,
                       help="hard per-cell queue-depth cap (sheds beyond)")
        p.add_argument("--shed-policy", default="reject",
                       choices=["reject", "drop-oldest"],
                       help="reject the new arrival, or admit it and "
                            "evict the oldest queued request")
        p.add_argument("--autotune", action="store_true",
                       help="continuously re-fit microbatch size/wait to "
                            "the observed arrival rate (--max-batch / "
                            "--max-wait-us become the tuner's caps)")
        p.add_argument("--compile", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="serve through the fused inference plan "
                            "(sparse end-to-end, no autograd); "
                            "--no-compile keeps the eager Module path")
        p.add_argument("--fused-train", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="background-retrain through the fused "
                            "training plan (CSR-kept data, no autograd); "
                            "--no-fused-train keeps the eager loop")
        p.add_argument("--canary-fraction", type=float, default=None,
                       help="stage retrained models instead of publishing "
                            "them directly: shadow-score on a replay ring, "
                            "then canary this fraction of live traffic and "
                            "auto-rollback on regression (0.0 = shadow "
                            "gate only, publish on pass; omit to keep "
                            "immediate publishes)")
        p.add_argument("--shadow-window", type=int, default=512,
                       help="replay-ring capacity for shadow scoring "
                            "candidates before they see live traffic")
        p.add_argument("--rollback-on", default="accuracy,confidence,"
                                                "agreement",
                       metavar="SIGNALS",
                       help="comma-separated regression signals armed for "
                            "shadow rejection and canary rollback "
                            "(subset of: accuracy, confidence, agreement)")
        p.add_argument("--drift-threshold", type=float, default=None,
                       help="retrain when the label distribution over the "
                            "live window drifts this far (total-variation "
                            "distance, 0..1) from the last published "
                            "model's training mix, even before vocabulary "
                            "growth would trigger")
        p.add_argument("--cells", default=None, metavar="PROFILES",
                       help="comma-separated extra cell profiles (e.g. "
                            "'2019a,2019d'): each is synthesized, trained, "
                            "and served behind a multi-cell router next to "
                            "the archive's cell; the load interleaves all "
                            "cells and audits for cross-cell misroutes")

    serve = sub.add_parser(
        "serve", help="real-time classification service over an archive")
    add_serving_args(serve, default_rate=2000.0, default_duration=10.0)
    serve.add_argument("--growth-threshold", type=int, default=4)
    serve.add_argument("--min-observations", type=int, default=200)
    serve.add_argument("--no-trainer", action="store_true",
                       help="serve the initial model without retraining")
    serve.add_argument("--http-port", type=int, default=None,
                       help="expose the stack over an HTTP ingress on this "
                            "port (0 = ephemeral) and serve until "
                            "interrupted, instead of running the built-in "
                            "load generator")
    serve.add_argument("--http-host", default="127.0.0.1",
                       help="bind address for --http-port")
    serve.add_argument("--http-listeners", type=int, default=1,
                       help="threaded ingress servers sharing the port via "
                            "SO_REUSEPORT (the kernel balances connections "
                            "across them; all serve one in-process stack)")
    serve.add_argument("--staleness-budget", type=float, default=None,
                       metavar="SECONDS",
                       help="/healthz turns 503 when a cell's served model "
                            "is older than this budget")
    serve.add_argument("--state-dir", type=Path, default=None,
                       metavar="DIR",
                       help="durable state root: warm-restore the newest "
                            "checkpoint from it at boot and checkpoint "
                            "every published model into it (per-cell "
                            "subdirectories behind --cells); a restart "
                            "resumes serving at the restored model version")
    serve.add_argument("--supervise", action="store_true",
                       help="run the per-cell supervisor + circuit "
                            "breaker: wedged workers trip the breaker "
                            "(503 + Retry-After), a dead trainer is "
                            "restarted with backoff, a crash-looping one "
                            "is suspended into degraded serving")

    loadtest = sub.add_parser(
        "loadtest", help="measure service throughput and tail latency")
    add_serving_args(loadtest, default_rate=8000.0, default_duration=5.0)
    loadtest.add_argument("--growth-threshold", type=int, default=4)
    loadtest.add_argument("--min-observations", type=int, default=200)
    loadtest.add_argument("--no-trainer", action="store_true")
    loadtest.add_argument("--json", action="store_true",
                          help="emit the report as one JSON object")
    loadtest.add_argument("--url", default=None,
                          help="drive a running HTTP ingress (e.g. "
                               "http://127.0.0.1:8080) over the wire "
                               "instead of an in-process stack; the "
                               "archive (and --cells) only provide the "
                               "task corpora")
    loadtest.add_argument("--http-connections", type=int, default=4,
                          help="keep-alive sender connections in --url "
                               "mode")
    loadtest.add_argument("--http-batch", type=int, default=1,
                          help="in --url mode, coalesce each sender's "
                               "backlog into batched /classify bodies of "
                               "up to this many tasks per round trip")

    lint = sub.add_parser(
        "lint", help="concurrency lint: lock discipline, blocking calls "
                     "under locks, lock-order cycles")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to check "
                           "(default: src/repro)")
    lint.add_argument("--dot", type=Path, default=None, metavar="FILE",
                      help="write the static lock-order graph as "
                           "Graphviz DOT")
    lint.add_argument("--json", action="store_true",
                      help="emit the full report as one JSON object")

    sub.add_parser("info", help="library and experiment inventory")
    return parser


def _cmd_generate(args) -> int:
    from .trace import CellArchive, generate_cell

    cell = generate_cell(args.cell, scale=args.scale, seed=args.seed,
                         days=args.days, tasks_per_day=args.tasks_per_day)
    CellArchive(args.outdir).save(cell)
    print(f"{cell.name}: {cell.n_machines} machines, "
          f"{len(cell.trace):,} events, {len(cell.step_times)} growth "
          f"steps -> {args.outdir}")
    return 0


def _cmd_stats(args) -> int:
    from .analysis import co_distribution, render_table
    from .trace import CellArchive

    cell = CellArchive(args.archive).load()
    dist = co_distribution(cell)
    print(render_table(
        ["Cell", "Vol min", "Vol max", "Vol avg", "CPU min", "CPU max",
         "CPU avg", "Mem min", "Mem max", "Mem avg"],
        [[cell.name, *dist.by_volume.as_percent(),
          *dist.by_cpu.as_percent(), *dist.by_mem.as_percent()]],
        title="TABLE IX — DISTRIBUTION OF TASKS WITH CO"))
    print(f"\n{dist.n_tasks_with_co:,} constrained of {dist.n_tasks:,} "
          f"tasks")
    return 0


def _cmd_train(args) -> int:
    from .analysis import epoch_reduction, table_xi_report
    from .core import (BENCH_CONFIG, ContinuousLearningDriver,
                       FullyRetrainModel, GrowingModel, baseline_suite)
    from .datasets import build_step_datasets
    from .trace import CellArchive

    cell = CellArchive(args.archive).load()
    result = build_step_datasets(cell, encoding=args.encoding)
    models: dict[str, object] = {
        "Growing": GrowingModel(BENCH_CONFIG,
                                rng=np.random.default_rng(args.seed + 1)),
        "Fully Retrain": FullyRetrainModel(
            BENCH_CONFIG, rng=np.random.default_rng(args.seed + 2)),
    }
    if args.all_baselines:
        models.update(baseline_suite(
            BENCH_CONFIG, rng=np.random.default_rng(args.seed + 3)))
    driver = ContinuousLearningDriver(models,
                                      batch_size=BENCH_CONFIG.batch_size,
                                      rng=np.random.default_rng(args.seed))
    run = driver.run(result.steps, cell_name=cell.name)
    print(table_xi_report(run))
    print()
    for name, summary in run.summaries().items():
        f1 = ("—" if summary.avg_group_0_f1 is None
              else f"{summary.avg_group_0_f1:.5f}")
        print(f"{name:>18}: acc {summary.avg_accuracy:.5f}  F1_0 {f1}  "
              f"epochs {summary.epochs_total}")
    print(f"\nepoch reduction (Growing vs Fully Retrain): "
          f"{epoch_reduction(run):.0%}")
    return 0


def _cmd_simulate(args) -> int:
    from .core import BENCH_CONFIG, GrowingModel
    from .datasets import DatasetData, build_step_datasets
    from .sim import SimulationConfig, SimulationEngine, TaskCOAnalyzer
    from .trace import CellArchive

    cell = CellArchive(args.archive).load()
    result = build_step_datasets(cell)
    model = GrowingModel(BENCH_CONFIG,
                         rng=np.random.default_rng(args.seed + 1))
    for step in result.steps:
        if step.n_samples < 8:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    config = SimulationConfig(scan_budget=args.scan_budget)
    baseline = SimulationEngine(config).run(cell)
    analyzer = TaskCOAnalyzer(model, result.registry, route_threshold=0)
    enhanced = SimulationEngine(config, analyzer=analyzer).run(cell)
    b = baseline.recorder.summary_restrictive()
    e = enhanced.recorder.summary_restrictive()
    print(f"restrictive tasks: baseline mean {b.mean_s:.2f}s "
          f"(n={b.count}) -> enhanced mean {e.mean_s:.2f}s (n={e.count})")
    print(f"all tasks: baseline {baseline.recorder.summary_all().mean_s:.2f}s "
          f"-> enhanced {enhanced.recorder.summary_all().mean_s:.2f}s")
    print(f"speedup on restrictive population: "
          f"{enhanced.restrictive_speedup_vs(baseline):.1f}x")
    return 0


def _train_initial_model(result, train_steps: int, seed: int):
    """A GrowingModel fitted on the first viable growth windows."""

    from .core import BENCH_CONFIG, GrowingModel
    from .datasets import DatasetData

    model = GrowingModel(BENCH_CONFIG, rng=np.random.default_rng(seed))
    for step in result.steps[:max(1, train_steps)]:
        if step.n_samples < 8 or len(np.unique(step.y)) < 2:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    return model if model.features_count is not None else None


def _parse_cell_profiles(spec: str | None) -> list[str]:
    return [name for name in (spec or "").replace(" ", "").split(",")
            if name]


def _serving_setup(args):
    """Shared serve/loadtest bring-up.

    Returns ``(cell, result, model, target, corpora)`` where ``target``
    is a single :class:`~repro.serve.ClassificationService`, or a
    :class:`~repro.serve.CellRouter` (with a ``corpora`` mapping) when
    ``--cells`` adds extra profile-synthesized cells.
    """

    from .datasets import build_step_datasets
    from .serve import CellRouter, ClassificationService, RolloutPolicy
    from .sim import RetrainPolicy
    from .trace import CellArchive, generate_cell

    cell = CellArchive(args.archive).load()
    result = build_step_datasets(cell)
    if not result.tasks:
        raise SystemExit("archive has no constrained tasks to serve")
    model = _train_initial_model(result, args.train_steps, args.seed + 1)
    if model is None:
        raise SystemExit("no growth window had enough samples to train on")

    def policy():
        return RetrainPolicy(growth_threshold=args.growth_threshold,
                             min_observations=args.min_observations,
                             drift_threshold=args.drift_threshold)

    rollout = None
    if args.canary_fraction is not None:
        try:
            rollout = RolloutPolicy(
                canary_fraction=args.canary_fraction,
                shadow_window=args.shadow_window,
                rollback_on=RolloutPolicy.parse_rollback_on(
                    args.rollback_on))
        except ValueError as exc:
            raise SystemExit(f"bad rollout flags: {exc}") from None
    admission_kwargs = dict(latency_budget_ms=args.latency_budget_ms,
                            max_queue=args.max_queue,
                            shed_policy=args.shed_policy,
                            autotune=args.autotune,
                            compile=args.compile,
                            fused_train=args.fused_train,
                            rollout=rollout)
    # loadtest has no durability/supervision flags; getattr keeps the
    # shared bring-up working for both subcommands.
    state_dir = getattr(args, "state_dir", None)
    supervise = getattr(args, "supervise", False)
    extra_profiles = _parse_cell_profiles(args.cells)
    if not extra_profiles:
        service = ClassificationService(
            model, result.registry, max_batch=args.max_batch,
            max_wait_us=args.max_wait_us, n_workers=args.workers,
            trainer=not args.no_trainer, policy=policy(),
            state_dir=None if state_dir is None else str(state_dir),
            supervise=supervise,
            rng=np.random.default_rng(args.seed + 2),
            **admission_kwargs)
        return cell, result, model, service, None

    router = CellRouter(n_workers=args.workers, max_batch=args.max_batch,
                        max_wait_us=args.max_wait_us,
                        state_dir=None if state_dir is None
                        else str(state_dir),
                        supervise=supervise, **admission_kwargs)
    router.add_cell(cell.name, model, result.registry,
                    trainer=not args.no_trainer, policy=policy(),
                    rng=np.random.default_rng(args.seed + 2))
    corpora = {cell.name: (result.tasks, result.labels)}
    for k, profile in enumerate(extra_profiles):
        extra_cell = generate_cell(profile, scale=0.02,
                                   seed=args.seed + 10 + k, days=3,
                                   tasks_per_day=400)
        extra_result = build_step_datasets(extra_cell)
        if not extra_result.tasks:
            raise SystemExit(f"profile {profile} produced no constrained "
                             f"tasks to serve")
        extra_model = _train_initial_model(extra_result, args.train_steps,
                                           args.seed + 20 + k)
        if extra_model is None:
            raise SystemExit(f"profile {profile}: no trainable growth "
                             f"window")
        cell_id = extra_cell.name
        if cell_id in corpora:
            cell_id = f"{cell_id}#{k + 1}"
        router.add_cell(cell_id, extra_model, extra_result.registry,
                        trainer=not args.no_trainer, policy=policy(),
                        rng=np.random.default_rng(args.seed + 30 + k))
        corpora[cell_id] = (extra_result.tasks, extra_result.labels)
    return cell, result, model, router, corpora


def _corpora_setup(args):
    """Task corpora for ``loadtest --url`` — no local models, no serving.

    Mirrors :func:`_serving_setup`'s cell naming/seeding exactly so a
    ``loadtest --url --cells 2019a`` run addresses the same cell ids a
    ``serve --http-port --cells 2019a`` process registered.
    """

    from .datasets import build_step_datasets
    from .trace import CellArchive, generate_cell

    cell = CellArchive(args.archive).load()
    result = build_step_datasets(cell)
    if not result.tasks:
        raise SystemExit("archive has no constrained tasks to replay")
    extra_profiles = _parse_cell_profiles(args.cells)
    if not extra_profiles:
        return result, None
    corpora = {cell.name: (result.tasks, result.labels)}
    for k, profile in enumerate(extra_profiles):
        extra_cell = generate_cell(profile, scale=0.02,
                                   seed=args.seed + 10 + k, days=3,
                                   tasks_per_day=400)
        extra_result = build_step_datasets(extra_cell)
        if not extra_result.tasks:
            raise SystemExit(f"profile {profile} produced no constrained "
                             f"tasks to replay")
        cell_id = extra_cell.name
        if cell_id in corpora:
            cell_id = f"{cell_id}#{k + 1}"
        corpora[cell_id] = (extra_result.tasks, extra_result.labels)
    return result, corpora


def _run_load(args, target, result, corpora):
    from .serve import LoadGenerator

    observe = 0 if args.no_trainer else args.observe_every
    if corpora is None:
        generator = LoadGenerator(
            target, result.tasks, result.labels, rate=args.rate,
            duration_s=args.duration, pattern=args.pattern,
            observe_every=observe, rng=np.random.default_rng(args.seed + 3))
    else:
        generator = LoadGenerator(
            target, corpora=corpora, rate=args.rate,
            duration_s=args.duration, pattern=args.pattern,
            observe_every=observe, swap_midstream=True,
            rng=np.random.default_rng(args.seed + 3))
    return generator.run()


def _run_load_http(args, result, corpora):
    from .serve import LoadGenerator

    observe = 0 if args.no_trainer else args.observe_every
    kwargs = dict(rate=args.rate, duration_s=args.duration,
                  pattern=args.pattern, observe_every=observe,
                  url=args.url, http_connections=args.http_connections,
                  http_batch=args.http_batch,
                  rng=np.random.default_rng(args.seed + 3))
    if corpora is None:
        generator = LoadGenerator(tasks=result.tasks, labels=result.labels,
                                  **kwargs)
    else:
        generator = LoadGenerator(corpora=corpora, **kwargs)
    return generator.run()


def _print_trainer_summary(service, prefix: str = "  ") -> None:
    if service.trainer is None:
        return
    for update in service.trainer.updates:
        print(f"{prefix}hot-swap -> v{update.version}: "
              f"{update.features_before} -> {update.features_after} "
              f"features, {update.epochs} epochs, "
              f"acc {update.accuracy:.3f}, "
              f"{update.train_seconds:.2f}s trigger->publish "
              f"({'fused' if update.fused else 'eager'}; closed a "
              f"{update.staleness_closed_s:.2f}s staleness window)")
    if service.trainer.failed_updates:
        print(f"{prefix}({service.trainer.failed_updates} retrain "
              f"attempt(s) did not reach the acceptance thresholds)")
    if not service.trainer.updates:
        print(f"{prefix}(no retrain published during the run)")


def _serve_http(args, target, corpora) -> int:
    """Expose the stack over an HTTP ingress until interrupted."""

    import signal
    import threading

    from .serve import DEFAULT_CELL, HttpIngress

    ingress = HttpIngress(target, host=args.http_host, port=args.http_port,
                          staleness_budget_s=args.staleness_budget,
                          n_listeners=args.http_listeners)
    stop = threading.Event()

    def _request_stop(_signum, _frame):
        stop.set()

    # Signal handlers only install from the main thread (tests drive
    # main() from workers); Ctrl-C still lands as KeyboardInterrupt.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _request_stop)
        signal.signal(signal.SIGTERM, _request_stop)
    with target, ingress:
        cells = (sorted(corpora) if corpora is not None else [DEFAULT_CELL])
        print(f"HTTP ingress on {ingress.url} "
              f"(cells: {', '.join(cells)})")
        print(f"  POST {ingress.url}/classify  |  GET {ingress.url}/metrics"
              f"  |  GET {ingress.url}/healthz", flush=True)
        try:
            while not stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            pass
        print("shutting down", flush=True)
    return 0


def _cmd_serve(args) -> int:
    cell, result, model, target, corpora = _serving_setup(args)
    if args.http_port is not None:
        return _serve_http(args, target, corpora)
    if corpora is None:
        print(f"{cell.name}: serving {model.features_count}-feature model "
              f"(registry spans {result.registry.features_count}); corpus "
              f"of {len(result.tasks):,} constrained tasks "
              f"({args.workers} worker(s), "
              f"{'compiled fast path' if args.compile else 'eager'})")
        with target:
            report = _run_load(args, target, result, corpora)
        print(report)
        _print_trainer_summary(target)
        return 0

    print(f"routing {len(corpora)} cells ({args.workers} worker(s) each):")
    for cell_id, (tasks, _labels) in corpora.items():
        width = target.service(cell_id).handle.snapshot().features_count
        print(f"  {cell_id}: {width}-feature model, corpus of "
              f"{len(tasks):,} constrained tasks")
    with target:
        report = _run_load(args, target, result, corpora)
    print(report)
    for cell_id in corpora:
        print(f"  {cell_id}:")
        _print_trainer_summary(target.service(cell_id), prefix="    ")
    return 0


def _cmd_loadtest(args) -> int:
    import json as _json

    if args.url is not None:
        result, corpora = _corpora_setup(args)
        report = _run_load_http(args, result, corpora)
    else:
        _cell, result, _model, target, corpora = _serving_setup(args)
        with target:
            report = _run_load(args, target, result, corpora)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report)
        lat = report.latency
        print(f"  latency: mean {lat.mean_us:.0f}µs  p50 {lat.p50_us:.0f}µs "
              f"p95 {lat.p95_us:.0f}µs  p99 {lat.p99_us:.0f}µs  "
              f"max {lat.max_us:.0f}µs")
        print(f"  batches: {report.batches} (largest {report.largest_batch})"
              f"; versions served: {report.versions_served}")
        if report.trainer_updates:
            print(f"  freshness: model {report.model_staleness_s:.2f}s old "
                  f"at run end; last retrain->publish "
                  f"{report.last_train_seconds:.2f}s")
        if report.n_shed or report.n_evicted or report.n_expired:
            print(f"  overload: accepted {report.n_accepted:,} of "
                  f"{report.n_requests:,} ({report.accept_rate:.0%}), shed "
                  f"{report.n_shed:,} at the gate + {report.n_evicted:,} "
                  f"evicted + {report.n_expired:,} expired; "
                  f"goodput {report.goodput_rps:,.0f}/s")
        if report.per_cell:
            print(f"  per-cell completions: {report.per_cell}; "
                  f"misroutes: {report.n_misrouted} of {report.n_audited} "
                  f"audited")
            if any(report.per_cell_shed.values()):
                print(f"  per-cell shed: {report.per_cell_shed}")
    # Lost requests (accepted but never classified) and misroutes are
    # hard failures; shed work under an explicit budget is not.
    return 1 if (report.n_dropped or report.n_misrouted) else 0


def _cmd_lint(args) -> int:
    import json as _json

    from .analysis.concur import run_lint

    report = run_lint([str(p) for p in args.paths],
                      dot_path=None if args.dot is None else str(args.dot))
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
        if args.dot is not None:
            print(f"lock-order graph -> {args.dot}")
    return 0 if report.ok else 1


def _cmd_info(_args) -> int:
    from . import __version__

    print(f"repro {__version__} — reproduction of Sliwko & "
          f"Mizera-Pietraszko, IPDPSW 2025")
    print("subsystems: nn (autograd), learn (baselines), constraints, "
          "trace, datasets, core (CTLM), sim, serve (real-time service), "
          "analysis")
    print("experiments: Tables V-XI, Figures 1-3, §V timing, §VI "
          "ablations — see benchmarks/ and EXPERIMENTS.md")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "train": _cmd_train,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "lint": _cmd_lint,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
