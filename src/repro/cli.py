"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the library's main workflows so the reproduction can be
driven without writing Python:

* ``generate``  — synthesize a cell and archive it to disk,
* ``stats``     — Table IX workload statistics for an archived cell,
* ``train``     — continuous transfer learning over an archived cell
  (Growing vs Fully Retrain, optional baselines), Table XI report,
* ``simulate``  — the Figure 3 scheduler experiment on an archived cell,
* ``serve``     — run the real-time classification service over an
  archive's task stream, with background retraining and hot-swap,
* ``loadtest``  — open-loop load generation against the service,
  reporting throughput and p50/p95/p99 latency (optionally as JSON),
* ``info``      — library / experiment inventory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous Transfer Learning for HPC cluster "
                    "scheduling (IPDPSW 2025 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a cell archive")
    gen.add_argument("outdir", type=Path, help="archive directory to create")
    gen.add_argument("--cell", default="2019c",
                     help="2011 | 2019a | 2019c | 2019d")
    gen.add_argument("--scale", type=float, default=0.03)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--days", type=int, default=None)
    gen.add_argument("--tasks-per-day", type=int, default=1200)

    stats = sub.add_parser("stats", help="Table IX statistics for an archive")
    stats.add_argument("archive", type=Path)

    train = sub.add_parser("train", help="continuous learning experiment")
    train.add_argument("archive", type=Path)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--all-baselines", action="store_true")
    train.add_argument("--encoding", default="co-vv",
                       choices=["co-vv", "co-el"])

    sim = sub.add_parser("simulate", help="Figure 3 scheduler experiment")
    sim.add_argument("archive", type=Path)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--scan-budget", type=int, default=24)

    def add_serving_args(p, default_rate: float, default_duration: float):
        p.add_argument("archive", type=Path)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rate", type=float, default=default_rate,
                       help="offered arrival rate, tasks/second")
        p.add_argument("--duration", type=float, default=default_duration,
                       help="load duration in seconds")
        p.add_argument("--pattern", default="poisson",
                       choices=["poisson", "bursty"])
        p.add_argument("--train-steps", type=int, default=3,
                       help="growth windows used for the initial model")
        p.add_argument("--max-batch", type=int, default=64)
        p.add_argument("--max-wait-us", type=int, default=500)
        p.add_argument("--observe-every", type=int, default=4,
                       help="feed every n-th task to the trainer "
                            "(0 disables observations)")

    serve = sub.add_parser(
        "serve", help="real-time classification service over an archive")
    add_serving_args(serve, default_rate=2000.0, default_duration=10.0)
    serve.add_argument("--growth-threshold", type=int, default=4)
    serve.add_argument("--min-observations", type=int, default=200)
    serve.add_argument("--no-trainer", action="store_true",
                       help="serve the initial model without retraining")

    loadtest = sub.add_parser(
        "loadtest", help="measure service throughput and tail latency")
    add_serving_args(loadtest, default_rate=8000.0, default_duration=5.0)
    loadtest.add_argument("--growth-threshold", type=int, default=4)
    loadtest.add_argument("--min-observations", type=int, default=200)
    loadtest.add_argument("--no-trainer", action="store_true")
    loadtest.add_argument("--json", action="store_true",
                          help="emit the report as one JSON object")

    sub.add_parser("info", help="library and experiment inventory")
    return parser


def _cmd_generate(args) -> int:
    from .trace import CellArchive, generate_cell

    cell = generate_cell(args.cell, scale=args.scale, seed=args.seed,
                         days=args.days, tasks_per_day=args.tasks_per_day)
    CellArchive(args.outdir).save(cell)
    print(f"{cell.name}: {cell.n_machines} machines, "
          f"{len(cell.trace):,} events, {len(cell.step_times)} growth "
          f"steps -> {args.outdir}")
    return 0


def _cmd_stats(args) -> int:
    from .analysis import co_distribution, render_table
    from .trace import CellArchive

    cell = CellArchive(args.archive).load()
    dist = co_distribution(cell)
    print(render_table(
        ["Cell", "Vol min", "Vol max", "Vol avg", "CPU min", "CPU max",
         "CPU avg", "Mem min", "Mem max", "Mem avg"],
        [[cell.name, *dist.by_volume.as_percent(),
          *dist.by_cpu.as_percent(), *dist.by_mem.as_percent()]],
        title="TABLE IX — DISTRIBUTION OF TASKS WITH CO"))
    print(f"\n{dist.n_tasks_with_co:,} constrained of {dist.n_tasks:,} "
          f"tasks")
    return 0


def _cmd_train(args) -> int:
    from .analysis import epoch_reduction, table_xi_report
    from .core import (BENCH_CONFIG, ContinuousLearningDriver,
                       FullyRetrainModel, GrowingModel, baseline_suite)
    from .datasets import build_step_datasets
    from .trace import CellArchive

    cell = CellArchive(args.archive).load()
    result = build_step_datasets(cell, encoding=args.encoding)
    models: dict[str, object] = {
        "Growing": GrowingModel(BENCH_CONFIG,
                                rng=np.random.default_rng(args.seed + 1)),
        "Fully Retrain": FullyRetrainModel(
            BENCH_CONFIG, rng=np.random.default_rng(args.seed + 2)),
    }
    if args.all_baselines:
        models.update(baseline_suite(
            BENCH_CONFIG, rng=np.random.default_rng(args.seed + 3)))
    driver = ContinuousLearningDriver(models,
                                      batch_size=BENCH_CONFIG.batch_size,
                                      rng=np.random.default_rng(args.seed))
    run = driver.run(result.steps, cell_name=cell.name)
    print(table_xi_report(run))
    print()
    for name, summary in run.summaries().items():
        f1 = ("—" if summary.avg_group_0_f1 is None
              else f"{summary.avg_group_0_f1:.5f}")
        print(f"{name:>18}: acc {summary.avg_accuracy:.5f}  F1_0 {f1}  "
              f"epochs {summary.epochs_total}")
    print(f"\nepoch reduction (Growing vs Fully Retrain): "
          f"{epoch_reduction(run):.0%}")
    return 0


def _cmd_simulate(args) -> int:
    from .core import BENCH_CONFIG, GrowingModel
    from .datasets import DatasetData, build_step_datasets
    from .sim import SimulationConfig, SimulationEngine, TaskCOAnalyzer
    from .trace import CellArchive

    cell = CellArchive(args.archive).load()
    result = build_step_datasets(cell)
    model = GrowingModel(BENCH_CONFIG,
                         rng=np.random.default_rng(args.seed + 1))
    for step in result.steps:
        if step.n_samples < 8:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    config = SimulationConfig(scan_budget=args.scan_budget)
    baseline = SimulationEngine(config).run(cell)
    analyzer = TaskCOAnalyzer(model, result.registry, route_threshold=0)
    enhanced = SimulationEngine(config, analyzer=analyzer).run(cell)
    b = baseline.recorder.summary_restrictive()
    e = enhanced.recorder.summary_restrictive()
    print(f"restrictive tasks: baseline mean {b.mean_s:.2f}s "
          f"(n={b.count}) -> enhanced mean {e.mean_s:.2f}s (n={e.count})")
    print(f"all tasks: baseline {baseline.recorder.summary_all().mean_s:.2f}s "
          f"-> enhanced {enhanced.recorder.summary_all().mean_s:.2f}s")
    print(f"speedup on restrictive population: "
          f"{enhanced.restrictive_speedup_vs(baseline):.1f}x")
    return 0


def _serving_setup(args):
    """Shared serve/loadtest bring-up: corpus, initial model, service."""

    from .core import BENCH_CONFIG, GrowingModel
    from .datasets import DatasetData, build_step_datasets
    from .serve import ClassificationService
    from .sim import RetrainPolicy
    from .trace import CellArchive

    cell = CellArchive(args.archive).load()
    result = build_step_datasets(cell)
    if not result.tasks:
        raise SystemExit("archive has no constrained tasks to serve")

    model = GrowingModel(BENCH_CONFIG,
                         rng=np.random.default_rng(args.seed + 1))
    for step in result.steps[:max(1, args.train_steps)]:
        if step.n_samples < 8 or len(np.unique(step.y)) < 2:
            continue
        model.fit_step(DatasetData(step.X, step.y,
                                   batch_size=BENCH_CONFIG.batch_size,
                                   rng=np.random.default_rng(step.step_index)))
    if model.features_count is None:
        raise SystemExit("no growth window had enough samples to train on")

    policy = RetrainPolicy(growth_threshold=args.growth_threshold,
                           min_observations=args.min_observations)
    service = ClassificationService(
        model, result.registry, max_batch=args.max_batch,
        max_wait_us=args.max_wait_us, trainer=not args.no_trainer,
        policy=policy, rng=np.random.default_rng(args.seed + 2))
    return cell, result, model, service


def _run_load(args, service, result):
    from .serve import LoadGenerator

    observe = 0 if args.no_trainer else args.observe_every
    generator = LoadGenerator(
        service, result.tasks, result.labels, rate=args.rate,
        duration_s=args.duration, pattern=args.pattern,
        observe_every=observe, rng=np.random.default_rng(args.seed + 3))
    return generator.run()


def _cmd_serve(args) -> int:
    cell, result, model, service = _serving_setup(args)
    print(f"{cell.name}: serving {model.features_count}-feature model "
          f"(registry spans {result.registry.features_count}); corpus of "
          f"{len(result.tasks):,} constrained tasks")
    with service:
        report = _run_load(args, service, result)
    print(report)
    if service.trainer is not None:
        for update in service.trainer.updates:
            print(f"  hot-swap -> v{update.version}: "
                  f"{update.features_before} -> {update.features_after} "
                  f"features, {update.epochs} epochs, "
                  f"acc {update.accuracy:.3f}, "
                  f"{update.train_seconds:.2f}s off-path")
        if service.trainer.failed_updates:
            print(f"  ({service.trainer.failed_updates} retrain "
                  f"attempt(s) did not reach the acceptance thresholds)")
        if not service.trainer.updates:
            print("  (no retrain published during the run)")
    return 0


def _cmd_loadtest(args) -> int:
    import json as _json

    _cell, result, _model, service = _serving_setup(args)
    with service:
        report = _run_load(args, service, result)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report)
        lat = report.latency
        print(f"  latency: mean {lat.mean_us:.0f}µs  p50 {lat.p50_us:.0f}µs "
              f"p95 {lat.p95_us:.0f}µs  p99 {lat.p99_us:.0f}µs  "
              f"max {lat.max_us:.0f}µs")
        print(f"  batches: {report.batches} (largest {report.largest_batch})"
              f"; versions served: {report.versions_served}")
    return 1 if report.n_dropped else 0


def _cmd_info(_args) -> int:
    from . import __version__

    print(f"repro {__version__} — reproduction of Sliwko & "
          f"Mizera-Pietraszko, IPDPSW 2025")
    print("subsystems: nn (autograd), learn (baselines), constraints, "
          "trace, datasets, core (CTLM), sim, serve (real-time service), "
          "analysis")
    print("experiments: Tables V-XI, Figures 1-3, §V timing, §VI "
          "ablations — see benchmarks/ and EXPERIMENTS.md")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "train": _cmd_train,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
