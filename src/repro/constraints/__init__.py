"""``repro.constraints`` — GCD node-affinity constraint engine.

Raw constraint operators (2011's four + 2019's four), the Table V
compaction algebra, attribute catalogues, and the vectorized
task↔machine matcher used by both the dataset builders and the
scheduler simulator.
"""

from .attributes import AttributeCatalog
from .compaction import AttributeSpec, CompactedTask, compact, compact_attribute
from .matcher import MachinePark
from .operators import (OPERATORS_2011, OPERATORS_2019, Constraint,
                        ConstraintOperator, parse_value, value_as_int)
from .soft import SoftAffinityTask, SoftConstraint, preference_scores

__all__ = [
    "Constraint", "ConstraintOperator", "OPERATORS_2011", "OPERATORS_2019",
    "parse_value", "value_as_int",
    "AttributeSpec", "CompactedTask", "compact", "compact_attribute",
    "AttributeCatalog", "MachinePark",
    "SoftConstraint", "SoftAffinityTask", "preference_scores",
]
