"""Attribute catalogues: observed value domains per machine attribute.

The CO-VV encoding needs, for every attribute, the ordered list of values
that have ever been observed in the cell (machine attributes or constraint
operands).  :class:`AttributeCatalog` is the append-only record of that
domain; new values are always appended at the end — "for traceability and
simplicity, new attribute values are appended as the last column" (paper
Section IV).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .operators import parse_value

__all__ = ["AttributeCatalog"]


class AttributeCatalog:
    """Append-only map ``attribute → ordered tuple of observed values``."""

    def __init__(self) -> None:
        self._values: dict[str, list[str]] = {}
        self._positions: dict[str, dict[str, int]] = {}

    def observe(self, attribute: str, value) -> bool:
        """Record a value; returns True when it was new for the attribute."""

        value = parse_value(value)
        if value is None:
            # Absence is modelled by the dedicated "(none)" column in the
            # CO-VV encoding, not by the value domain.
            self._values.setdefault(attribute, [])
            self._positions.setdefault(attribute, {})
            return False
        positions = self._positions.setdefault(attribute, {})
        if value in positions:
            return False
        positions[value] = len(positions)
        self._values.setdefault(attribute, []).append(value)
        return True

    def observe_many(self, attribute: str, values: Iterable) -> int:
        """Record several values; returns how many were new."""

        return sum(self.observe(attribute, v) for v in values)

    def attributes(self) -> tuple[str, ...]:
        """Attribute names in first-observation order."""

        return tuple(self._values)

    def values(self, attribute: str) -> tuple[str, ...]:
        """The ordered value domain of one attribute (empty if unknown)."""

        return tuple(self._values.get(attribute, ()))

    def position(self, attribute: str, value) -> int | None:
        """Index of ``value`` within the attribute's domain, or None."""

        value = parse_value(value)
        if value is None:
            return None
        return self._positions.get(attribute, {}).get(value)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def total_values(self) -> int:
        """Total number of (attribute, value) pairs recorded."""

        return sum(len(v) for v in self._values.values())

    def copy(self) -> "AttributeCatalog":
        clone = AttributeCatalog()
        for attr, values in self._values.items():
            clone._values[attr] = list(values)
            clone._positions[attr] = dict(self._positions[attr])
        return clone
