"""Constraint-operator compaction (paper Table V).

Before dataset generation, each task's raw constraint list is collapsed
per attribute into a canonical :class:`AttributeSpec`:

* chains of order comparisons fold into a single **Between** interval
  (integer-aware, so ``${AM} > 3`` ∧ ``${AM} <> 4`` tightens to
  ``${AM} > 4`` exactly as in the paper's worked example),
* Not-Equal sets fold into a **Non-Equal-Array**,
* any Equal constraint supersedes Not-Equals on the same attribute
  ("Equals operator is restrictive"),
* unsatisfiable combinations (``${DC} = 1`` ∧ ``${DC} = 7``, empty
  intervals, Present ∧ Not-Present, ...) raise :class:`CompactionError`,
  which trace replay logs and skips — the paper observes fewer than
  twenty such anomalies across all datasets.

Canonical-value invariant
-------------------------
Attribute and constraint values that denote integers are canonical decimal
strings (``parse_value`` produces them; the trace layer enforces this), so
string equality and integer equality agree.  This is what licenses folding
string-level Not-Equals into integer interval bounds.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import CompactionError
from .operators import Constraint, ConstraintOperator, parse_value, value_as_int

__all__ = ["AttributeSpec", "CompactedTask", "compact", "compact_attribute"]

logger = logging.getLogger(__name__)

_UNSET = object()


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """The collapsed conjunction of all constraints on one attribute.

    Components (each optional):

    * ``equal`` — exact required value; ``equal=None`` with
      ``has_equal=True`` means the attribute must be empty/absent,
    * ``lo``/``hi`` — inclusive integer bounds on the *effective* numeric
      value (absent attribute ≙ 0, matching the raw operator semantics),
    * ``not_in`` — Non-Equal-Array: forbidden values (only tested when the
      attribute is present, as raw Not-Equal matches absent attributes),
    * ``present_required`` / ``absent_required`` — Present / Not-Present.
    """

    attribute: str
    has_equal: bool = False
    equal: str | None = None
    lo: int | None = None
    hi: int | None = None
    not_in: frozenset[str] = field(default_factory=frozenset)
    present_required: bool = False
    absent_required: bool = False

    @property
    def has_between(self) -> bool:
        return self.lo is not None or self.hi is not None

    def matches(self, attr_value) -> bool:
        """Evaluate the collapsed conjunction against one attribute value."""

        value = parse_value(attr_value)
        if self.absent_required and value is not None:
            return False
        if self.present_required and value is None:
            return False
        if self.has_equal:
            return value is None if self.equal is None else value == self.equal
        if value is not None and value in self.not_in:
            return False
        if self.has_between:
            num = 0 if value is None else value_as_int(value)
            if num is None:
                return False
            if self.lo is not None and num < self.lo:
                return False
            if self.hi is not None and num > self.hi:
                return False
        return True

    def render(self) -> str:
        """Table V-style rendering of the collapsed constraint."""

        name = "${" + self.attribute + "}"
        if self.has_equal:
            if self.equal is None:
                return f"{name} = ''"
            return f"{name} = {_quote(self.equal)}"
        parts: list[str] = []
        if self.absent_required:
            parts.append(f"{name} not-present")
        if self.present_required:
            parts.append(f"{name} present")
        if self.has_between:
            if self.lo is not None and self.hi is not None:
                # Paper renders the Between operator with strict bounds:
                # inclusive [1, 2] prints as "3 > ${AM} > 0".
                parts.append(f"{self.hi + 1} > {name} > {self.lo - 1}")
            elif self.lo is not None:
                parts.append(f"{name} > {self.lo - 1}")
            else:
                parts.append(f"{self.hi + 1} > {name}")
        if self.not_in:
            values = "; ".join(_quote(v) for v in sorted(self.not_in))
            parts.append(f"{name} <> {values}")
        if not parts:
            return f"{name} unconstrained"
        return " AND ".join(parts)

    def is_trivial(self) -> bool:
        """True when the spec matches every value (no components set)."""

        return not (self.has_equal or self.has_between or self.not_in
                    or self.present_required or self.absent_required)

    def to_dict(self) -> dict:
        """JSON-ready encoding (the HTTP ingress's wire format).

        Default-valued components are omitted, so a Between-only spec
        serializes to just its bounds.
        """

        payload: dict = {"attribute": self.attribute}
        if self.has_equal:
            payload["equal"] = self.equal
        if self.lo is not None:
            payload["lo"] = self.lo
        if self.hi is not None:
            payload["hi"] = self.hi
        if self.not_in:
            payload["not_in"] = sorted(self.not_in)
        if self.present_required:
            payload["present_required"] = True
        if self.absent_required:
            payload["absent_required"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AttributeSpec":
        """Inverse of :meth:`to_dict`; validates types strictly.

        ``"equal" in payload`` (even with value ``null`` — the
        must-be-absent form) maps back to ``has_equal=True``.
        """

        if not isinstance(payload, Mapping):
            raise TypeError(f"AttributeSpec payload must be a mapping, "
                            f"got {type(payload).__name__}")
        known = {"attribute", "equal", "lo", "hi", "not_in",
                 "present_required", "absent_required"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown AttributeSpec keys: "
                             f"{sorted(unknown)}")
        attribute = payload.get("attribute")
        if not isinstance(attribute, str) or not attribute:
            raise ValueError("AttributeSpec needs a non-empty string "
                             "'attribute'")
        has_equal = "equal" in payload
        equal = payload.get("equal")
        if equal is not None and not isinstance(equal, str):
            raise ValueError("'equal' must be a string or null")
        lo, hi = payload.get("lo"), payload.get("hi")
        for name, bound in (("lo", lo), ("hi", hi)):
            if bound is not None and (isinstance(bound, bool)
                                      or not isinstance(bound, int)):
                raise ValueError(f"{name!r} must be an integer")
        not_in = payload.get("not_in", ())
        if (isinstance(not_in, (str, bytes))
                or not all(isinstance(v, str) for v in not_in)):
            raise ValueError("'not_in' must be a list of strings")
        return cls(attribute=attribute, has_equal=has_equal, equal=equal,
                   lo=lo, hi=hi, not_in=frozenset(not_in),
                   present_required=bool(payload.get("present_required",
                                                     False)),
                   absent_required=bool(payload.get("absent_required",
                                                    False)))


def _quote(value: str) -> str:
    return value if value_as_int(value) is not None else f"'{value}'"


def compact_attribute(attribute: str,
                      constraints: Iterable[Constraint]) -> AttributeSpec:
    """Collapse all constraints on one attribute into an AttributeSpec.

    Raises
    ------
    CompactionError
        If the conjunction is unsatisfiable.
    """

    equals: set[str | None] = set()
    not_equals: set[str | None] = set()
    lo: int | None = None
    hi: int | None = None
    present = False
    absent = False

    for c in constraints:
        if c.attribute != attribute:
            raise ValueError(f"constraint on {c.attribute!r} passed to "
                             f"compaction of {attribute!r}")
        op = c.op
        if op is ConstraintOperator.EQUAL:
            equals.add(c.value)
        elif op is ConstraintOperator.NOT_EQUAL:
            not_equals.add(c.value)
        elif op is ConstraintOperator.PRESENT:
            present = True
        elif op is ConstraintOperator.NOT_PRESENT:
            absent = True
        else:
            bound = value_as_int(c.value)
            assert bound is not None  # Constraint.__post_init__ guarantees
            # Integerize: x > 3 ⇔ x ≥ 4; x < 3 ⇔ x ≤ 2 (GCD constraint
            # values are integers).
            if op is ConstraintOperator.GREATER_THAN:
                lo = bound + 1 if lo is None else max(lo, bound + 1)
            elif op is ConstraintOperator.GREATER_THAN_EQUAL:
                lo = bound if lo is None else max(lo, bound)
            elif op is ConstraintOperator.LESS_THAN:
                hi = bound - 1 if hi is None else min(hi, bound - 1)
            else:
                hi = bound if hi is None else min(hi, bound)

    # A Not-Equal with an empty value means "attribute must not be empty",
    # i.e. Present.
    if None in not_equals:
        not_equals.discard(None)
        present = True

    if present and absent:
        raise CompactionError(
            f"{attribute}: Present and Not-Present are contradictory")

    if len(equals) > 1:
        rendered = ", ".join("''" if v is None else str(v) for v in sorted(
            equals, key=lambda x: (x is None, x)))
        raise CompactionError(
            f"{attribute}: multiple Equal constraints cannot collapse "
            f"({rendered})")

    if equals:
        value = next(iter(equals))
        return _collapse_with_equal(attribute, value, not_equals, lo, hi,
                                    present, absent)

    not_in = {v for v in not_equals if v is not None}

    if absent:
        # The attribute must be missing; Not-Equals are vacuously satisfied
        # and numeric bounds apply to the effective value 0.
        if _interval_excludes(lo, hi, 0):
            raise CompactionError(
                f"{attribute}: Not-Present contradicts numeric bounds "
                f"[{lo}, {hi}] (absent compares as 0)")
        return AttributeSpec(attribute, absent_required=True)

    # Fold canonical integer Not-Equals into the interval edges, the
    # paper's "${AM} > 3 ∧ ${AM} <> 4 → ${AM} > 4" rule; repeat until the
    # edge value is admissible.  The value 0 is never folded: an absent
    # attribute has effective numeric value 0 yet still satisfies
    # Not-Equal, so tightening the interval past 0 would wrongly reject
    # absent machines — 0 stays as an explicit (present-only) exclusion.
    numeric_exclusions = {value_as_int(v) for v in not_in
                          if value_as_int(v) is not None}
    if lo is not None:
        while lo in numeric_exclusions and lo != 0:
            lo += 1
    if hi is not None:
        while hi in numeric_exclusions and hi != 0:
            hi -= 1
    if lo is not None and hi is not None and lo > hi:
        raise CompactionError(
            f"{attribute}: numeric bounds collapse to an empty interval")

    # Drop exclusions subsumed by the interval (e.g. <>1 under lo=5) and
    # the folded edge values.
    if lo is not None or hi is not None:
        kept: set[str] = set()
        for v in not_in:
            n = value_as_int(v)
            if n is None:
                # Non-numeric exclusion is subsumed: Between already rejects
                # non-numeric present values.
                continue
            if (lo is not None and n < lo) or (hi is not None and n > hi):
                continue
            kept.add(v)
        not_in = kept

    return AttributeSpec(attribute, lo=lo, hi=hi, not_in=frozenset(not_in),
                         present_required=present)


def _interval_excludes(lo: int | None, hi: int | None, value: int) -> bool:
    if lo is not None and value < lo:
        return True
    if hi is not None and value > hi:
        return True
    return False


def _collapse_with_equal(attribute: str, value: str | None,
                         not_equals: set[str | None], lo: int | None,
                         hi: int | None, present: bool,
                         absent: bool) -> AttributeSpec:
    """Equal is restrictive: verify consistency, then keep only the Equal."""

    if value is None:
        # "= ''" requires the attribute to be absent/empty.
        if present:
            raise CompactionError(
                f"{attribute}: '= empty' contradicts Present")
        if _interval_excludes(lo, hi, 0):
            raise CompactionError(
                f"{attribute}: '= empty' contradicts numeric bounds")
        return AttributeSpec(attribute, has_equal=True, equal=None)

    if absent:
        raise CompactionError(
            f"{attribute}: Equal {value!r} contradicts Not-Present")
    if value in not_equals:
        raise CompactionError(
            f"{attribute}: Equal and Not-Equal on the same value {value!r}")
    if lo is not None or hi is not None:
        num = value_as_int(value)
        if num is None:
            raise CompactionError(
                f"{attribute}: Equal {value!r} is non-numeric but numeric "
                f"bounds exist")
        if _interval_excludes(lo, hi, num):
            raise CompactionError(
                f"{attribute}: Equal {value!r} lies outside bounds "
                f"[{lo}, {hi}]")
    return AttributeSpec(attribute, has_equal=True, equal=value)


class CompactedTask:
    """All of a task's constraints, collapsed per attribute.

    Iterable over :class:`AttributeSpec` in attribute order; evaluable
    against a machine attribute mapping.
    """

    __slots__ = ("specs", "_hash")

    def __init__(self, specs: Mapping[str, AttributeSpec]):
        self.specs: dict[str, AttributeSpec] = dict(sorted(specs.items()))
        self._hash: int | None = None

    def __iter__(self):
        return iter(self.specs.values())

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other) -> bool:
        return isinstance(other, CompactedTask) and self.specs == other.specs

    def __hash__(self) -> int:
        # Cached: tasks are hashed on every serving-encoder memo lookup,
        # and specs never mutate after construction.
        if self._hash is None:
            self._hash = hash(tuple(sorted(self.specs.items(),
                                           key=lambda kv: kv[0])))
        return self._hash

    def matches(self, attributes: Mapping[str, str | int | None]) -> bool:
        """True when a machine with the given attribute map satisfies every spec."""

        return all(spec.matches(attributes.get(attr))
                   for attr, spec in self.specs.items())

    def render(self) -> str:
        return "; ".join(spec.render() for spec in self)

    def to_dict(self) -> dict:
        """JSON-ready encoding: ``{"specs": [spec, ...]}`` in attribute
        order (the HTTP ingress's task wire format)."""

        return {"specs": [spec.to_dict() for spec in self]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CompactedTask":
        """Inverse of :meth:`to_dict`.

        Accepts ``{"specs": [...]}``; duplicate attributes are an
        error (specs are a per-attribute conjunction, so a duplicate
        would silently drop one side).
        """

        if not isinstance(payload, Mapping):
            raise TypeError(f"task payload must be a mapping, got "
                            f"{type(payload).__name__}")
        specs_raw = payload.get("specs")
        if not isinstance(specs_raw, (list, tuple)):
            raise ValueError("task payload needs a 'specs' list")
        specs: dict[str, AttributeSpec] = {}
        for item in specs_raw:
            spec = AttributeSpec.from_dict(item)
            if spec.attribute in specs:
                raise ValueError(f"duplicate spec for attribute "
                                 f"{spec.attribute!r}")
            specs[spec.attribute] = spec
        return cls(specs)


def compact(constraints: Iterable[Constraint],
            on_error: str = "raise") -> CompactedTask:
    """Collapse a raw constraint list into a :class:`CompactedTask`.

    Parameters
    ----------
    constraints:
        Raw :class:`Constraint` objects (any order; compaction is
        order-independent).
    on_error:
        ``'raise'`` propagates :class:`CompactionError`; ``'log'`` logs the
        anomaly and drops the offending attribute (the AGOCS replay
        behaviour for the paper's <20 anomalous tasks).
    """

    if on_error not in ("raise", "log"):
        raise ValueError("on_error must be 'raise' or 'log'")
    by_attr: dict[str, list[Constraint]] = {}
    for c in constraints:
        by_attr.setdefault(c.attribute, []).append(c)

    specs: dict[str, AttributeSpec] = {}
    for attr, group in by_attr.items():
        try:
            spec = compact_attribute(attr, group)
        except CompactionError as exc:
            if on_error == "raise":
                raise
            logger.warning("constraint compaction anomaly ignored: %s", exc)
            continue
        if not spec.is_trivial():
            specs[attr] = spec
    return CompactedTask(specs)
