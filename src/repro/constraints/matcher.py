"""Vectorized task-to-machine constraint matching.

AGOCS replays every task against every machine; done naively that is an
O(tasks × machines × constraints) Python loop.  :class:`MachinePark`
stores machine attributes columnar (one object ndarray per attribute) and
evaluates each collapsed :class:`~repro.constraints.compaction.AttributeSpec`
as a boolean mask over all machines at once, memoizing masks per spec —
tasks in a cell share a small set of distinct constraint shapes, so the
memo turns the replay into a handful of vectorized passes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import SchedulingError
from .compaction import AttributeSpec, CompactedTask
from .operators import parse_value, value_as_int

__all__ = ["MachinePark"]


class MachinePark:
    """Columnar store of machine attributes with vectorized matching.

    Machines are identified by arbitrary hashable ids (GCD machine ids are
    integers).  Rows are never physically removed; an ``alive`` mask tracks
    machine removals so that cached masks stay index-stable.
    """

    def __init__(self) -> None:
        self._ids: list = []
        self._index: dict = {}
        self._alive = np.zeros(0, dtype=bool)
        self._cpu = np.zeros(0, dtype=np.float64)
        self._mem = np.zeros(0, dtype=np.float64)
        self._columns: dict[str, np.ndarray] = {}
        self._version = 0
        self._numeric_cache: dict[str, tuple[int, np.ndarray]] = {}
        self._mask_cache: dict[tuple[int, AttributeSpec], np.ndarray] = {}
        self._absent_column = np.zeros(0, dtype=object)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self._version += 1
        if len(self._mask_cache) > 4096:
            self._mask_cache.clear()

    def add_machine(self, machine_id, cpu: float = 1.0, mem: float = 1.0,
                    attributes: Mapping[str, object] | None = None) -> int:
        """Register (or revive) a machine; returns its row index."""

        if machine_id in self._index:
            row = self._index[machine_id]
            if self._alive[row]:
                raise SchedulingError(f"machine {machine_id!r} already present")
            self._alive[row] = True
            self._cpu[row] = cpu
            self._mem[row] = mem
            for column in self._columns.values():
                column[row] = None
        else:
            row = len(self._ids)
            self._ids.append(machine_id)
            self._index[machine_id] = row
            self._alive = np.append(self._alive, True)
            self._cpu = np.append(self._cpu, float(cpu))
            self._mem = np.append(self._mem, float(mem))
            for attr in list(self._columns):
                self._columns[attr] = np.append(self._columns[attr], None)
            self._absent_column = np.append(self._absent_column, None)
        if attributes:
            for attr, value in attributes.items():
                self._set_attr_row(row, attr, value)
        self._touch()
        return row

    def remove_machine(self, machine_id) -> None:
        """Mark a machine dead (its constraints no longer match anything)."""

        row = self._row(machine_id)
        if not self._alive[row]:
            raise SchedulingError(f"machine {machine_id!r} already removed")
        self._alive[row] = False
        self._touch()

    def update_capacity(self, machine_id, cpu: float | None = None,
                        mem: float | None = None) -> None:
        row = self._row(machine_id)
        if cpu is not None:
            self._cpu[row] = cpu
        if mem is not None:
            self._mem[row] = mem
        # Capacity does not affect constraint masks; no cache bump needed.

    def set_attribute(self, machine_id, attribute: str, value) -> None:
        """Set (or with value None, clear) one machine attribute."""

        self._set_attr_row(self._row(machine_id), attribute, value)
        self._touch()

    def _set_attr_row(self, row: int, attribute: str, value) -> None:
        column = self._columns.get(attribute)
        if column is None:
            column = np.full(len(self._ids), None, dtype=object)
            self._columns[attribute] = column
        column[row] = parse_value(value)

    def remove_attribute(self, machine_id, attribute: str) -> None:
        self.set_attribute(machine_id, attribute, None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _row(self, machine_id) -> int:
        try:
            return self._index[machine_id]
        except KeyError:
            raise SchedulingError(f"unknown machine {machine_id!r}") from None

    def __contains__(self, machine_id) -> bool:
        return machine_id in self._index and bool(self._alive[self._index[machine_id]])

    def __len__(self) -> int:
        return int(self._alive.sum())

    @property
    def n_rows(self) -> int:
        """Total rows ever allocated (alive + dead)."""

        return len(self._ids)

    def machine_ids(self, alive_only: bool = True) -> list:
        if not alive_only:
            return list(self._ids)
        return [mid for mid, row in self._index.items() if self._alive[row]]

    def attributes_of(self, machine_id) -> dict[str, str]:
        """The machine's attribute map (absent attributes omitted)."""

        row = self._row(machine_id)
        return {attr: column[row] for attr, column in self._columns.items()
                if column[row] is not None}

    def capacity_of(self, machine_id) -> tuple[float, float]:
        row = self._row(machine_id)
        return float(self._cpu[row]), float(self._mem[row])

    @property
    def alive_mask(self) -> np.ndarray:
        return self._alive.copy()

    @property
    def cpu_capacity(self) -> np.ndarray:
        return self._cpu

    @property
    def mem_capacity(self) -> np.ndarray:
        return self._mem

    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    # ------------------------------------------------------------------
    # vectorized matching
    # ------------------------------------------------------------------
    def _effective_numeric(self, attribute: str) -> np.ndarray:
        """Per-row effective numeric value: absent→0, non-numeric→NaN."""

        cached = self._numeric_cache.get(attribute)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        column = self._columns.get(attribute)
        if column is None:
            out = np.zeros(len(self._ids), dtype=np.float64)
        else:
            out = np.empty(len(self._ids), dtype=np.float64)
            for i, value in enumerate(column):
                if value is None:
                    out[i] = 0.0
                else:
                    num = value_as_int(value)
                    out[i] = np.nan if num is None else float(num)
        self._numeric_cache[attribute] = (self._version, out)
        return out

    def spec_mask(self, spec: AttributeSpec) -> np.ndarray:
        """Boolean row mask of machines satisfying one AttributeSpec."""

        key = (self._version, spec)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached

        column = self._columns.get(spec.attribute)
        if column is None:
            if len(self._absent_column) != len(self._ids):
                self._absent_column = np.full(len(self._ids), None, dtype=object)
            column = self._absent_column
        present = np.not_equal(column, None)

        n = len(self._ids)
        mask = np.ones(n, dtype=bool)
        if spec.absent_required:
            mask &= ~present
        if spec.present_required:
            mask &= present
        if spec.has_equal:
            if spec.equal is None:
                mask &= ~present
            else:
                mask &= np.equal(column, spec.equal)
        else:
            if spec.not_in:
                mask &= ~np.isin(column, list(spec.not_in))
            if spec.has_between:
                numeric = self._effective_numeric(spec.attribute)
                ok = ~np.isnan(numeric)
                if spec.lo is not None:
                    ok &= numeric >= spec.lo
                if spec.hi is not None:
                    ok &= numeric <= spec.hi
                mask &= ok
        mask.setflags(write=False)
        self._mask_cache[key] = mask
        return mask

    def eligible_mask(self, task: CompactedTask,
                      cpu_request: float = 0.0,
                      mem_request: float = 0.0) -> np.ndarray:
        """Alive machines satisfying every spec and the resource request."""

        mask = self._alive.copy()
        if cpu_request:
            mask &= self._cpu >= cpu_request
        if mem_request:
            mask &= self._mem >= mem_request
        for spec in task:
            if not mask.any():
                break
            mask &= self.spec_mask(spec)
        return mask

    def eligible_machines(self, task: CompactedTask, cpu_request: float = 0.0,
                          mem_request: float = 0.0) -> list:
        """Ids of machines the task may run on."""

        mask = self.eligible_mask(task, cpu_request, mem_request)
        return [self._ids[i] for i in np.flatnonzero(mask)]

    def count_suitable(self, task: CompactedTask, cpu_request: float = 0.0,
                       mem_request: float = 0.0) -> int:
        """How many alive machines satisfy the task (the grouping signal)."""

        return int(self.eligible_mask(task, cpu_request, mem_request).sum())

    def count_suitable_bulk(self, tasks: Iterable[CompactedTask]) -> np.ndarray:
        """Suitable-node counts for many tasks, sharing the spec-mask memo."""

        return np.fromiter((self.count_suitable(t) for t in tasks),
                           dtype=np.int64)
