"""Google Cluster Data constraint operators.

GCD task-placement constraints are triples ``(attribute, operator, value)``
evaluated against a machine's attribute map.  The 2011 traces define four
operators and the 2019 traces add four more (paper Section III.A):

====================  ====  ==========================================
Operator              code  semantics (absent attribute ≙ empty/0)
====================  ====  ==========================================
Equal                 0     attribute equals the value; an empty
                            constraint value matches machines lacking
                            the attribute
Not-Equal             1     attribute absent or different
Less-Than             2     numeric; attribute < value (absent ≙ 0)
Greater-Than          3     numeric; attribute > value (absent ≙ 0)
Less-Than-Equal       4     numeric; attribute ≤ value (2019)
Greater-Than-Equal    5     numeric; attribute ≥ value (2019)
Present               6     attribute defined and non-blank (2019)
Not-Present           7     attribute undefined (2019)
====================  ====  ==========================================

Values in GCD constraints are integers or opaque strings; numeric
operators are only legal with integer values ("the GCD traces support
only integer numbers in constraint operators").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["ConstraintOperator", "Constraint", "OPERATORS_2011",
           "OPERATORS_2019", "parse_value", "value_as_int"]


class ConstraintOperator(IntEnum):
    """Numeric operator codes as used in the GCD trace encodings."""

    EQUAL = 0
    NOT_EQUAL = 1
    LESS_THAN = 2
    GREATER_THAN = 3
    LESS_THAN_EQUAL = 4
    GREATER_THAN_EQUAL = 5
    PRESENT = 6
    NOT_PRESENT = 7

    @property
    def is_numeric(self) -> bool:
        """True for the order comparisons, which require integer values."""

        return self in (ConstraintOperator.LESS_THAN,
                        ConstraintOperator.GREATER_THAN,
                        ConstraintOperator.LESS_THAN_EQUAL,
                        ConstraintOperator.GREATER_THAN_EQUAL)

    @property
    def needs_value(self) -> bool:
        """Present/Not-Present take no value; everything else does."""

        return self not in (ConstraintOperator.PRESENT,
                            ConstraintOperator.NOT_PRESENT)

    @property
    def symbol(self) -> str:
        return _SYMBOLS[self]


_SYMBOLS = {
    ConstraintOperator.EQUAL: "=",
    ConstraintOperator.NOT_EQUAL: "<>",
    ConstraintOperator.LESS_THAN: "<",
    ConstraintOperator.GREATER_THAN: ">",
    ConstraintOperator.LESS_THAN_EQUAL: "<=",
    ConstraintOperator.GREATER_THAN_EQUAL: ">=",
    ConstraintOperator.PRESENT: "present",
    ConstraintOperator.NOT_PRESENT: "not-present",
}

OPERATORS_2011 = (ConstraintOperator.EQUAL, ConstraintOperator.NOT_EQUAL,
                  ConstraintOperator.LESS_THAN, ConstraintOperator.GREATER_THAN)
OPERATORS_2019 = tuple(ConstraintOperator)


def parse_value(raw) -> str | None:
    """Normalize a raw constraint/attribute value to canonical string form.

    GCD stores attribute values as strings, many of which are decimal
    integers.  ``None`` and ``''`` both normalize to ``None`` ("no value").
    Integers normalize to their decimal string so ``5`` and ``'5'`` compare
    equal.
    """

    if raw is None:
        return None
    if isinstance(raw, bool):
        raise TypeError("boolean constraint values are not part of the GCD schema")
    if isinstance(raw, int):
        return str(raw)
    if isinstance(raw, float):
        if not raw.is_integer():
            raise ValueError(f"non-integer numeric value {raw!r} in constraint")
        return str(int(raw))
    text = str(raw)
    return text if text != "" else None


def value_as_int(value: str | None) -> int | None:
    """Parse a canonical value as an integer, or None if not numeric."""

    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        return None


@dataclass(frozen=True, slots=True)
class Constraint:
    """A single raw node-affinity constraint on one machine attribute."""

    attribute: str
    op: ConstraintOperator
    value: str | None = None

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError("constraint attribute name must be non-empty")
        object.__setattr__(self, "op", ConstraintOperator(self.op))
        object.__setattr__(self, "value", parse_value(self.value))
        if self.op.is_numeric:
            if value_as_int(self.value) is None:
                raise ValueError(
                    f"operator {self.op.name} requires an integer value, "
                    f"got {self.value!r}")
        if not self.op.needs_value and self.value is not None:
            raise ValueError(f"operator {self.op.name} takes no value")

    def matches(self, attr_value) -> bool:
        """Evaluate against a machine's attribute value (None = absent)."""

        value = parse_value(attr_value)
        op = self.op
        if op is ConstraintOperator.EQUAL:
            # An Equal constraint with no value matches machines where the
            # attribute is empty/absent (paper Section III.A).
            if self.value is None:
                return value is None
            return value == self.value
        if op is ConstraintOperator.NOT_EQUAL:
            if self.value is None:
                return value is not None
            return value is None or value != self.value
        if op is ConstraintOperator.PRESENT:
            return value is not None
        if op is ConstraintOperator.NOT_PRESENT:
            return value is None
        # Numeric comparisons: an absent attribute compares as 0 (GCD
        # documented behaviour); a non-numeric attribute value never matches.
        machine_num = 0 if value is None else value_as_int(value)
        if machine_num is None:
            return False
        bound = value_as_int(self.value)
        assert bound is not None  # enforced in __post_init__
        if op is ConstraintOperator.LESS_THAN:
            return machine_num < bound
        if op is ConstraintOperator.GREATER_THAN:
            return machine_num > bound
        if op is ConstraintOperator.LESS_THAN_EQUAL:
            return machine_num <= bound
        return machine_num >= bound

    def render(self) -> str:
        """Human-readable ``${ATTR} <op> value`` form (Table V style)."""

        name = "${" + self.attribute + "}"
        if not self.op.needs_value:
            return f"{name} {self.op.symbol}"
        value = "" if self.value is None else self.value
        if self.op is ConstraintOperator.LESS_THAN:
            return f"{value} > {name}"  # paper renders 8 > ${AM}
        return f"{name} {self.op.symbol} {value}"
