"""Soft ('preferred') node affinity — the paper's §VI extension.

"Investigating Node 'Soft' Affinity: Kubernetes' 'soft' node-affinity
adds complexity to scheduling, necessitating further research to optimize
its application in cluster management."

Kubernetes models preferred affinity as weighted terms
(``preferredDuringSchedulingIgnoredDuringExecution``): a node violating a
term is still eligible, but nodes are ranked by the sum of the weights of
the terms they satisfy.  :class:`SoftConstraint` attaches a weight to a
collapsed :class:`~repro.constraints.compaction.AttributeSpec`, and
:func:`preference_scores` computes the per-machine score vector the
scheduler uses as a tie-breaker among (hard-)eligible machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .compaction import AttributeSpec, CompactedTask, compact
from .matcher import MachinePark
from .operators import Constraint

__all__ = ["SoftConstraint", "SoftAffinityTask", "preference_scores"]


@dataclass(frozen=True, slots=True)
class SoftConstraint:
    """A weighted, non-mandatory constraint term (Kubernetes weights 1–100)."""

    spec: AttributeSpec
    weight: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.weight <= 100:
            raise ValueError("soft-affinity weights must lie in [1, 100]")

    @classmethod
    def from_raw(cls, constraints: Iterable[Constraint],
                 weight: int = 1) -> "list[SoftConstraint]":
        """Collapse raw constraints and wrap each spec with the weight."""

        return [cls(spec=spec, weight=weight)
                for spec in compact(constraints)]


@dataclass(frozen=True)
class SoftAffinityTask:
    """Hard requirements plus weighted preferences."""

    hard: CompactedTask
    soft: tuple[SoftConstraint, ...] = ()

    @property
    def max_score(self) -> int:
        return sum(term.weight for term in self.soft)

    def score(self, attributes) -> int:
        """Preference score of one machine's attribute map."""

        return sum(term.weight for term in self.soft
                   if term.spec.matches(attributes.get(term.spec.attribute)))


def preference_scores(park: MachinePark, task: SoftAffinityTask,
                      cpu_request: float = 0.0,
                      mem_request: float = 0.0) -> np.ndarray:
    """Per-row scores: -1 for ineligible machines, else the summed weight
    of satisfied soft terms.

    Vectorized over the park: each soft term contributes its weight via
    the memoized spec mask, so scoring costs one boolean pass per distinct
    term.
    """

    eligible = park.eligible_mask(task.hard, cpu_request, mem_request)
    scores = np.zeros(park.n_rows, dtype=np.int64)
    for term in task.soft:
        scores += term.weight * park.spec_mask(term.spec)
    scores[~eligible] = -1
    return scores
