"""``repro.core`` — the Continuous Transfer Learning Method (CTLM).

The paper's contribution: the growing two-layer model with input-layer
extension and damped-gradient transfer training, the fully-retrain
comparison variant, baseline adapters, and the continuous-learning driver
that produces the Table X / Table XI measurements.
"""

from .baselines import (BaselineStepModel, baseline_suite,
                        make_ensemble_baseline, make_mlp_baseline,
                        make_ridge_baseline, make_sgd_baseline)
from .config import BENCH_CONFIG, DEFAULT_CONFIG, CTLMConfig
from .driver import ContinuousLearningDriver, ModelSummary, RunResult, StepRow
from .evaluate import EvalResult, evaluate_model, evaluate_predictions
from .fully_retrain import FullyRetrainModel
from .growing import GrowingModel, StepOutcome, build_model, extend_state_dict
from .hybrid import HybridGroupClassifier, HybridStats
from .inference_plan import InferencePlan, PlanScratch, compile_model
from .train_plan import TrainPlan, compile_training

__all__ = [
    "CTLMConfig", "DEFAULT_CONFIG", "BENCH_CONFIG",
    "GrowingModel", "FullyRetrainModel", "StepOutcome", "build_model",
    "extend_state_dict",
    "EvalResult", "evaluate_model", "evaluate_predictions",
    "BaselineStepModel", "baseline_suite", "make_mlp_baseline",
    "make_ridge_baseline", "make_sgd_baseline", "make_ensemble_baseline",
    "ContinuousLearningDriver", "RunResult", "ModelSummary", "StepRow",
    "HybridGroupClassifier", "HybridStats",
    "InferencePlan", "PlanScratch", "compile_model",
    "TrainPlan", "compile_training",
]
