"""Baseline adapters: the paper's sklearn models under the step interface.

Wraps :mod:`repro.learn` classifiers so the continuous-learning driver can
run them side-by-side with the Growing / Fully-Retrain models.  Like the
paper's baselines they are "trained from scratch" at every step; epochs
are reported for ANN models (``n_iter_``) and left at 0 for closed-form /
non-epoch learners, matching Table X's "epoch counts noted for ANN
models".
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..datasets.dataset import DatasetData
from ..learn.ensemble import VotingClassifier
from ..learn.linear import RidgeClassifier, SGDClassifier
from ..learn.mlp import MLPClassifier
from .config import CTLMConfig, DEFAULT_CONFIG
from .evaluate import evaluate_predictions
from .growing import StepOutcome

__all__ = ["BaselineStepModel", "make_mlp_baseline", "make_ridge_baseline",
           "make_sgd_baseline", "make_ensemble_baseline", "baseline_suite"]


class BaselineStepModel:
    """Adapter giving a ``fit``/``predict`` classifier the step interface."""

    def __init__(self, name: str, factory: Callable[[], object]):
        self.name = name
        self.factory = factory
        self.estimator = None
        self.history: list[StepOutcome] = []

    def fit_step(self, dataset: DatasetData) -> StepOutcome:
        started = time.perf_counter()
        self.estimator = self.factory()
        self.estimator.fit(dataset.X_train, dataset.y_train)
        predictions = self.estimator.predict(dataset.X_test)
        result = evaluate_predictions(dataset.y_test, predictions)
        epochs = int(getattr(self.estimator, "n_iter_", 0))
        outcome = StepOutcome(
            epochs=epochs, attempts=1, accuracy=result.accuracy,
            group_0_f1=result.group_0_f1,
            seconds=time.perf_counter() - started,
            features_before=dataset.features_count,
            features_after=dataset.features_count,
            grew=False, from_scratch=True)
        self.history.append(outcome)
        return outcome

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.estimator is None:
            raise RuntimeError("baseline is untrained")
        return self.estimator.predict(X)


def make_mlp_baseline(config: CTLMConfig = DEFAULT_CONFIG,
                      rng: np.random.Generator | None = None,
                      max_iter: int = 120) -> BaselineStepModel:
    """"the ANN was configured with 30 hidden units and the default Adam"."""

    def factory():
        return MLPClassifier(hidden_layer_sizes=(config.hidden_layer_size,),
                             learning_rate_init=1e-2, max_iter=max_iter,
                             rng=rng)
    return BaselineStepModel("MLP Classifier", factory)


def make_ridge_baseline(alpha: float = 1.0) -> BaselineStepModel:
    """L2-regularized closed-form linear classifier."""

    def factory():
        return RidgeClassifier(alpha=alpha)
    return BaselineStepModel("Ridge Classifier", factory)


def make_sgd_baseline(rng: np.random.Generator | None = None,
                      max_iter: int = 60) -> BaselineStepModel:
    """Linear SVM trained with stochastic gradient descent."""

    def factory():
        return SGDClassifier(loss="hinge", max_iter=max_iter, eta0=1.0,
                             batch_size=16, power_t=0.3, rng=rng)
    return BaselineStepModel("SGD Classifier", factory)


def make_ensemble_baseline(config: CTLMConfig = DEFAULT_CONFIG,
                           rng: np.random.Generator | None = None
                           ) -> BaselineStepModel:
    """Hard-voting combination of the three baselines (paper's Voter)."""

    def factory():
        return VotingClassifier(
            estimators=[
                ("mlp", MLPClassifier(
                    hidden_layer_sizes=(config.hidden_layer_size,),
                    learning_rate_init=1e-2, max_iter=80, rng=rng)),
                ("ridge", RidgeClassifier()),
                ("sgd", SGDClassifier(loss="hinge", max_iter=40, eta0=1.0,
                                      batch_size=16, power_t=0.3, rng=rng)),
            ],
            voting="hard")
    return BaselineStepModel("Ensemble Voter", factory)


def baseline_suite(config: CTLMConfig = DEFAULT_CONFIG,
                   rng: np.random.Generator | None = None
                   ) -> dict[str, BaselineStepModel]:
    """All four paper baselines, keyed by their Table X column names."""

    return {
        "MLP Classifier": make_mlp_baseline(config, rng),
        "Ridge Classifier": make_ridge_baseline(),
        "SGD Classifier": make_sgd_baseline(rng),
        "Ensemble Voter": make_ensemble_baseline(config, rng),
    }
