"""CTLM hyperparameters (all values as published in paper Section IV).

Every constant in :class:`CTLMConfig` is traceable to the paper:

* two-layer ANN, 30 hidden units, 26 output classes (Listing 1),
* Adam, learning rate 0.05 (Listing 3 / §IV.B),
* Cross-Entropy loss with Group 0 weighted ×200 (``group_0_class_weight``),
* pre-trained input-weight gradients scaled by 0.1
  (``pretrained_gradient_rate``; >0.2–0.3 "negated training effects",
  0.0 "reduced model accuracy"),
* early stop at accuracy > 0.95 ∧ Group-0 F1 > 0.9 (thresholds derived
  from the baseline results of [27]),
* 100-epoch limit with fail-fast re-initialization, halting after ten
  failed attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CTLMConfig", "DEFAULT_CONFIG", "BENCH_CONFIG"]


@dataclass(frozen=True, slots=True)
class CTLMConfig:
    """Hyperparameter bundle for the growing / fully-retrain models."""

    hidden_layer_size: int = 30
    classes_count: int = 26
    group_0_class_weight: float = 200.0
    learning_rate: float = 0.05
    pretrained_gradient_rate: float = 0.1
    accepted_accuracy: float = 0.95
    accepted_group_0_f1_score: float = 0.9
    epochs_limit: int = 100
    max_training_attempts: int = 10
    batch_size: int = 256

    def __post_init__(self) -> None:
        if self.hidden_layer_size <= 0:
            raise ValueError("hidden_layer_size must be positive")
        if self.classes_count < 2:
            raise ValueError("classes_count must be at least 2")
        if not 0.0 <= self.pretrained_gradient_rate <= 1.0:
            raise ValueError("pretrained_gradient_rate must be in [0, 1]")
        if not 0.0 < self.accepted_accuracy < 1.0:
            raise ValueError("accepted_accuracy must be in (0, 1)")
        if not 0.0 < self.accepted_group_0_f1_score <= 1.0:
            raise ValueError("accepted_group_0_f1_score must be in (0, 1]")
        if self.epochs_limit <= 0 or self.max_training_attempts <= 0:
            raise ValueError("epoch and attempt limits must be positive")
        if self.group_0_class_weight <= 0:
            raise ValueError("group_0_class_weight must be positive")

    def with_overrides(self, **kwargs) -> "CTLMConfig":
        """A copy with some fields replaced (ablation sweeps)."""

        return replace(self, **kwargs)

    def class_weights(self):
        """The weighted-loss vector ``[group_0_weight, 1, 1, ...]``."""

        import numpy as np

        weights = np.ones(self.classes_count, dtype=np.float32)
        weights[0] = self.group_0_class_weight
        return weights


DEFAULT_CONFIG = CTLMConfig()

#: Configuration used by the benchmark harness.  The paper's learning rate
#: (0.05) is tuned for its ~16k-dimensional, <0.01%-dense CO-VV inputs; at
#: bench scale (hundreds of denser columns) the same Adam step size
#: oscillates around the optimum, so the harness scales it down while
#: keeping every other published constant.  See EXPERIMENTS.md.
BENCH_CONFIG = CTLMConfig(learning_rate=0.01, batch_size=64)
