"""Continuous-learning driver: replays growth steps through model variants.

Consumes the :class:`~repro.datasets.pipeline.StepDataset` sequence of one
cell and retrains each registered model at every feature-array extension,
recording the per-step metrics that populate Table XI and the per-cell
summary rows of Table X (average accuracy, average Group-0 F1, total
epochs, wall time per step).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.dataset import DatasetData
from ..datasets.pipeline import StepDataset
from .growing import StepOutcome

__all__ = ["StepRow", "ModelSummary", "RunResult", "ContinuousLearningDriver"]


@dataclass
class StepRow:
    """One model's metrics at one step (one Table XI cell group)."""

    step_index: int
    time_label: str
    features: int
    n_new_features: int
    n_samples: int
    outcome: StepOutcome


@dataclass
class ModelSummary:
    """One model's Table X row."""

    name: str
    avg_accuracy: float
    avg_group_0_f1: float | None
    epochs_total: int
    seconds_total: float
    seconds_initial: float
    seconds_per_growth_step: tuple[float, ...]

    @property
    def avg_seconds_per_growth_step(self) -> float:
        if not self.seconds_per_growth_step:
            return 0.0
        return float(np.mean(self.seconds_per_growth_step))


@dataclass
class RunResult:
    """All models' step rows and summaries for one cell."""

    cell_name: str
    rows: dict[str, list[StepRow]] = field(default_factory=dict)

    def summary(self, name: str) -> ModelSummary:
        rows = self.rows[name]
        accuracies = [r.outcome.accuracy for r in rows]
        f1s = [r.outcome.group_0_f1 for r in rows
               if r.outcome.group_0_f1 is not None]
        seconds = [r.outcome.seconds for r in rows]
        return ModelSummary(
            name=name,
            avg_accuracy=float(np.mean(accuracies)),
            avg_group_0_f1=float(np.mean(f1s)) if f1s else None,
            epochs_total=sum(r.outcome.epochs for r in rows),
            seconds_total=float(np.sum(seconds)),
            seconds_initial=seconds[0] if seconds else 0.0,
            seconds_per_growth_step=tuple(seconds[1:]))

    def summaries(self) -> dict[str, ModelSummary]:
        return {name: self.summary(name) for name in self.rows}


class ContinuousLearningDriver:
    """Run registered step-models over a cell's growth-step datasets."""

    def __init__(self, models: dict[str, object], batch_size: int = 256,
                 test_size: float = 0.25,
                 rng: np.random.Generator | None = None,
                 retrain_only_on_growth: bool = True):
        """``models`` maps display name → object with ``fit_step(DatasetData)``.

        ``retrain_only_on_growth`` mirrors the paper: steps are defined as
        the moments the feature array was extended, so a step whose
        dataset did not add features (possible in tiny test traces) is
        skipped rather than retrained.
        """

        if not models:
            raise ValueError("at least one model is required")
        self.models = dict(models)
        self.batch_size = batch_size
        self.test_size = test_size
        self.rng = rng or np.random.default_rng()
        self.retrain_only_on_growth = retrain_only_on_growth

    def run(self, steps: list[StepDataset], cell_name: str = "cell",
            verbose: bool = False) -> RunResult:
        """Retrain every model at every growth step; returns all metrics."""

        if not steps:
            raise ValueError("no steps to run")
        result = RunResult(cell_name=cell_name,
                           rows={name: [] for name in self.models})
        first = True
        for step in steps:
            if step.n_samples < 8 or len(np.unique(step.y)) < 2:
                continue  # not enough signal to train/evaluate yet
            if (self.retrain_only_on_growth and not first
                    and step.n_new_features == 0):
                continue
            # One shared split per step: every model sees identical data
            # (split seeds derive from the driver rng, reproducibly).
            dataset = DatasetData(
                step.X, step.y, test_size=self.test_size,
                batch_size=self.batch_size,
                rng=np.random.default_rng(self.rng.integers(2 ** 63)))
            for name, model in self.models.items():
                outcome = model.fit_step(dataset)
                result.rows[name].append(StepRow(
                    step_index=step.step_index, time_label=step.label,
                    features=step.features_after,
                    n_new_features=step.n_new_features,
                    n_samples=step.n_samples, outcome=outcome))
                if verbose:  # pragma: no cover - console convenience
                    f1 = outcome.group_0_f1
                    print(f"  [{cell_name}] step {step.step_index:2d} "
                          f"{name:<18} acc={outcome.accuracy:.5f} "
                          f"f1_0={f1 if f1 is None else round(f1, 5)} "
                          f"epochs={outcome.epochs} "
                          f"({outcome.seconds:.1f}s)")
            first = False
        return result
