"""Model evaluation: overall accuracy plus Group 0 F1.

The paper's two headline metrics.  ``group_0_f1`` is ``None`` when the
test split contains no Group 0 samples — "Group 0 F1 scores are omitted
when no Group 0 samples were present in the test dataset" — and the
early-stop check then passes vacuously on that component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..datasets.grouping import GROUP_SINGLE_NODE
from ..learn.metrics import accuracy_score, f1_score

__all__ = ["EvalResult", "evaluate_model", "evaluate_predictions"]


@dataclass(frozen=True, slots=True)
class EvalResult:
    """(accuracy, Group-0 F1) pair; F1 is None when Group 0 is absent."""

    accuracy: float
    group_0_f1: float | None

    def meets(self, accepted_accuracy: float,
              accepted_group_0_f1: float) -> bool:
        """The paper's early-stop condition."""

        if self.accuracy <= accepted_accuracy:
            return False
        if self.group_0_f1 is None:
            return True
        return self.group_0_f1 > accepted_group_0_f1

    def __iter__(self):
        yield self.accuracy
        yield self.group_0_f1


def evaluate_predictions(y_true: np.ndarray, y_pred: np.ndarray) -> EvalResult:
    """Metrics from already-computed predictions."""

    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    accuracy = accuracy_score(y_true, y_pred)
    if not np.any(y_true == GROUP_SINGLE_NODE):
        return EvalResult(accuracy, None)
    group_0_f1 = f1_score(y_true, y_pred, average="binary",
                          pos_label=GROUP_SINGLE_NODE, zero_division=0.0)
    return EvalResult(accuracy, group_0_f1)


def evaluate_model(X_test: np.ndarray, y_test: np.ndarray,
                   model: nn.Module) -> EvalResult:
    """Evaluate an ``nn`` classifier head over logits (argmax decision)."""

    if sp.issparse(X_test):
        # The eager Module forward is dense-only; sparse test splits
        # (keep_sparse datasets) densify here, outside the hot loop.
        X_test = X_test.toarray()
    model.eval()
    with nn.no_grad():
        logits = model(nn.from_numpy(np.ascontiguousarray(
            X_test, dtype=np.float32)))
    return evaluate_predictions(y_test, logits.numpy().argmax(axis=1))
