"""The Fully-Retrain comparison variant (paper Section V).

"The proposed Growing model was compared to a Fully Retrain variant,
which fully retrains on each step's dataset" — identical architecture,
loss, optimizer and stopping rule, but every step discards the previous
weights and starts from a fresh initialization, paying the full epoch
cost the growing model avoids.
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from ..datasets.dataset import DatasetData
from ..errors import TrainingFailedError
from .config import CTLMConfig, DEFAULT_CONFIG
from .evaluate import EvalResult, evaluate_model
from .growing import StepOutcome, build_model

__all__ = ["FullyRetrainModel"]


class FullyRetrainModel:
    """Same two-layer ANN, retrained from scratch at every step."""

    def __init__(self, config: CTLMConfig = DEFAULT_CONFIG,
                 rng: np.random.Generator | None = None):
        self.config = config
        self.rng = rng or np.random.default_rng()
        self.model: nn.Sequential | None = None
        self.history: list[StepOutcome] = []

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("model is untrained")
        self.model.eval()
        with nn.no_grad():
            logits = self.model(nn.from_numpy(
                np.ascontiguousarray(X, dtype=np.float32)))
        return logits.numpy().argmax(axis=1)

    def fit_step(self, dataset: DatasetData) -> StepOutcome:
        """Train a brand-new model on this step's dataset."""

        config = self.config
        started = time.perf_counter()
        features_before = (0 if self.model is None
                           else self.model["fc1"].weight.data.shape[1])
        total_epochs = 0

        for attempt in range(1, config.max_training_attempts + 1):
            self.model = build_model(dataset.features_count, config, self.rng)
            epochs, result = self._train(dataset)
            total_epochs += epochs
            if result.meets(config.accepted_accuracy,
                            config.accepted_group_0_f1_score):
                outcome = StepOutcome(
                    epochs=total_epochs, attempts=attempt,
                    accuracy=result.accuracy, group_0_f1=result.group_0_f1,
                    seconds=time.perf_counter() - started,
                    features_before=features_before,
                    features_after=dataset.features_count,
                    grew=features_before != dataset.features_count,
                    from_scratch=True)
                self.history.append(outcome)
                return outcome

        raise TrainingFailedError(
            f"fully-retrain thresholds not reached after "
            f"{config.max_training_attempts} attempts")

    def _train(self, dataset: DatasetData) -> tuple[int, EvalResult]:
        config = self.config
        model = self.model
        assert model is not None
        loss_function = nn.CrossEntropyLoss(weight=config.class_weights())
        optimizer = nn.Adam(model.parameters(), lr=config.learning_rate)
        result = EvalResult(0.0, None)
        train_loader = dataset.train_loader
        for epoch in range(1, config.epochs_limit + 1):
            model.train()
            for X_batch, y_batch in train_loader:
                optimizer.zero_grad()
                loss = loss_function(model(X_batch), y_batch)
                loss.backward()
                optimizer.step()
            model.eval()
            result = evaluate_model(dataset.X_test, dataset.y_test, model)
            if result.meets(config.accepted_accuracy,
                            config.accepted_group_0_f1_score):
                return epoch, result
        return config.epochs_limit, result
