"""The Continuous Transfer Learning growing model (paper Section IV).

This is the paper's primary contribution, implemented faithfully from
Listings 1–3:

* **Architecture** — ``nn.Sequential(OrderedDict([('fc1', Linear(F, 30)),
  ('fc2', Linear(30, 26))]))``.
* **Input-layer extension** (Listing 2) — when the CO-VV feature array has
  grown from F to F′, the saved ``fc1.weight`` (30, F) is right-padded
  with zeros to (30, F′) *inside the state dict* before restoring; the
  hidden width never changes.  Zero columns are exactly neutral on the old
  data, where the new features are identically zero.
* **Dynamic gradient modification** (Listing 3) — during growth training a
  multiplier vector ``[rate]*F + [1]*(F′-F)`` (rate = 0.1) is multiplied
  in place into ``fc1.weight``'s gradient each batch under ``no_grad``,
  so pre-trained columns learn ten times slower than fresh ones; fc1 bias
  trains normally and all other layers stay frozen.
* **Weighted loss / early stop / fail-fast** — Cross-Entropy with Group 0
  ×200, Adam at lr 0.05, stop when accuracy > 0.95 and Group-0 F1 > 0.9,
  discard and re-initialize after 100 epochs, halt after ten attempts.
"""

from __future__ import annotations

import logging
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..datasets.dataset import DatasetData
from ..errors import TrainingFailedError
from .config import CTLMConfig, DEFAULT_CONFIG
from .evaluate import EvalResult, evaluate_model, evaluate_predictions
from .inference_plan import InferencePlan, compile_model
from .train_plan import compile_training

__all__ = ["StepOutcome", "GrowingModel", "build_model", "extend_state_dict"]

logger = logging.getLogger(__name__)


@dataclass
class StepOutcome:
    """What one retraining step cost and achieved (one Table XI cell)."""

    epochs: int
    attempts: int
    accuracy: float
    group_0_f1: float | None
    seconds: float
    features_before: int
    features_after: int
    grew: bool
    from_scratch: bool
    warm_started: bool = False

    @property
    def evaluation(self) -> EvalResult:
        return EvalResult(self.accuracy, self.group_0_f1)


def build_model(features_count: int, config: CTLMConfig,
                rng: np.random.Generator) -> nn.Sequential:
    """Create the paper's two-layer model (Listing 1)."""

    model = nn.Sequential(OrderedDict([
        ("fc1", nn.Linear(features_count, config.hidden_layer_size, rng=rng)),
        ("fc2", nn.Linear(config.hidden_layer_size, config.classes_count,
                          rng=rng)),
    ]))
    return model.to(dtype=np.float32)


def extend_state_dict(state_dict: "OrderedDict[str, np.ndarray]",
                      features_count: int) -> "OrderedDict[str, np.ndarray]":
    """Right-pad ``fc1.weight`` to ``features_count`` columns (Listing 2).

    The padding happens within the state dict before the model is
    restored; new input weights are zero so the extended model is exactly
    equivalent to the old one on pre-extension data.
    """

    fc1_weight = np.asarray(state_dict["fc1.weight"])
    pretrained = fc1_weight.shape[1]
    if pretrained > features_count:
        raise ValueError(
            f"feature array shrank: model has {pretrained} input features, "
            f"dataset has {features_count}")
    out = OrderedDict(state_dict)
    if pretrained != features_count:
        out["fc1.weight"] = nn.functional.pad(
            fc1_weight, pad=(0, features_count - pretrained),
            mode="constant", value=0)
    return out


class GrowingModel:
    """Continuously-trained classifier with an extensible input layer."""

    def __init__(self, config: CTLMConfig = DEFAULT_CONFIG,
                 rng: np.random.Generator | None = None):
        self.config = config
        self.rng = rng or np.random.default_rng()
        self.model: nn.Sequential | None = None
        self.history: list[StepOutcome] = []
        # Adam state captured by the last fused training run; callers
        # (the serving trainer) can feed it back into the next
        # fit_step(optimizer_state=...) to warm-start the moments.
        self.last_optimizer_state: dict | None = None
        self._warm_start_applied = False

    # ------------------------------------------------------------------
    # persistence (torch.save / torch.load equivalents)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        if self.model is None:
            raise RuntimeError("no model to save")
        nn.serialize.save(self.model.state_dict(), path)

    def load(self, path, features_count: int | None = None) -> None:
        """Restore a saved state; optionally extending to a wider input."""

        self._restore(nn.serialize.load(path), features_count)

    def state_bytes(self) -> bytes:
        """The model state as bytes (in-memory ``save``; serving publish)."""

        if self.model is None:
            raise RuntimeError("no model to serialize")
        return nn.serialize.dumps(self.model.state_dict())

    def restore_bytes(self, data: bytes,
                      features_count: int | None = None) -> None:
        """In-memory ``load``: restore from :meth:`state_bytes` output."""

        self._restore(nn.serialize.loads(data), features_count)

    def clone(self) -> "GrowingModel":
        """An independent copy sharing no arrays with this model.

        The round trip goes through the checkpoint codec, so a clone is
        exactly what a save → load cycle would produce — this is how the
        serving layer publishes snapshots that a background trainer can
        keep training without mutating the served weights.
        """

        other = GrowingModel(self.config, rng=np.random.default_rng())
        if self.model is not None:
            other.restore_bytes(self.state_bytes())
        return other

    def _restore(self, state_dict, features_count: int | None) -> None:
        width = int(np.asarray(state_dict["fc1.weight"]).shape[1])
        target = width if features_count is None else features_count
        state_dict = extend_state_dict(state_dict, target)
        self.model = build_model(target, self.config, self.rng)
        self.model.load_state_dict(state_dict)

    # ------------------------------------------------------------------
    @property
    def features_count(self) -> int | None:
        if self.model is None:
            return None
        return self.model["fc1"].weight.data.shape[1]

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("model is untrained")
        self.model.eval()
        with nn.no_grad():
            logits = self.model(nn.from_numpy(
                np.ascontiguousarray(X, dtype=np.float32)))
        return logits.numpy().argmax(axis=1)

    def compile(self, model_version: int = 0) -> InferencePlan:
        """Export the current weights to a fused, immutable
        :class:`~repro.core.InferencePlan` (the serving fast path).

        The plan copies the weights, so continuing to train this model
        never perturbs a compiled snapshot; recompile after
        :meth:`fit_step` (the serving layer does this on every
        publish).
        """

        if self.model is None:
            raise RuntimeError("model is untrained")
        return compile_model(self.model, model_version=model_version)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit_step(self, dataset: DatasetData,
                 fused: bool = True,
                 optimizer_state: dict | None = None) -> StepOutcome:
        """Absorb one feature-growth step (the Figure 2 routine).

        Chooses between initial training, transfer training with input
        extension, or plain continuation when the width is unchanged;
        falls back to full re-initialization when thresholds are not met
        within the epoch limit (fail-fast), and raises
        :class:`TrainingFailedError` after ten failed attempts.

        ``fused=True`` (default) runs each training attempt through the
        compiled :class:`~repro.core.TrainPlan` (fused NumPy backprop,
        sparse-capable, no autograd graph); ``fused=False`` keeps the
        eager Listing-3 loop — the fallback and the fast path's
        equivalence oracle.  Both consume the dataset RNG identically,
        so epoch-by-epoch batch order matches between the paths.

        ``optimizer_state`` (from a previous run's
        :attr:`last_optimizer_state` /
        :meth:`~repro.core.TrainPlan.optimizer_state`) warm-starts
        Adam's moments on the *first* attempt of the fused path; the
        input layer's rows may have grown since the state was captured
        (prefix semantics).  Incompatible state (hidden-width change)
        falls back to a cold start; fail-fast retries always restart
        cold — a fresh re-initialization must not inherit moments tuned
        to discarded weights.
        """

        config = self.config
        started = time.perf_counter()
        features_before = self.features_count or 0
        grew = self.model is not None and features_before < dataset.features_count
        total_epochs = 0

        for attempt in range(1, config.max_training_attempts + 1):
            from_scratch = self.model is None
            if from_scratch:
                self.model = build_model(dataset.features_count, config, self.rng)
                pretrained_count = None
            elif grew and attempt == 1:
                state_dict = extend_state_dict(self.model.state_dict(),
                                               dataset.features_count)
                self.model = build_model(dataset.features_count, config, self.rng)
                self.model.load_state_dict(state_dict)
                pretrained_count = features_before
            else:
                # Same width: continue training the existing weights, with
                # every parameter live (no damping applies).
                pretrained_count = None

            warm_state = (optimizer_state
                          if attempt == 1 and not from_scratch else None)
            epochs, result = self._train_until_accepted(
                dataset, pretrained_count=pretrained_count, fused=fused,
                optimizer_state=warm_state)
            total_epochs += epochs
            if result.meets(config.accepted_accuracy,
                            config.accepted_group_0_f1_score):
                outcome = StepOutcome(
                    epochs=total_epochs, attempts=attempt,
                    accuracy=result.accuracy, group_0_f1=result.group_0_f1,
                    seconds=time.perf_counter() - started,
                    features_before=features_before,
                    features_after=dataset.features_count,
                    grew=grew, from_scratch=from_scratch,
                    warm_started=self._warm_start_applied)
                self.history.append(outcome)
                return outcome
            # Fail fast: discard the pre-trained model and start fresh.
            self.model = None

        raise TrainingFailedError(
            f"thresholds not reached after {config.max_training_attempts} "
            f"attempts (acc>{config.accepted_accuracy}, "
            f"F1_0>{config.accepted_group_0_f1_score})")

    def _train_until_accepted(self, dataset: DatasetData,
                              pretrained_count: int | None,
                              fused: bool = True,
                              optimizer_state: dict | None = None
                              ) -> tuple[int, EvalResult]:
        """The Listing 3 loop; returns (epochs used, final evaluation)."""

        config = self.config
        growth_mode = pretrained_count is not None
        if growth_mode:
            multiplier = np.concatenate([
                np.full(pretrained_count, config.pretrained_gradient_rate,
                        dtype=np.float32),
                np.ones(dataset.features_count - pretrained_count,
                        dtype=np.float32)])
        else:
            multiplier = None
        # The eager oracle always cold-starts: it builds its own
        # nn.Adam, and warm-starting only one path would break the
        # fused/eager equivalence contract.
        self._warm_start_applied = False
        if fused:
            return self._train_fused(dataset, multiplier, optimizer_state)
        return self._train_eager(dataset, multiplier)

    def _train_fused(self, dataset: DatasetData,
                     multiplier: np.ndarray | None,
                     optimizer_state: dict | None = None
                     ) -> tuple[int, EvalResult]:
        """Listing 3 on the compiled :class:`~repro.core.TrainPlan`.

        The design matrix flows through CSR end to end when the dataset
        kept it sparse; batch order mirrors the eager ``DataLoader``
        exactly (one shuffle of the training indices per epoch off the
        same generator).
        """

        config = self.config
        model = self.model
        assert model is not None
        plan = compile_training(
            model, lr=config.learning_rate,
            class_weights=config.class_weights(),
            input_gradient_scale=multiplier,
            train_first_layer_only=multiplier is not None)
        if optimizer_state is not None:
            try:
                plan.load_optimizer_state(optimizer_state)
                self._warm_start_applied = True
            except (KeyError, ValueError):
                # Architecture changed since the state was captured
                # (hidden width, layer count): cold-start instead.
                logger.warning("optimizer state incompatible with the "
                               "current architecture; cold-starting Adam")

        X_train, y_train = dataset.X_train, dataset.y_train
        X_test, y_test = dataset.X_test, dataset.y_test
        n = X_train.shape[0]
        batch_size = dataset.batch_size
        rng = dataset.rng

        result = EvalResult(0.0, None)
        epochs = config.epochs_limit
        for epoch in range(1, config.epochs_limit + 1):
            # Fresh arange per epoch, exactly like DataLoader.__iter__:
            # shuffling the previous permutation in place would apply
            # the same RNG draws to a different arrangement and the
            # batch composition would diverge from the eager path.
            order = np.arange(n)
            rng.shuffle(order)
            plan.train_epoch(X_train, y_train, order, batch_size)
            result = evaluate_predictions(y_test, plan.predict(X_test))
            if result.meets(config.accepted_accuracy,
                            config.accepted_group_0_f1_score):
                epochs = epoch
                break
        plan.finish()
        self.last_optimizer_state = plan.optimizer_state()
        return epochs, result

    def _train_eager(self, dataset: DatasetData,
                     multiplier: np.ndarray | None
                     ) -> tuple[int, EvalResult]:
        """The eager autograd path (fallback + equivalence oracle)."""

        config = self.config
        model = self.model
        assert model is not None
        loss_function = nn.CrossEntropyLoss(weight=config.class_weights())
        optimizer = nn.Adam(model.parameters(), lr=config.learning_rate)
        growth_mode = multiplier is not None

        try:
            result = EvalResult(0.0, None)
            train_loader = dataset.train_loader
            for epoch in range(1, config.epochs_limit + 1):
                model.train()
                for X_batch, y_batch in train_loader:
                    optimizer.zero_grad()
                    y_logits = model(X_batch)
                    loss = loss_function(y_logits, y_batch)
                    loss.backward()
                    if growth_mode:
                        for name, param in model.named_parameters():
                            if name == "fc1.weight":
                                # Damp pre-trained input columns (in
                                # place, outside the autograd graph).
                                with nn.no_grad():
                                    param.grad.mul_(
                                        multiplier[np.newaxis, :])
                                param.requires_grad = True
                            elif name == "fc1.bias":
                                param.requires_grad = True
                            else:
                                param.requires_grad = False
                    optimizer.step()

                model.eval()
                result = evaluate_model(dataset.X_test, dataset.y_test,
                                        model)
                if result.meets(config.accepted_accuracy,
                                config.accepted_group_0_f1_score):
                    return epoch, result
            return config.epochs_limit, result
        finally:
            # Restore trainability on *every* exit: an accepted growth
            # step used to leave fc2 frozen, silently pinning it for
            # all later same-width continuation training.
            if growth_mode:
                for param in model.parameters():
                    param.requires_grad = True
