"""Hybrid ML + rule classification — the paper's §VI extension.

"Task Misclassification via Hybridization: A mixed model that combines ML
with predefined rules (human input).  Misclassifying single-node tasks as
multi-node ones, while manageable, may cause performance issues like
resource reallocation.  A secondary heuristic layer could better handle
edge cases, reducing disruptions."

:class:`HybridGroupClassifier` wraps any group predictor with two rule
layers:

* **structural rules** run *before* the model: a task whose compacted
  constraints demand an exact value of a designated identity attribute
  (e.g. ``node_id``) is Group 0 by construction — no inference needed;
* **verification** runs *after* the model: predictions at or below the
  verify threshold (the expensive-to-get-wrong ones) are checked against
  the live machine park's exact suitable-node count when one is attached,
  replacing the prediction with ground truth.

Both layers keep statistics so deployments can monitor how often the
heuristics overrode the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constraints.compaction import CompactedTask
from ..constraints.matcher import MachinePark
from ..datasets.grouping import GROUP_SINGLE_NODE, group_of

__all__ = ["HybridStats", "HybridGroupClassifier"]


@dataclass
class HybridStats:
    """How often each layer decided."""

    structural_hits: int = 0
    model_predictions: int = 0
    verified: int = 0
    corrections: int = 0


class HybridGroupClassifier:
    """Predict task groups through rules → model → verification."""

    def __init__(self, model, encoder, *,
                 identity_attributes: tuple[str, ...] = ("node_id",),
                 park: MachinePark | None = None,
                 group_bin: int | None = None,
                 verify_threshold: int = GROUP_SINGLE_NODE):
        """``model`` — object with ``predict(X)``; ``encoder`` — CO-VV
        encoder sharing the model's registry.  ``park``/``group_bin``
        enable the verification layer (both or neither)."""

        if (park is None) != (group_bin is None):
            raise ValueError("park and group_bin must be given together")
        self.model = model
        self.encoder = encoder
        self.identity_attributes = tuple(identity_attributes)
        self.park = park
        self.group_bin = group_bin
        self.verify_threshold = verify_threshold
        self.stats = HybridStats()

    # -- rule layer -------------------------------------------------------
    def structural_group(self, task: CompactedTask) -> int | None:
        """Group decided by constraint structure alone, or None.

        An Equal constraint on an identity attribute pins the task to at
        most one machine — Group 0 with certainty.
        """

        for spec in task:
            if (spec.attribute in self.identity_attributes
                    and spec.has_equal and spec.equal is not None):
                return GROUP_SINGLE_NODE
        return None

    # -- model layer ------------------------------------------------------
    def _model_group(self, task: CompactedTask) -> int:
        row = self.encoder.encode_row_dense(task)
        width = getattr(self.model, "features_count", None)
        if width is not None and row.shape[0] < width:
            row = np.pad(row, (0, width - row.shape[0]))
        elif width is not None and row.shape[0] > width:
            row = row[:width]
        return int(self.model.predict(row.reshape(1, -1))[0])

    # -- verification layer -------------------------------------------------
    def _verify(self, task: CompactedTask, predicted: int) -> int:
        if self.park is None or predicted > self.verify_threshold:
            return predicted
        self.stats.verified += 1
        true_group = group_of(self.park.count_suitable(task), self.group_bin)
        if true_group != predicted:
            self.stats.corrections += 1
        return true_group

    # -- public API --------------------------------------------------------
    def predict_group(self, task: CompactedTask) -> int:
        """The hybrid decision for one task."""

        structural = self.structural_group(task)
        if structural is not None:
            self.stats.structural_hits += 1
            return structural
        self.stats.model_predictions += 1
        predicted = self._model_group(task)
        return self._verify(task, predicted)

    def predict_groups(self, tasks) -> np.ndarray:
        """Vector form of :meth:`predict_group`."""

        return np.fromiter((self.predict_group(t) for t in tasks),
                           dtype=np.int64)
