"""Compiled zero-copy inference: fused NumPy forward plans.

The serving hot path only ever runs the model *forward*, under
``no_grad`` — yet the eager path pays for the full autograd stack on
every microbatch: one :class:`~repro.nn.autograd.Tensor` per layer
output, a backward closure per op, Python dispatch per module, and a
dense ``toarray()`` materialization of the CO-VV block before the first
GEMM ever runs.  :class:`InferencePlan` removes all of it:

* :func:`compile_model` walks an :class:`~repro.nn.Sequential` **once**
  and exports each ``Linear`` to a contiguous float32 transposed weight
  array (``(in_features, out_features)``, the layout BLAS sgemm and
  scipy's CSR·dense kernel both consume without copying) plus its bias,
  and each activation module to an entry in a fused activation schedule.
* :meth:`InferencePlan.forward` replays that schedule with pure NumPy:
  dense GEMMs via ``np.dot(..., out=)`` into preallocated per-worker
  :class:`PlanScratch` buffers, biases and activations applied in
  place — zero ``Tensor`` allocations, no graph.
* The first layer accepts a **CSR** block directly (``X @ W1ᵀ``
  sparse·dense), so the serving path never densifies the CO-VV matrix;
  width alignment (the :meth:`~repro.serve.ModelSnapshot.align`
  pad/slice semantics) happens for free by slicing the weight rows —
  rows encoded against an older registry use only the first ``width``
  weight rows, rows from a newer registry drop the trailing columns the
  model never saw.

Plans are **immutable** (weight arrays are read-only copies, so later
training of the source model can never leak into serving) and
**versioned**: :meth:`~repro.serve.ModelHandle.publish` stamps
``model_version`` with the snapshot version it is published under, and
the frozen :class:`~repro.serve.ModelSnapshot` carries the
``(model, plan)`` pair atomically — a stale plan can never serve a
newer model.

Threading: a plan is safe to share across workers; a
:class:`PlanScratch` is **not** — each worker thread owns one and
rebuilds it (cheap, lazily-allocated buffers) when a hot-swap publishes
a new plan.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..errors import PlanCompileError
from ..nn.functional import softmax_inplace

__all__ = ["InferencePlan", "PlanScratch", "compile_model"]

#: Fused in-place activation kernels, keyed by schedule name.
_ACTIVATIONS = {
    "identity": None,
    "relu": lambda buf: np.maximum(buf, 0, out=buf),
    "tanh": lambda buf: np.tanh(buf, out=buf),
    "sigmoid": lambda buf: _sigmoid_inplace(buf),
}

_MODULE_ACTIVATIONS = {
    nn.ReLU: "relu",
    nn.Tanh: "tanh",
    nn.Sigmoid: "sigmoid",
    nn.Identity: "identity",
}


def _sigmoid_inplace(buf: np.ndarray) -> np.ndarray:
    np.negative(buf, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.reciprocal(buf, out=buf)
    return buf


class PlanScratch:
    """Per-worker scratch buffers for one plan's layer outputs.

    Buffers are allocated lazily per layer and grown geometrically when
    a larger batch arrives, so the steady state runs allocation-free.
    Not thread-safe: one instance per worker thread.
    """

    __slots__ = ("plan", "_buffers", "_wt0_padded")

    def __init__(self, plan: "InferencePlan", capacity: int = 64):
        self.plan = plan
        self._buffers: list[np.ndarray | None] = [None] * plan.n_layers
        self._wt0_padded: np.ndarray | None = None
        if capacity > 0:
            for i in range(plan.n_layers):
                self.buffer(i, capacity)

    def buffer(self, layer: int, n_rows: int) -> np.ndarray:
        """A C-contiguous float32 ``(n_rows, layer_width)`` view."""

        buf = self._buffers[layer]
        if buf is None or buf.shape[0] < n_rows:
            capacity = n_rows if buf is None else max(n_rows,
                                                      2 * buf.shape[0])
            buf = np.empty((capacity, self.plan.layer_widths[layer]),
                           dtype=np.float32)
            self._buffers[layer] = buf
        return buf[:n_rows]

    def first_weights(self, width: int) -> np.ndarray:
        """First-layer weight rows matched to an input of ``width``.

        Narrower input uses a prefix view (the missing columns are
        implicitly zero); wider input gets a zero-row-padded copy —
        appended registry columns the model never saw contribute
        nothing, which is exactly ``align()``'s slice semantics without
        per-batch CSR column slicing.  The padded copy is cached and
        only rebuilt when the registry grows again (monotonic), so the
        steady state is allocation-free.
        """

        wt = self.plan._weights_t[0]
        n_rows = wt.shape[0]
        if width == n_rows:
            return wt
        if width < n_rows:
            return wt[:width]
        padded = self._wt0_padded
        if padded is None or padded.shape[0] < width:
            padded = np.zeros((width, wt.shape[1]), dtype=np.float32)
            padded[:n_rows] = wt
            self._wt0_padded = padded
        return padded[:width]


class InferencePlan:
    """One immutable, versioned, fused forward pass of a network.

    Built by :func:`compile_model` /
    :meth:`~repro.core.GrowingModel.compile`; executed with
    :meth:`forward` / :meth:`predict` / :meth:`predict_proba` against a
    caller-owned :class:`PlanScratch`.
    """

    __slots__ = ("model_version", "features_count", "out_features",
                 "_weights_t", "_biases", "_activations")

    def __init__(self, layers: list[tuple[np.ndarray, np.ndarray | None]],
                 activations: list[str], model_version: int = 0):
        if not layers:
            raise PlanCompileError("cannot compile an empty network")
        if len(activations) != len(layers):
            raise ValueError("one activation entry per layer required")
        weights_t: list[np.ndarray] = []
        biases: list[np.ndarray | None] = []
        width = None
        for weight, bias in layers:
            weight = np.asarray(weight)
            if weight.ndim != 2:
                raise PlanCompileError("plan layers must be 2-D affine")
            out_f, in_f = weight.shape
            if width is not None and in_f != width:
                raise PlanCompileError(
                    f"layer width mismatch: expected {width} inputs, "
                    f"got {in_f}")
            width = out_f
            # Transposed contiguous copy: (in, out) is what both sgemm
            # (no transpose flag) and scipy's CSR·dense kernel consume
            # zero-copy.  Always an explicit copy — ascontiguousarray
            # would alias the live weights for 1-wide layers, letting
            # in-place optimizer steps mutate a "frozen" plan — and
            # read-only so the plan is deeply immutable.
            wt = np.array(weight.T, dtype=np.float32, order="C")
            wt.flags.writeable = False
            weights_t.append(wt)
            if bias is None:
                biases.append(None)
            else:
                b = np.array(bias, dtype=np.float32)
                b.flags.writeable = False
                biases.append(b)
        for name in activations:
            if name not in _ACTIVATIONS:
                raise PlanCompileError(f"unknown activation {name!r}")
        self.model_version = int(model_version)
        self.features_count = int(weights_t[0].shape[0])
        self.out_features = int(weights_t[-1].shape[1])
        self._weights_t = tuple(weights_t)
        self._biases = tuple(biases)
        self._activations = tuple(activations)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._weights_t)

    @property
    def layer_widths(self) -> tuple[int, ...]:
        """Output width of each fused layer."""

        return tuple(wt.shape[1] for wt in self._weights_t)

    @property
    def activations(self) -> tuple[str, ...]:
        return self._activations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = " -> ".join(str(w) for w in
                            (self.features_count, *self.layer_widths))
        return (f"InferencePlan(v{self.model_version}, {shape}, "
                f"activations={list(self._activations)})")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def scratch(self, capacity: int = 64) -> PlanScratch:
        """Fresh per-worker scratch sized for ``capacity``-row batches."""

        return PlanScratch(self, capacity)

    def forward(self, X, scratch: PlanScratch | None = None) -> np.ndarray:
        """Fused logits for a dense or CSR row block.

        ``X`` may be narrower than :attr:`features_count` (rows encoded
        before the registry grew — the missing columns are implicitly
        zero) or wider (rows from a newer registry — the trailing
        columns are ignored), exactly matching
        :meth:`~repro.serve.ModelSnapshot.align` followed by the eager
        forward.  Returns a view into ``scratch`` valid until the next
        call on that scratch.
        """

        if scratch is None:
            scratch = self.scratch(capacity=0)
        elif scratch.plan is not self:
            raise ValueError(
                f"scratch belongs to plan v{scratch.plan.model_version} "
                f"({scratch.plan.features_count} features), not plan "
                f"v{self.model_version} ({self.features_count} features)")
        if sp.issparse(X):
            hidden = self._first_layer_sparse(X.tocsr(), scratch)
        else:
            hidden = self._first_layer_dense(
                np.asarray(X, dtype=np.float32), scratch)
        for index in range(1, self.n_layers):
            out = scratch.buffer(index, hidden.shape[0])
            np.dot(hidden, self._weights_t[index], out=out)
            hidden = self._finish_layer(index, out)
        return hidden

    def predict(self, X, scratch: PlanScratch | None = None) -> np.ndarray:
        """Argmax class labels (the serving fast path's endpoint)."""

        return self.forward(X, scratch).argmax(axis=1)

    def predict_proba(self, X,
                      scratch: PlanScratch | None = None) -> np.ndarray:
        """Class probabilities via the shared in-place softmax pass.

        Computed in place on the scratch logits buffer — the same
        single-pass head ``MLPClassifier.predict_proba`` uses.
        """

        return softmax_inplace(self.forward(X, scratch))

    # ------------------------------------------------------------------
    # layer kernels
    # ------------------------------------------------------------------
    def _finish_layer(self, index: int, buf: np.ndarray) -> np.ndarray:
        bias = self._biases[index]
        if bias is not None:
            buf += bias
        kernel = _ACTIVATIONS[self._activations[index]]
        if kernel is not None:
            kernel(buf)
        return buf

    def _first_layer_dense(self, X: np.ndarray,
                           scratch: PlanScratch) -> np.ndarray:
        wt = self._weights_t[0]
        width = X.shape[1]
        out = scratch.buffer(0, X.shape[0])
        if width == self.features_count:
            np.dot(X, wt, out=out)
        elif width < self.features_count:
            # Implicit zero-padding: absent columns contribute nothing,
            # so only the first `width` weight rows participate.
            np.dot(X, wt[:width], out=out)
        else:
            np.dot(X[:, :self.features_count], wt, out=out)
        return self._finish_layer(0, out)

    def _first_layer_sparse(self, X: sp.csr_matrix,
                            scratch: PlanScratch) -> np.ndarray:
        # scipy's CSR·dense kernel owns its (n, hidden) output — tiny
        # next to the dense (n, features) block toarray() would build —
        # so bias/activation fuse into it rather than a scratch copy.
        out = np.asarray(X @ scratch.first_weights(X.shape[1]),
                         dtype=np.float32)
        return self._finish_layer(0, out)


def compile_model(model, model_version: int = 0) -> InferencePlan:
    """Export a network to an :class:`InferencePlan`.

    Accepts an :class:`~repro.nn.Sequential` (possibly nested) of
    ``Linear`` layers and elementwise activation modules (``ReLU`` /
    ``Tanh`` / ``Sigmoid`` / ``Identity``; ``Dropout`` is an inference
    no-op).  Anything else raises
    :class:`~repro.errors.PlanCompileError` — the caller then keeps the
    eager path.
    """

    layers: list[tuple[np.ndarray, np.ndarray | None]] = []
    activations: list[str] = []
    _flatten(model, layers, activations)
    if not layers:
        raise PlanCompileError(
            f"{type(model).__name__} contains no Linear layer to compile")
    return InferencePlan(layers, activations, model_version=model_version)


def _flatten(module, layers: list, activations: list) -> None:
    if isinstance(module, nn.Linear):
        bias = None if module.bias is None else module.bias.data
        layers.append((module.weight.data, bias))
        activations.append("identity")
        return
    for module_type, name in _MODULE_ACTIVATIONS.items():
        if type(module) is module_type:
            if name != "identity":
                if not layers:
                    raise PlanCompileError(
                        f"activation {name!r} before any Linear layer "
                        f"cannot be fused")
                if activations[-1] != "identity":
                    raise PlanCompileError(
                        f"stacked activations ({activations[-1]!r} then "
                        f"{name!r}) cannot be fused")
                activations[-1] = name
            return
    if isinstance(module, nn.Dropout):
        return  # identity at inference time
    if isinstance(module, nn.Sequential):
        for child in module:
            _flatten(child, layers, activations)
        return
    raise PlanCompileError(
        f"cannot fuse {type(module).__name__}: no compiled equivalent "
        f"(serve it with compile=False)")
