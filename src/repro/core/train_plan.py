"""Compiled training fast path: fused NumPy backprop for retraining.

:class:`~repro.core.InferencePlan` (PR 4) took autograd off the serving
path; this module does the same for the *other* half of the continuous
learning loop.  The eager Listing-3 loop pays, per mini-batch, one
:class:`~repro.nn.autograd.Tensor` node plus a backward closure per op,
Python dispatch per module, fresh gradient allocations, and a second
throwaway graph when an L2 penalty is in play — all to train a two-layer
MLP whose arithmetic is a handful of GEMMs.  For a model that must
retrain *continuously*, that overhead is the retrain→publish staleness
window.

:class:`TrainPlan` removes it:

* :func:`compile_training` walks an MLP ``Sequential`` (``Linear`` +
  elementwise activations, the same family :func:`compile_model`
  accepts) **once** and exports each layer to contiguous float32
  transposed weight/bias buffers plus matching gradient and Adam
  first/second-moment buffers.  The plan *owns* the training copies;
  :meth:`TrainPlan.finish` writes them back into the source modules, so
  ``GrowingModel.compile()``-for-serving is untouched.
* :meth:`TrainPlan.train_batch` / :meth:`TrainPlan.train_epoch` replay
  a fused forward-backward-update schedule in pure NumPy:
  ``np.dot(..., out=)`` GEMMs into geometrically-grown scratch buffers,
  in-place bias/activation, the softmax–cross-entropy gradient formed
  in place on the logits buffer (class-weighted, torch
  ``reduction='mean'`` semantics), activation derivatives computed
  destructively on the cached activations, and an in-place Adam update
  with decoupled L2 folded in — zero ``Tensor`` objects, zero graph
  allocation per batch.
* The first layer consumes the CO-VV block as **CSR in both
  directions**: ``X @ W1ᵀ`` sparse·dense on the forward pass and
  ``Xᵀ · delta`` sparse·dense for the weight gradient (the batch's CSR
  arrays double as the CSC form of its transpose), so retraining never
  materializes the dense design matrix.  The kernels run on the raw
  ``indptr/indices/data`` triple via scipy's C ``csr_matvecs`` /
  ``csc_matvecs`` — no per-batch matrix wrappers, slicing machinery, or
  format re-validation — and :meth:`train_epoch` gathers mini-batch
  rows from the epoch permutation with plain array arithmetic.  Rows
  narrower than the model use the same weight-row-prefix trick as the
  inference plan (missing columns are implicitly zero, their gradient
  rows exactly zero).
* Listing 3's dynamic gradient modification maps onto the fused buffers
  directly: ``input_gradient_scale`` multiplies the first layer's
  weight-gradient *rows* in place (the transposed layout makes the
  damped mask a row operation), and ``train_first_layer_only`` skips
  both the gradient GEMMs and the Adam update for frozen layers — the
  fused equivalent of the per-batch ``requires_grad`` dance, minus the
  wasted work.

Adam state survives :meth:`finish`/re-export via
:meth:`optimizer_state` / :meth:`load_optimizer_state`; first-layer
moment rows are zero-padded on input growth (prefix semantics again), so
a resumed plan continues exactly where an uninterrupted one would be.

A plan is single-threaded — one trainer owns it, which is exactly the
:class:`~repro.serve.BackgroundTrainer` topology.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..errors import PlanCompileError
from .inference_plan import _ACTIVATIONS, _MODULE_ACTIVATIONS

try:  # pragma: no cover - import guard exercised implicitly
    from scipy.sparse import _sparsetools

    _csr_matvecs = _sparsetools.csr_matvecs
    _csc_matvecs = _sparsetools.csc_matvecs
except (ImportError, AttributeError):  # pragma: no cover - old scipy
    _csr_matvecs = _csc_matvecs = None

__all__ = ["TrainPlan", "compile_training", "pack_optimizer_state",
           "unpack_optimizer_state"]


def pack_optimizer_state(state: dict) -> dict:
    """Flatten :meth:`TrainPlan.optimizer_state` into a name → ndarray map.

    The nested per-layer lists (with ``None`` bias slots for bias-less
    layers) become flat dotted keys (``m_w.0``, ``v_b.1``, …; ``None``
    entries are simply absent), which is exactly what the
    :mod:`repro.nn.serialize` codec persists — the durable-checkpoint
    representation of warm-start Adam state.
    """

    packed: dict[str, np.ndarray] = {
        "steps": np.asarray(state["steps"], dtype=np.int64)}
    for slot in ("m_w", "v_w", "m_b", "v_b"):
        for index, array in enumerate(state[slot]):
            if array is not None:
                packed[f"{slot}.{index}"] = np.asarray(array)
    return packed


def unpack_optimizer_state(packed) -> dict:
    """Inverse of :func:`pack_optimizer_state`.

    Returns the nested dict shape :meth:`TrainPlan.load_optimizer_state`
    consumes; missing ``m_b.i``/``v_b.i`` entries restore as ``None``
    (a bias-less layer).
    """

    steps = [int(s) for s in np.asarray(packed["steps"]).ravel()]
    n_layers = len(steps)
    state: dict = {"steps": steps}
    for slot in ("m_w", "v_w", "m_b", "v_b"):
        state[slot] = [packed.get(f"{slot}.{index}")
                       for index in range(n_layers)]
    return state


def _flatten_trainable(module, linears: list, activations: list) -> None:
    """Collect ``(Linear module, activation name)`` pairs depth-first.

    Unlike the inference flattener this keeps *module references* (the
    plan must write trained weights back) and rejects ``Dropout`` —
    a stochastic training graph cannot be replayed by a deterministic
    fused schedule.
    """

    if isinstance(module, nn.Linear):
        linears.append(module)
        activations.append("identity")
        return
    for module_type, name in _MODULE_ACTIVATIONS.items():
        if type(module) is module_type:
            if name != "identity":
                if not linears:
                    raise PlanCompileError(
                        f"activation {name!r} before any Linear layer "
                        f"cannot be fused")
                if activations[-1] != "identity":
                    raise PlanCompileError(
                        f"stacked activations ({activations[-1]!r} then "
                        f"{name!r}) cannot be fused")
                activations[-1] = name
            return
    if isinstance(module, nn.Sequential):
        for child in module:
            _flatten_trainable(child, linears, activations)
        return
    raise PlanCompileError(
        f"cannot fuse {type(module).__name__} for training: no compiled "
        f"equivalent (train it with fused=False)")


class TrainPlan:
    """One fused, resumable training schedule over an exported MLP.

    Built by :func:`compile_training`.  The plan owns float32 working
    copies of the network (transposed ``(in, out)`` weights — the layout
    both BLAS and scipy's CSR·dense kernel consume without copying);
    :meth:`train_batch` / :meth:`train_epoch` advance them,
    :meth:`predict` / :meth:`forward` read them (epoch-end evaluation
    without a write-back), and :meth:`finish` copies them back into the
    source modules.
    """

    def __init__(self, model, lr: float,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8,
                 decoupled_weight_decay: float = 0.0,
                 class_weights: np.ndarray | None = None,
                 input_gradient_scale: np.ndarray | None = None,
                 train_first_layer_only: bool = False):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        linears: list[nn.Linear] = []
        activations: list[str] = []
        _flatten_trainable(model, linears, activations)
        if not linears:
            raise PlanCompileError(
                f"{type(model).__name__} contains no Linear layer to "
                f"compile for training")

        self.lr = float(lr)
        self.betas = (float(betas[0]), float(betas[1]))
        self.eps = float(eps)
        self.decoupled_weight_decay = float(decoupled_weight_decay)
        self._modules = tuple(linears)
        self._activations = tuple(activations)

        # One flat float32 vector backs every parameter, gradient, and
        # Adam slot; per-layer arrays are contiguous *views* into it.
        # The GEMMs write straight into the views, and one optimizer
        # step is a single pass over one array instead of 4·n_layers
        # small-ufunc dispatches.  Layout is layer-major
        # ``[w0, b0, w1, b1, ...]`` so "train the first layer only"
        # (growth mode) degenerates to a flat prefix.
        spans: list[tuple[int, int, tuple[int, int], bool]] = []
        offset = 0
        width = None
        for linear in linears:
            out_f, in_f = linear.weight.data.shape
            if width is not None and in_f != width:
                raise PlanCompileError(
                    f"layer width mismatch: expected {width} inputs, "
                    f"got {in_f}")
            width = out_f
            spans.append((offset, offset + in_f * out_f, (in_f, out_f),
                          True))
            offset += in_f * out_f
            if linear.bias is not None:
                spans.append((offset, offset + out_f, (out_f,), False))
                offset += out_f

        self._flat_total = offset
        # End of the first layer's (weight [+ bias]) segment: the flat
        # prefix growth-mode training updates.
        first_spans = 2 if len(spans) > 1 and not spans[1][3] else 1
        self._flat_first = spans[first_spans - 1][1]
        self._params_flat = np.empty(offset, dtype=np.float32)
        self._grads_flat = np.zeros(offset, dtype=np.float32)
        self._m_flat = np.zeros(offset, dtype=np.float32)
        self._v_flat = np.zeros(offset, dtype=np.float32)
        self._tmp_flat = np.empty(offset, dtype=np.float32)
        self._decay_flat = np.ones(offset, dtype=np.float32)

        self._weights_t: list[np.ndarray] = []
        self._biases: list[np.ndarray | None] = []
        self._grads_t: list[np.ndarray] = []
        self._grads_b: list[np.ndarray | None] = []
        self._m_w: list[np.ndarray] = []
        self._v_w: list[np.ndarray] = []
        self._m_b: list[np.ndarray | None] = []
        self._v_b: list[np.ndarray | None] = []
        span_iter = iter(spans)
        for linear in linears:
            lo, hi, shape, _ = next(span_iter)
            wt = self._params_flat[lo:hi].reshape(shape)
            np.copyto(wt, linear.weight.data.T)
            self._weights_t.append(wt)
            self._grads_t.append(self._grads_flat[lo:hi].reshape(shape))
            self._m_w.append(self._m_flat[lo:hi].reshape(shape))
            self._v_w.append(self._v_flat[lo:hi].reshape(shape))
            if decoupled_weight_decay:
                self._decay_flat[lo:hi] = (
                    1.0 - float(lr) * float(decoupled_weight_decay))
            if linear.bias is None:
                self._biases.append(None)
                self._grads_b.append(None)
                self._m_b.append(None)
                self._v_b.append(None)
            else:
                lo, hi, shape, _ = next(span_iter)
                bias = self._params_flat[lo:hi]
                np.copyto(bias, linear.bias.data)
                self._biases.append(bias)
                self._grads_b.append(self._grads_flat[lo:hi])
                self._m_b.append(self._m_flat[lo:hi])
                self._v_b.append(self._v_flat[lo:hi])

        self._steps = [0] * self.n_layers

        # Per-layer activation buffers (forward cache) and delta
        # buffers, grown geometrically like PlanScratch.
        self._h: list[np.ndarray | None] = [None] * self.n_layers
        self._delta: list[np.ndarray | None] = [None] * self.n_layers
        self._rows = np.arange(0)

        self.class_weights = (None if class_weights is None
                              else np.asarray(class_weights,
                                              dtype=np.float32).ravel())
        if input_gradient_scale is not None:
            input_gradient_scale = np.asarray(
                input_gradient_scale, dtype=np.float32).reshape(-1, 1)
            if input_gradient_scale.shape[0] != self.features_count:
                raise ValueError(
                    f"input_gradient_scale must have one entry per input "
                    f"feature ({self.features_count}), got "
                    f"{input_gradient_scale.shape[0]}")
        self.input_gradient_scale = input_gradient_scale
        self.train_first_layer_only = bool(train_first_layer_only)
        self.batches_trained = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._weights_t)

    @property
    def features_count(self) -> int:
        return int(self._weights_t[0].shape[0])

    @property
    def out_features(self) -> int:
        return int(self._weights_t[-1].shape[1])

    def _trainable(self, layer: int) -> bool:
        return layer == 0 or not self.train_first_layer_only

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = " -> ".join(
            str(w) for w in (self.features_count,
                             *(wt.shape[1] for wt in self._weights_t)))
        return (f"TrainPlan({shape}, lr={self.lr}, "
                f"batches_trained={self.batches_trained})")

    # ------------------------------------------------------------------
    # buffers
    # ------------------------------------------------------------------
    def _buffer(self, store: list, layer: int, n_rows: int) -> np.ndarray:
        buf = store[layer]
        if buf is None or buf.shape[0] < n_rows:
            capacity = n_rows if buf is None else max(n_rows,
                                                      2 * buf.shape[0])
            buf = np.empty((capacity, self._weights_t[layer].shape[1]),
                           dtype=np.float32)
            store[layer] = buf
        return buf[:n_rows]

    def _row_index(self, n: int) -> np.ndarray:
        if self._rows.shape[0] < n:
            self._rows = np.arange(max(n, 2 * self._rows.shape[0]))
        return self._rows[:n]

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def _check_width(self, width: int) -> None:
        if width > self.features_count:
            raise ValueError(
                f"training rows have {width} features but the plan was "
                f"compiled for {self.features_count}; re-export after "
                f"extending the model")

    def _forward_first_csr(self, indptr: np.ndarray, indices: np.ndarray,
                           data: np.ndarray, n: int) -> np.ndarray:
        """First layer straight off raw CSR arrays (no matrix wrapper)."""

        hidden = self._buffer(self._h, 0, n)
        out_f = hidden.shape[1]
        if _csr_matvecs is not None:
            hidden[:] = 0.0
            _csr_matvecs(n, self.features_count, out_f, indptr, indices,
                         data, self._weights_t[0].ravel(), hidden.ravel())
        else:  # pragma: no cover - old scipy fallback
            X = sp.csr_matrix((data, indices, indptr),
                              shape=(n, self.features_count))
            np.copyto(hidden, X @ self._weights_t[0])
        return self._finish_layer(0, hidden)

    def _forward_tail(self, hidden: np.ndarray) -> np.ndarray:
        for index in range(1, self.n_layers):
            out = self._buffer(self._h, index, hidden.shape[0])
            np.dot(hidden, self._weights_t[index], out=out)
            hidden = self._finish_layer(index, out)
        return hidden

    def forward(self, X) -> np.ndarray:
        """Fused logits; caches per-layer activations for backward.

        ``X`` may be dense or CSR, and may be narrower than
        :attr:`features_count` (missing columns are implicitly zero via
        the weight-row prefix).  The returned view is valid until the
        next call.
        """

        if sp.issparse(X):
            X = X.tocsr()
            self._check_width(X.shape[1])
            hidden = self._forward_first_csr(X.indptr, X.indices,
                                             X.data.astype(np.float32,
                                                           copy=False),
                                             X.shape[0])
        else:
            X = np.asarray(X, dtype=np.float32)
            self._check_width(X.shape[1])
            hidden = self._buffer(self._h, 0, X.shape[0])
            np.dot(X, self._weights_t[0][:X.shape[1]], out=hidden)
            hidden = self._finish_layer(0, hidden)
        return self._forward_tail(hidden)

    def _finish_layer(self, index: int, buf: np.ndarray) -> np.ndarray:
        bias = self._biases[index]
        if bias is not None:
            buf += bias
        kernel = _ACTIVATIONS[self._activations[index]]
        if kernel is not None:
            kernel(buf)
        return buf

    def predict(self, X) -> np.ndarray:
        """Argmax labels from the plan's *current* (training) weights."""

        return self.forward(X).argmax(axis=1)

    # ------------------------------------------------------------------
    # fused loss + backward
    # ------------------------------------------------------------------
    def _loss_and_output_delta(self, logits: np.ndarray,
                               y: np.ndarray) -> tuple[float, np.ndarray]:
        """Softmax CE in place on the logits buffer → (loss, delta)."""

        n, n_classes = logits.shape
        probs = nn.functional.softmax_inplace(logits)
        # Flat positions of each row's target logit: one gather and one
        # scatter on the raveled buffer instead of two 2-D fancy-index
        # round trips.
        positions = self._row_index(n) * n_classes
        positions = positions + y
        flat = probs.reshape(-1)
        picked = flat[positions]
        if self.class_weights is not None:
            w = self.class_weights[y]
            w_sum = float(w.sum())
            loss = float(-(w * np.log(np.maximum(picked, 1e-30))).sum()
                         / w_sum)
            scale = w / w_sum
        else:
            loss = float(-np.log(np.maximum(picked, 1e-30)).mean())
            scale = None
        picked -= 1.0
        flat[positions] = picked
        delta = probs
        if scale is not None:
            delta *= scale[:, np.newaxis]
        else:
            delta *= 1.0 / n
        return loss, delta

    def _backward_tail(self, delta: np.ndarray) -> np.ndarray:
        """Backprop the dense tail; returns the first-layer delta."""

        n = delta.shape[0]
        for index in range(self.n_layers - 1, 0, -1):
            h_prev = self._h[index - 1][:n]
            if self._trainable(index):
                np.dot(h_prev.T, delta, out=self._grads_t[index])
                if self._grads_b[index] is not None:
                    delta.sum(axis=0, out=self._grads_b[index])
            prev_delta = self._buffer(self._delta, index - 1, n)
            np.dot(delta, self._weights_t[index].T, out=prev_delta)
            self._apply_activation_derivative(index - 1, h_prev,
                                              prev_delta)
            delta = prev_delta
        return delta

    def _finish_first_grad(self, delta: np.ndarray) -> None:
        if self._grads_b[0] is not None:
            delta.sum(axis=0, out=self._grads_b[0])
        if self.input_gradient_scale is not None:
            # Listing 3's damped mask: transposed layout makes the
            # per-input-column damping a row scale, applied in place.
            self._grads_t[0] *= self.input_gradient_scale

    def forward_backward(self, X, y) -> float:
        """One fused forward + backward; fills the gradient buffers.

        Returns the (class-weighted mean) cross-entropy loss.  Split
        from :meth:`train_batch` so the equivalence suite can compare
        raw gradients against autograd without stepping.
        """

        y = np.asarray(y, dtype=np.int64).ravel()
        if sp.issparse(X):
            X = X.tocsr()
            data = X.data.astype(np.float32, copy=False)
            return self._forward_backward_csr(X.indptr, X.indices, data,
                                              X.shape[0], X.shape[1], y)
        X = np.asarray(X, dtype=np.float32)
        self._check_width(X.shape[1])
        logits = self.forward(X)
        loss, delta = self._loss_and_output_delta(logits, y)
        delta = self._backward_tail(delta)
        gw0 = self._grads_t[0]
        width = X.shape[1]
        np.dot(X.T, delta, out=gw0[:width])
        if width < self.features_count:
            gw0[width:] = 0.0
        self._finish_first_grad(delta)
        return loss

    def _forward_backward_csr(self, indptr: np.ndarray,
                              indices: np.ndarray, data: np.ndarray,
                              n: int, width: int,
                              y: np.ndarray) -> float:
        """Fused step on raw CSR arrays — the design matrix never
        densifies, in either direction."""

        self._check_width(width)
        logits = self._forward_tail(
            self._forward_first_csr(indptr, indices, data, n))
        loss, delta = self._loss_and_output_delta(logits, y)
        delta = self._backward_tail(delta)
        gw0 = self._grads_t[0]
        gw0[:] = 0.0
        if _csc_matvecs is not None:
            # The batch's CSR arrays *are* the CSC form of Xᵀ, so the
            # sparse gradient Xᵀ·delta needs no transpose object.
            _csc_matvecs(self.features_count, n, delta.shape[1], indptr,
                         indices, data, delta.ravel(), gw0.ravel())
        else:  # pragma: no cover - old scipy fallback
            X = sp.csr_matrix((data, indices, indptr), shape=(n, width))
            gw0[:width] += X.T @ delta
        self._finish_first_grad(delta)
        return loss

    def _apply_activation_derivative(self, index: int, h: np.ndarray,
                                     delta: np.ndarray) -> None:
        """Multiply ``delta`` by act'(pre-activation), destroying ``h``.

        Every supported activation's derivative is expressible from its
        *output*, so the cached post-activation buffer doubles as the
        derivative scratch — it is dead after this layer's backward.
        """

        name = self._activations[index]
        if name == "identity":
            return
        if name == "relu":
            np.greater(h, 0.0, out=h)
            delta *= h
        elif name == "tanh":
            np.multiply(h, h, out=h)
            np.subtract(1.0, h, out=h)
            delta *= h
        else:  # sigmoid: h * (1 - h)
            delta *= h
            np.subtract(1.0, h, out=h)
            delta *= h

    # ------------------------------------------------------------------
    # fused Adam
    # ------------------------------------------------------------------
    def step(self) -> None:
        """In-place Adam over the gradient buffers (trainable layers).

        Because every trainable array lives in one flat vector, the
        whole update — moments, bias correction, parameter delta, and
        the decoupled L2 shrink (``p *= 1 - lr·wd`` on weights only,
        biases undecayed per sklearn convention; the exact formulation
        :class:`~repro.nn.Adam` uses for ``decoupled_weight_decay``) —
        is a single fused pass regardless of layer count.
        """

        for index in range(self.n_layers):
            if self._trainable(index):
                self._steps[index] += 1
        t = self._steps[0]
        if any(self._steps[i] != t for i in range(self.n_layers)
               if self._trainable(i)):
            self._step_layerwise()
            return
        bc1 = 1.0 - self.betas[0] ** t
        bc2 = 1.0 - self.betas[1] ** t
        limit = (self._flat_first if self.train_first_layer_only
                 else self._flat_total)
        self._adam_update(self._params_flat[:limit],
                          self._grads_flat[:limit], self._m_flat[:limit],
                          self._v_flat[:limit], self._tmp_flat[:limit],
                          bc1, bc2)
        if self.decoupled_weight_decay:
            self._params_flat[:limit] *= self._decay_flat[:limit]

    def _step_layerwise(self) -> None:
        """Per-layer Adam for desynchronized step counts (a resumed
        optimizer state whose layers had stepped unevenly)."""

        for index in range(self.n_layers):
            if not self._trainable(index):
                continue
            t = self._steps[index]
            bc1 = 1.0 - self.betas[0] ** t
            bc2 = 1.0 - self.betas[1] ** t
            self._adam_update(self._weights_t[index], self._grads_t[index],
                              self._m_w[index], self._v_w[index],
                              np.empty_like(self._weights_t[index]),
                              bc1, bc2)
            if self.decoupled_weight_decay:
                self._weights_t[index] *= (
                    1.0 - self.lr * self.decoupled_weight_decay)
            if self._biases[index] is not None:
                self._adam_update(self._biases[index], self._grads_b[index],
                                  self._m_b[index], self._v_b[index],
                                  np.empty_like(self._biases[index]),
                                  bc1, bc2)

    def _adam_update(self, p: np.ndarray, g: np.ndarray, m: np.ndarray,
                     v: np.ndarray, tmp: np.ndarray,
                     bc1: float, bc2: float) -> None:
        beta1, beta2 = self.betas
        m *= beta1
        np.multiply(g, 1.0 - beta1, out=tmp)
        m += tmp
        np.multiply(g, g, out=tmp)
        tmp *= 1.0 - beta2
        v *= beta2
        v += tmp
        # p -= lr * (m/bc1) / (sqrt(v/bc2) + eps), all in tmp.
        np.divide(v, bc2, out=tmp)
        np.sqrt(tmp, out=tmp)
        tmp += self.eps
        np.divide(m, tmp, out=tmp)
        tmp *= self.lr / bc1
        p -= tmp

    def train_batch(self, X, y) -> float:
        """One fused forward-backward-update; returns the batch loss."""

        loss = self.forward_backward(X, y)
        self.step()
        self.batches_trained += 1
        return loss

    # ------------------------------------------------------------------
    # epoch driver
    # ------------------------------------------------------------------
    def train_epoch(self, X, y, order: np.ndarray,
                    batch_size: int) -> float:
        """One epoch over ``X``/``y`` in ``order``; returns Σ loss·rows.

        The fast path the continuous-retraining loop runs: mini-batch
        rows are gathered from the (pre-shuffled) permutation with raw
        array arithmetic — for CSR, straight from the
        ``indptr/indices/data`` triple, so an epoch performs **zero**
        scipy matrix constructions.  Batch composition is identical to
        slicing ``X[order[start:start+batch_size]]`` per batch, i.e. to
        the eager ``DataLoader``.
        """

        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        y = np.asarray(y, dtype=np.int64).ravel()
        n = order.shape[0]
        total = 0.0
        y_perm = y[order]
        if sp.issparse(X):
            X = X.tocsr()
            self._check_width(X.shape[1])
            width = X.shape[1]
            # Permute the whole epoch once; every mini-batch is then a
            # contiguous zero-copy slice of the permuted raw arrays
            # (same total gather work, none of the per-batch call and
            # bookkeeping overhead).
            p_ptr, p_idx, p_dat = _gather_csr_rows(
                X.indptr, X.indices,
                X.data.astype(np.float32, copy=False), order)
            for start in range(0, n, batch_size):
                end = min(start + batch_size, n)
                lo, hi = p_ptr[start], p_ptr[end]
                loss = self._forward_backward_csr(
                    p_ptr[start:end + 1] - lo, p_idx[lo:hi],
                    p_dat[lo:hi], end - start, width,
                    y_perm[start:end])
                self.step()
                self.batches_trained += 1
                total += loss * (end - start)
        else:
            X_perm = np.asarray(X, dtype=np.float32)[order]
            for start in range(0, n, batch_size):
                end = min(start + batch_size, n)
                loss = self.forward_backward(X_perm[start:end],
                                             y_perm[start:end])
                self.step()
                self.batches_trained += 1
                total += loss * (end - start)
        return total

    # ------------------------------------------------------------------
    # write-back + optimizer-state resume
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Copy the trained buffers back into the source modules.

        The modules' parameter arrays are updated in place (grads
        cleared), so a subsequent ``GrowingModel.compile()`` — or plain
        eager prediction — serves exactly what the plan trained.
        """

        for linear, wt, bias in zip(self._modules, self._weights_t,
                                    self._biases):
            np.copyto(linear.weight.data, wt.T)
            linear.weight.grad = None
            if bias is not None:
                np.copyto(linear.bias.data, bias)
                linear.bias.grad = None

    def optimizer_state(self) -> dict:
        """Serializable Adam slots (per layer, copies)."""

        def _copy(arrs):
            return [None if a is None else a.copy() for a in arrs]

        return {"steps": list(self._steps),
                "m_w": _copy(self._m_w), "v_w": _copy(self._v_w),
                "m_b": _copy(self._m_b), "v_b": _copy(self._v_b)}

    def load_optimizer_state(self, state: dict) -> None:
        """Resume Adam moments from :meth:`optimizer_state` output.

        First-layer weight moments may come from a *narrower* export
        (the model's input layer grew in between): the rows carry over
        as a prefix and the new rows stay zero — exactly the Listing-2
        semantics the weights themselves follow.
        """

        steps = list(state["steps"])
        if len(steps) != self.n_layers:
            raise ValueError("optimizer state has a different layer count")
        for index in range(self.n_layers):
            for mine, theirs in ((self._m_w, state["m_w"]),
                                 (self._v_w, state["v_w"])):
                src = np.asarray(theirs[index], dtype=np.float32)
                dst = mine[index]
                if index == 0 and src.shape[0] < dst.shape[0]:
                    if src.shape[1] != dst.shape[1]:
                        raise ValueError(
                            "optimizer state hidden width mismatch")
                    dst[:src.shape[0]] = src
                    dst[src.shape[0]:] = 0.0
                elif src.shape == dst.shape:
                    np.copyto(dst, src)
                else:
                    raise ValueError(
                        f"optimizer state shape mismatch at layer "
                        f"{index}: {src.shape} vs {dst.shape}")
            for mine, theirs in ((self._m_b, state["m_b"]),
                                 (self._v_b, state["v_b"])):
                if mine[index] is None:
                    continue
                np.copyto(mine[index], np.asarray(theirs[index],
                                                  dtype=np.float32))
        self._steps = steps


def _gather_csr_rows(indptr: np.ndarray, indices: np.ndarray,
                     data: np.ndarray, idx: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-gather ``X[idx]`` as raw CSR arrays, no matrix objects.

    Equivalent to ``csr_matrix.__getitem__`` with a row list, minus the
    wrapper construction, format checks, and index validation scipy
    performs per call — this runs once per mini-batch on the training
    hot path.
    """

    starts = indptr[idx]
    lengths = indptr[idx + 1] - starts
    b_indptr = np.zeros(idx.shape[0] + 1, dtype=indptr.dtype)
    np.cumsum(lengths, out=b_indptr[1:])
    # Positions of every kept nonzero in the parent arrays: each row's
    # run [starts[i], starts[i]+lengths[i]) laid out contiguously.
    positions = np.repeat(starts - b_indptr[:-1], lengths)
    positions += np.arange(b_indptr[-1], dtype=positions.dtype)
    return b_indptr, indices[positions], data[positions]


def compile_training(model, lr: float,
                     betas: tuple[float, float] = (0.9, 0.999),
                     eps: float = 1e-8,
                     decoupled_weight_decay: float = 0.0,
                     class_weights: np.ndarray | None = None,
                     input_gradient_scale: np.ndarray | None = None,
                     train_first_layer_only: bool = False) -> TrainPlan:
    """Export a network to a :class:`TrainPlan`.

    Accepts the same MLP family as :func:`compile_model` minus
    ``Dropout`` (stochastic training cannot be fused deterministically);
    anything else raises :class:`~repro.errors.PlanCompileError` and the
    caller keeps the eager autograd path.
    """

    return TrainPlan(model, lr=lr, betas=betas, eps=eps,
                     decoupled_weight_decay=decoupled_weight_decay,
                     class_weights=class_weights,
                     input_gradient_scale=input_gradient_scale,
                     train_first_layer_only=train_first_layer_only)
