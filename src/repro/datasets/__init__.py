"""``repro.datasets`` — CO-EL / CO-VV dataset construction.

Feature registry with growth journal, both paper encodings, 26-group
labelling, the training-ready :class:`DatasetData` container, and the
Figure 1 trace→dataset pipeline.
"""

from .co_el import COELEncoder, COELRegistry
from .co_vv import COVVEncoder, encode_spec_row, spec_value_vector
from .dataset import DatasetData
from .grouping import (GROUP_SINGLE_NODE, N_GROUPS, group_bounds,
                       group_distribution, group_of, groups_of)
from .pipeline import PipelineResult, StepDataset, build_step_datasets
from .registry import NONE_VALUE, Feature, FeatureRegistry, GrowthRecord
from .retirement import (FeatureUsageTracker, RetirementPlan,
                         retirement_plan)

__all__ = [
    "Feature", "FeatureRegistry", "GrowthRecord", "NONE_VALUE",
    "COVVEncoder", "spec_value_vector", "encode_spec_row",
    "COELRegistry", "COELEncoder",
    "N_GROUPS", "GROUP_SINGLE_NODE", "group_of", "groups_of", "group_bounds",
    "group_distribution",
    "DatasetData",
    "StepDataset", "PipelineResult", "build_step_datasets",
    "FeatureUsageTracker", "RetirementPlan", "retirement_plan",
]
