"""CO-EL encoding: Constraint Operators as Encoded Labels (paper §III.C).

"The original method ... in which the COs are first collapsed (Table V)
and used as labels.  The result is then One-Hot encoded into a sparse
dataset, where a given cell has a value of one if the corresponding CO is
defined for a task."

Each *distinct collapsed constraint* (an :class:`AttributeSpec`) becomes a
label with its own column; a task's row has 1 in the columns of the
collapsed constraints it carries.  The paper's stated disadvantage is
reproduced deliberately: when a new collapsed CO appears, the label space
changes and models built on the old encoding must be fully retrained —
unlike CO-VV, the new columns carry no relationship to existing ones, so
the growing model cannot generalize over them (paper §VI).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..constraints.compaction import AttributeSpec, CompactedTask

__all__ = ["COELRegistry", "COELEncoder"]


class COELRegistry:
    """Append-only map ``collapsed constraint → label column``."""

    def __init__(self) -> None:
        self._index: dict[AttributeSpec, int] = {}
        self._specs: list[AttributeSpec] = []

    def observe(self, spec: AttributeSpec) -> bool:
        if spec in self._index:
            return False
        self._index[spec] = len(self._specs)
        self._specs.append(spec)
        return True

    def observe_task(self, task: CompactedTask) -> int:
        return sum(self.observe(spec) for spec in task)

    def column(self, spec: AttributeSpec) -> int | None:
        return self._index.get(spec)

    @property
    def features_count(self) -> int:
        return len(self._specs)

    def labels(self) -> list[str]:
        return [spec.render() for spec in self._specs]

    def spec(self, column: int) -> AttributeSpec:
        return self._specs[column]


class COELEncoder:
    """One-hot encode tasks over the collapsed-constraint label space."""

    def __init__(self, registry: COELRegistry | None = None):
        self.registry = registry or COELRegistry()

    def observe(self, task: CompactedTask) -> int:
        return self.registry.observe_task(task)

    def encode_rows(self, tasks: list[CompactedTask]) -> sp.csr_matrix:
        """Sparse one-hot matrix: row i has 1 where task i defines that CO."""

        n_features = self.registry.features_count
        indptr = [0]
        indices: list[int] = []
        for task in tasks:
            cols = sorted(c for c in (self.registry.column(spec)
                                      for spec in task) if c is not None)
            indices.extend(cols)
            indptr.append(len(indices))
        data = np.ones(len(indices), dtype=np.float32)
        return sp.csr_matrix(
            (data, np.asarray(indices, dtype=np.int64),
             np.asarray(indptr, dtype=np.int64)),
            shape=(len(tasks), n_features))

    def encode_row_dense(self, task: CompactedTask) -> np.ndarray:
        row = np.zeros(self.registry.features_count, dtype=np.float32)
        for spec in task:
            col = self.registry.column(spec)
            if col is not None:
                row[col] = 1.0
        return row
