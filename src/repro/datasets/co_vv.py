"""CO-VV encoding: Constraint Operators as Value Vectors (paper §III.D).

For every registered feature column ``(attribute, value)`` — including the
per-attribute ``(none)`` column — a task's row holds **0 when the value is
acceptable and 1 when it is not** ("reversing the common notation since
the model focuses on detecting unacceptable nodes", Table VII).

Attributes a task does not constrain are entirely acceptable, so rows are
extremely sparse (the paper: ones are <0.01% of a full-scale dataset);
encoding therefore produces a CSR matrix, densified only at training time.

Because new values append at the end of the feature array, a dataset
encoded against an older registry state is a *prefix-slice* of the same
dataset encoded later — the invariant that makes zero-padded input-layer
extension knowledge-preserving.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..constraints.compaction import AttributeSpec, CompactedTask
from .registry import FeatureRegistry

__all__ = ["COVVEncoder", "encode_spec_row", "spec_value_vector"]


def spec_value_vector(spec: AttributeSpec, values: list[str | None]) -> np.ndarray:
    """The reversed-notation 0/1 vector of one spec over given value slots.

    ``values`` lists the attribute's column values in order (``None`` is the
    "(none)" slot).  This is the Table VII primitive.
    """

    return np.array([0 if spec.matches(v) else 1 for v in values],
                    dtype=np.int8)


def encode_spec_row(spec: AttributeSpec, registry: FeatureRegistry
                    ) -> tuple[list[int], list[int]]:
    """(column indices, 0/1 values) pairs for one spec's non-trivial cells.

    Only the constrained attribute's columns can be non-zero; acceptable
    cells are 0 so only rejections are emitted.
    """

    cols: list[int] = []
    vals: list[int] = []
    base_cols = registry.columns_of(spec.attribute)
    for col in base_cols:
        feature = registry.feature(col)
        if not spec.matches(feature.value):
            cols.append(col)
            vals.append(1)
    return cols, vals


class COVVEncoder:
    """Encode compacted tasks into the CO-VV sparse matrix.

    The encoder memoizes per-spec column patterns keyed by
    ``(spec, registry_size)`` — distinct constraint shapes in a cell number
    in the hundreds while tasks number in the hundreds of thousands, so
    the memo collapses encoding cost.
    """

    def __init__(self, registry: FeatureRegistry):
        self.registry = registry
        self._memo: dict[tuple[AttributeSpec, int], tuple[list[int], list[int]]] = {}

    def observe(self, task: CompactedTask) -> int:
        """Register a task's constraint vocabulary; returns #new features."""

        return self.registry.observe_task(task)

    def _spec_cells(self, spec: AttributeSpec) -> tuple[list[int], list[int]]:
        key = (spec, self.registry.features_count)
        cached = self._memo.get(key)
        if cached is None:
            cached = encode_spec_row(spec, self.registry)
            self._memo[key] = cached
            if len(self._memo) > 100_000:
                self._memo.clear()
        return cached

    def encode_rows(self, tasks: list[CompactedTask]) -> sp.csr_matrix:
        """CSR matrix with one reversed-notation row per task."""

        n_features = self.registry.features_count
        indptr = [0]
        indices: list[int] = []
        data: list[int] = []
        for task in tasks:
            row_cols: list[int] = []
            for spec in task:
                cols, _vals = self._spec_cells(spec)
                row_cols.extend(cols)
            row_cols.sort()
            indices.extend(row_cols)
            data.extend([1] * len(row_cols))
            indptr.append(len(indices))
        return sp.csr_matrix(
            (np.asarray(data, dtype=np.float32),
             np.asarray(indices, dtype=np.int64),
             np.asarray(indptr, dtype=np.int64)),
            shape=(len(tasks), n_features))

    def encode_row_dense(self, task: CompactedTask) -> np.ndarray:
        """Single dense row (mainly for tests and worked examples)."""

        row = np.zeros(self.registry.features_count, dtype=np.float32)
        for spec in task:
            cols, vals = self._spec_cells(spec)
            row[cols] = vals
        return row
