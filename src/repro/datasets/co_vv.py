"""CO-VV encoding: Constraint Operators as Value Vectors (paper §III.D).

For every registered feature column ``(attribute, value)`` — including the
per-attribute ``(none)`` column — a task's row holds **0 when the value is
acceptable and 1 when it is not** ("reversing the common notation since
the model focuses on detecting unacceptable nodes", Table VII).

Attributes a task does not constrain are entirely acceptable, so rows are
extremely sparse (the paper: ones are <0.01% of a full-scale dataset);
encoding therefore produces a CSR matrix, densified only at training time.

Because new values append at the end of the feature array, a dataset
encoded against an older registry state is a *prefix-slice* of the same
dataset encoded later — the invariant that makes zero-padded input-layer
extension knowledge-preserving.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..constraints.compaction import AttributeSpec, CompactedTask
from .registry import FeatureRegistry

__all__ = ["COVVEncoder", "encode_spec_row", "spec_value_vector"]


def _csr_unchecked(data: np.ndarray, indices: np.ndarray,
                   indptr: np.ndarray, shape: tuple[int, int]
                   ) -> sp.csr_matrix:
    """Assemble a CSR matrix from already-canonical arrays.

    ``sp.csr_matrix((data, indices, indptr))`` re-validates the index
    structure on every call — about half the warm encode cost per
    microbatch.  The encoder's arrays are canonical by construction
    (per-row sorted unique indices, cumulative ``indptr``), so the
    check is skipped and the attributes installed directly.  This
    leans on scipy internals (``_shape``; ``maxprint`` is normally set
    by the ``__init__`` we bypass) — the equivalence tests in
    ``tests/datasets/test_co_vv.py`` pin the behaviour per scipy
    version.
    """

    matrix = sp.csr_matrix.__new__(sp.csr_matrix)
    matrix.data = data
    matrix.indices = indices
    matrix.indptr = indptr
    matrix._shape = shape
    matrix.maxprint = 50  # scipy's default; repr/str need it
    return matrix


def spec_value_vector(spec: AttributeSpec, values: list[str | None]) -> np.ndarray:
    """The reversed-notation 0/1 vector of one spec over given value slots.

    ``values`` lists the attribute's column values in order (``None`` is the
    "(none)" slot).  This is the Table VII primitive.
    """

    return np.array([0 if spec.matches(v) else 1 for v in values],
                    dtype=np.int8)


def encode_spec_row(spec: AttributeSpec, registry: FeatureRegistry
                    ) -> tuple[list[int], list[int]]:
    """(column indices, 0/1 values) pairs for one spec's non-trivial cells.

    Only the constrained attribute's columns can be non-zero; acceptable
    cells are 0 so only rejections are emitted.
    """

    cols: list[int] = []
    vals: list[int] = []
    base_cols = registry.columns_of(spec.attribute)
    for col in base_cols:
        feature = registry.feature(col)
        if not spec.matches(feature.value):
            cols.append(col)
            vals.append(1)
    return cols, vals


class COVVEncoder:
    """Encode compacted tasks into the CO-VV sparse matrix.

    The encoder memoizes per-spec column patterns keyed by
    ``(spec, registry_size)`` — distinct constraint shapes in a cell number
    in the hundreds while tasks number in the hundreds of thousands, so
    the memo collapses encoding cost.  On top of that sits a per-task
    memo of the finished sorted column array keyed by
    ``(task, registry_size)``: replay corpora and serving streams repeat
    tasks heavily, so the batch assembly in :meth:`encode_rows` reduces
    to concatenating cached arrays.
    """

    #: Memo eviction threshold (shared by the spec and task memos).
    _MEMO_LIMIT = 100_000

    def __init__(self, registry: FeatureRegistry):
        self.registry = registry
        self._memo: dict[tuple[AttributeSpec, int], tuple[list[int], list[int]]] = {}
        self._row_memo: dict[tuple[CompactedTask, int], np.ndarray] = {}

    def observe(self, task: CompactedTask) -> int:
        """Register a task's constraint vocabulary; returns #new features."""

        return self.registry.observe_task(task)

    def _spec_cells(self, spec: AttributeSpec) -> tuple[list[int], list[int]]:
        key = (spec, self.registry.features_count)
        cached = self._memo.get(key)
        if cached is None:
            cached = encode_spec_row(spec, self.registry)
            self._memo[key] = cached
            if len(self._memo) > self._MEMO_LIMIT:
                self._memo.clear()
        return cached

    def task_columns(self, task: CompactedTask) -> np.ndarray:
        """The task's sorted rejected-column array (read-only, memoized).

        Keyed by ``(task, registry_size)`` like the spec memo: a grown
        registry can add rejected columns to an existing spec, so stale
        widths must miss.
        """

        key = (task, self.registry.features_count)
        cached = self._row_memo.get(key)
        if cached is None:
            row_cols: list[int] = []
            for spec in task:
                cols, _vals = self._spec_cells(spec)
                row_cols.extend(cols)
            row_cols.sort()
            cached = np.asarray(row_cols, dtype=np.int64)
            cached.flags.writeable = False
            self._row_memo[key] = cached
            if len(self._row_memo) > self._MEMO_LIMIT:
                self._row_memo.clear()
        return cached

    def encode_rows(self, tasks: list[CompactedTask]) -> sp.csr_matrix:
        """CSR matrix with one reversed-notation row per task.

        Vectorized assembly: per-task cached column arrays concatenate
        into ``indices``, ``indptr`` is their cumulative length, and
        ``data`` is a single ``np.ones`` over the total nnz (every
        stored CO-VV cell is a rejection) — no per-task Python lists on
        the hot path.
        """

        n_features = self.registry.features_count
        rows = [self.task_columns(task) for task in tasks]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        if rows:
            sizes = np.fromiter((row.size for row in rows),
                                count=len(rows), dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            indices = np.concatenate(rows)
        else:
            indices = np.empty(0, dtype=np.int64)
        return _csr_unchecked(np.ones(indices.size, dtype=np.float32),
                              indices, indptr, (len(tasks), n_features))

    def encode_row_dense(self, task: CompactedTask) -> np.ndarray:
        """Single dense row (mainly for tests and worked examples)."""

        width, cols, vals = self.task_cells(task)
        row = np.zeros(width, dtype=np.float32)
        row[cols] = vals
        return row

    def task_cells(self, task: CompactedTask
                   ) -> tuple[int, list[int], list[int]]:
        """``(registry_width, columns, values)`` of one task's CO-VV row.

        The registry-consistent raw cells: everything that reads the
        (possibly concurrently growing) registry happens here, so a
        caller holding the registry lock can capture the cells under it
        and build the dense row — and run the model — outside it.
        """

        cols: list[int] = []
        vals: list[int] = []
        for spec in task:
            spec_cols, spec_vals = self._spec_cells(spec)
            cols.extend(spec_cols)
            vals.extend(spec_vals)
        return self.registry.features_count, cols, vals
