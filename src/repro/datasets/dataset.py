"""Training-ready dataset container.

:class:`DatasetData` is the object the paper's training loops consume:
it owns the stratified train/test split ("at least two samples per class
were required" — singleton classes stay on the training side), exposes
``features_count``, ``train_loader``, ``X_test`` and ``y_test`` exactly as
Listings 1–3 reference them, and densifies the sparse CO matrices lazily.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..errors import DatasetError
from ..learn.model_selection import stratifiable_mask, train_test_split

__all__ = ["DatasetData"]


class DatasetData:
    """A feature matrix + labels with a stratified train/test split.

    With ``keep_sparse=True`` a sparse ``X`` stays CSR end to end — the
    splits, ``X_train`` / ``X_test``, and the fused
    :class:`~repro.core.TrainPlan` path all row-slice it directly, so
    continuous retraining never materializes the dense design matrix.
    (The eager ``train_loader`` densifies lazily, batch responsibility
    shifting to :class:`~repro.nn.TensorDataset`.)
    """

    def __init__(self, X, y, test_size: float = 0.25, batch_size: int = 128,
                 rng: np.random.Generator | None = None,
                 min_per_class: int = 2, keep_sparse: bool = False):
        if sp.issparse(X):
            if keep_sparse:
                X = X.tocsr().astype(np.float32, copy=False)
            else:
                # toarray() — todense() materializes a deprecated
                # np.matrix plus an extra copy.
                X = X.toarray().astype(np.float32, copy=False)
        else:
            X = np.asarray(X, dtype=np.float32)
        y = np.asarray(y).ravel().astype(np.int64)
        if X.ndim != 2:
            raise DatasetError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise DatasetError("X and y lengths differ")
        if X.shape[0] < 4:
            raise DatasetError("dataset too small to split")
        self.X = X
        self.y = y
        self.batch_size = batch_size
        self._rng = rng or np.random.default_rng()

        # Stratify where possible: classes below the minimum go wholly to
        # the training side so the split never drops a class.
        mask = stratifiable_mask(y, min_per_class=min_per_class)
        idx_all = np.arange(len(y))
        if mask.all():
            train_idx, test_idx = train_test_split(
                idx_all, test_size=test_size, stratify=y, rng=self._rng)
        elif mask.sum() >= 4 and len(np.unique(y[mask])) >= 2:
            strat_train, strat_test = train_test_split(
                idx_all[mask], test_size=test_size, stratify=y[mask],
                rng=self._rng)
            train_idx = np.concatenate([strat_train, idx_all[~mask]])
            test_idx = strat_test
        else:
            train_idx, test_idx = train_test_split(
                idx_all, test_size=test_size, rng=self._rng)

        self.train_indices = np.sort(train_idx)
        self.test_indices = np.sort(test_idx)

    # -- array views -------------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """The split/shuffle generator (shared with ``train_loader``)."""

        return self._rng

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.X)

    @property
    def features_count(self) -> int:
        return self.X.shape[1]

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def X_train(self) -> np.ndarray:
        return self.X[self.train_indices]

    @property
    def y_train(self) -> np.ndarray:
        return self.y[self.train_indices]

    @property
    def X_test(self) -> np.ndarray:
        return self.X[self.test_indices]

    @property
    def y_test(self) -> np.ndarray:
        return self.y[self.test_indices]

    @property
    def train_loader(self) -> nn.DataLoader:
        """A fresh shuffled mini-batch loader over the training split."""

        return nn.DataLoader(
            nn.TensorDataset(self.X_train, self.y_train),
            batch_size=self.batch_size, shuffle=True, rng=self._rng)

    # -- dataset surgery -----------------------------------------------------
    def widened(self, features_count: int) -> "DatasetData":
        """The same dataset zero-padded on the right to a wider feature array.

        Used to evaluate an extended model against pre-extension data (new
        attribute values "do not exist yet" there, so their columns are 0).
        """

        if features_count < self.features_count:
            raise DatasetError("cannot narrow a dataset")
        if features_count == self.features_count:
            return self
        out = object.__new__(DatasetData)
        if sp.issparse(self.X):
            # CSR right-padding is free: wider shape, same data.
            out.X = sp.csr_matrix(
                (self.X.data, self.X.indices, self.X.indptr),
                shape=(self.n_samples, features_count))
        else:
            pad = np.zeros(
                (self.n_samples, features_count - self.features_count),
                dtype=np.float32)
            out.X = np.hstack([self.X, pad])
        out.y = self.y
        out.batch_size = self.batch_size
        out._rng = self._rng
        out.train_indices = self.train_indices
        out.test_indices = self.test_indices
        return out

    def class_distribution(self) -> dict[int, int]:
        classes, counts = np.unique(self.y, return_counts=True)
        return dict(zip(classes.tolist(), counts.tolist()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DatasetData(n={self.n_samples}, features={self.features_count}, "
                f"classes={len(np.unique(self.y))})")
