"""Task grouping by suitable-node count (paper Section III.E).

"Tasks are divided into 26 groups, with Group 0 for tasks allocated to a
single node and Groups 1–25 based on increments of 500 suitable nodes.
For clusterdata-2019a, tasks are grouped every 360 nodes due to its
smaller cell size."

At reduced cell scale the bin width shrinks proportionally
(``ceil(n_machines / 25)``) so the 26-group scheme — and with it the
class-imbalance structure the paper studies — is preserved.
"""

from __future__ import annotations

import numpy as np

__all__ = ["N_GROUPS", "GROUP_SINGLE_NODE", "group_of", "groups_of",
           "group_bounds", "group_distribution"]

N_GROUPS = 26
GROUP_SINGLE_NODE = 0


def group_of(suitable_count: int, bin_width: int) -> int:
    """Map a suitable-node count to its group index (0–25).

    Group 0 holds tasks that can run on at most one node (the restrictive
    tasks the paper's scheduler prioritizes; a count of zero — an
    unschedulable task — is also maximally restrictive and lands in
    Group 0).  Group ``g ≥ 1`` covers counts in
    ``[ (g-1)*bin + 2, g*bin + 1 ]``; the top group absorbs the remainder.
    """

    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if suitable_count < 0:
        raise ValueError("suitable_count cannot be negative")
    if suitable_count <= 1:
        return GROUP_SINGLE_NODE
    return min(N_GROUPS - 1, 1 + (suitable_count - 2) // bin_width)


def groups_of(suitable_counts, bin_width: int) -> np.ndarray:
    """Vectorized :func:`group_of`."""

    counts = np.asarray(suitable_counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("suitable counts cannot be negative")
    groups = np.where(counts <= 1, GROUP_SINGLE_NODE,
                      np.minimum(N_GROUPS - 1, 1 + (counts - 2) // bin_width))
    return groups.astype(np.int64)


def group_bounds(group: int, bin_width: int) -> tuple[int, int | None]:
    """Inclusive (lo, hi) suitable-count range of one group; hi=None = open."""

    if not 0 <= group < N_GROUPS:
        raise ValueError(f"group must be in [0, {N_GROUPS})")
    if group == GROUP_SINGLE_NODE:
        return (0, 1)
    lo = (group - 1) * bin_width + 2
    if group == N_GROUPS - 1:
        return (lo, None)
    return (lo, group * bin_width + 1)


def group_distribution(labels) -> np.ndarray:
    """Per-group task counts (length 26), for imbalance reporting."""

    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= N_GROUPS):
        raise ValueError("labels out of group range")
    return np.bincount(labels, minlength=N_GROUPS)
