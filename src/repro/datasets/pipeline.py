"""The AGOCS dataset-generation pipeline (paper Figure 1).

Replays a cell trace event-by-event, maintaining the machine park, and
produces one dataset per feature-growth step:

1. machine events update the park (and the feature catalogue, for
   machine-side attribute values),
2. each constrained task SUBMIT is collapsed (Table V), its constraint
   vocabulary observed into the registry, its suitable-node count taken
   from the vectorized matcher **at submit time**, and its group label
   assigned (Section III.E),
3. at every growth-step boundary the accumulated tasks are re-encoded at
   the now-current feature width, yielding a :class:`StepDataset` — the
   unit the continuous-learning driver retrains on (one Table XI row).

The pipeline emits both encodings (CO-VV by default; CO-EL for the
comparison the paper draws in §VI).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..constraints.compaction import CompactedTask, compact
from ..constraints.matcher import MachinePark
from ..errors import CompactionError
from ..trace.events import (CellTrace, CollectionEvent, MachineAttributeEvent,
                            MachineEvent, MachineEventKind, TaskEvent,
                            TaskEventKind, format_sim_time)
from ..trace.synthetic import SyntheticCell
from .co_el import COELEncoder, COELRegistry
from .co_vv import COVVEncoder
from .grouping import group_of
from .registry import FeatureRegistry

__all__ = ["StepDataset", "PipelineResult", "build_step_datasets"]

logger = logging.getLogger(__name__)

#: Machine attributes whose machine-side values are not catalogued
#: (huge domains; their constraint operands still are).
DEFAULT_CATALOG_EXCLUDE = ("node_id",)


@dataclass
class StepDataset:
    """Cumulative dataset as of one feature-growth step."""

    step_index: int
    time: int
    features_before: int
    features_after: int
    X: sp.csr_matrix
    y: np.ndarray
    group_bin: int
    n_window_tasks: int

    @property
    def label(self) -> str:
        return format_sim_time(self.time)

    @property
    def n_new_features(self) -> int:
        return self.features_after - self.features_before

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])


@dataclass
class PipelineResult:
    """Everything the replay produced.

    ``tasks`` / ``labels`` are the full cumulative constrained-task corpus
    in submit order with the matching group labels (unsubsampled, unlike
    the capped per-step matrices) — the replay corpus the serving layer's
    load generator feeds back through a live classification service.
    """

    steps: list[StepDataset]
    registry: FeatureRegistry | COELRegistry
    encoding: str
    group_bin: int
    n_tasks_total: int
    n_tasks_with_co: int
    n_compaction_anomalies: int
    tasks: list[CompactedTask] = field(default_factory=list)
    labels: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def final(self) -> StepDataset:
        return self.steps[-1]


def build_step_datasets(cell: SyntheticCell | CellTrace,
                        encoding: str = "co-vv",
                        group_bin: int | None = None,
                        step_times: tuple[int, ...] | None = None,
                        catalog_exclude: tuple[str, ...] = DEFAULT_CATALOG_EXCLUDE,
                        max_samples_per_step: int | None = 30_000,
                        rng: np.random.Generator | None = None
                        ) -> PipelineResult:
    """Run the Figure 1 pipeline over a cell.

    Parameters
    ----------
    cell:
        A :class:`SyntheticCell` (carries its trace, step times, and group
        bin) or a bare :class:`CellTrace` (then ``group_bin`` and
        ``step_times`` must be given).
    encoding:
        ``'co-vv'`` (value vectors) or ``'co-el'`` (encoded labels).
    max_samples_per_step:
        Cap on cumulative rows per step dataset (uniform subsample keeps
        memory bounded at paper-scale runs; None disables).
    """

    if isinstance(cell, SyntheticCell):
        trace = cell.trace
        group_bin = cell.group_bin if group_bin is None else group_bin
        step_times = cell.step_times if step_times is None else step_times
    else:
        trace = cell
        if group_bin is None or step_times is None:
            raise ValueError("bare traces need explicit group_bin and step_times")
    if encoding not in ("co-vv", "co-el"):
        raise ValueError("encoding must be 'co-vv' or 'co-el'")
    if not step_times:
        raise ValueError("at least one growth step (step zero) is required")
    rng = rng or np.random.default_rng(0)

    park = MachinePark()
    if encoding == "co-vv":
        registry = FeatureRegistry()
        encoder = COVVEncoder(registry)
    else:
        registry = COELRegistry()
        encoder = COELEncoder(registry)

    tasks_acc: list[CompactedTask] = []
    labels_acc: list[int] = []
    steps: list[StepDataset] = []
    boundaries = list(step_times[1:]) + [None]
    step_index = 0
    window_started_at = step_times[0]
    features_at_window_start = 0
    window_tasks = 0
    n_tasks_total = 0
    n_tasks_with_co = 0
    n_anomalies = 0

    def close_window(time: int) -> None:
        nonlocal step_index, window_started_at, features_at_window_start
        nonlocal window_tasks
        X = encoder.encode_rows(tasks_acc)
        y = np.asarray(labels_acc, dtype=np.int64)
        if max_samples_per_step is not None and X.shape[0] > max_samples_per_step:
            keep = np.sort(rng.choice(X.shape[0], size=max_samples_per_step,
                                      replace=False))
            X, y = X[keep], y[keep]
        steps.append(StepDataset(
            step_index=step_index, time=window_started_at,
            features_before=features_at_window_start,
            features_after=registry.features_count,
            X=X, y=y, group_bin=group_bin, n_window_tasks=window_tasks))
        step_index += 1
        window_started_at = time
        features_at_window_start = registry.features_count
        window_tasks = 0

    next_boundary = boundaries.pop(0)
    for event in trace:
        while next_boundary is not None and event.time >= next_boundary:
            close_window(next_boundary)
            next_boundary = boundaries.pop(0) if boundaries else None

        if isinstance(event, MachineEvent):
            if event.kind is MachineEventKind.ADD:
                park.add_machine(event.machine_id, cpu=event.cpu, mem=event.mem)
            elif event.kind is MachineEventKind.REMOVE:
                if event.machine_id in park:
                    park.remove_machine(event.machine_id)
            else:
                park.update_capacity(event.machine_id, cpu=event.cpu,
                                     mem=event.mem)
        elif isinstance(event, MachineAttributeEvent):
            if event.deleted:
                park.remove_attribute(event.machine_id, event.attribute)
            else:
                park.set_attribute(event.machine_id, event.attribute,
                                   event.value)
                if (encoding == "co-vv"
                        and event.attribute not in catalog_exclude):
                    registry.observe_value(event.attribute, event.value)
        elif isinstance(event, TaskEvent):
            if event.kind is not TaskEventKind.SUBMIT:
                continue
            n_tasks_total += 1
            if not event.constraints:
                continue
            try:
                task = compact(event.constraints)
            except CompactionError as exc:
                n_anomalies += 1
                logger.warning("skipping task %s: %s", event.task_key, exc)
                continue
            if len(task) == 0:
                continue
            n_tasks_with_co += 1
            window_tasks += 1
            encoder.observe(task)
            count = park.count_suitable(task)
            tasks_acc.append(task)
            labels_acc.append(group_of(count, group_bin))
        elif isinstance(event, CollectionEvent):
            continue

    close_window(trace.span[1] + 1)

    return PipelineResult(
        steps=steps, registry=registry, encoding=encoding,
        group_bin=group_bin, n_tasks_total=n_tasks_total,
        n_tasks_with_co=n_tasks_with_co,
        n_compaction_anomalies=n_anomalies,
        tasks=tasks_acc, labels=np.asarray(labels_acc, dtype=np.int64))
