"""Append-only feature registry for the CO-VV encoding.

The CO-VV dataset gives every ``(attribute, value)`` pair — plus one
``(attribute, (none))`` column per attribute — a feature column.  New
values observed during cluster operation are **appended as the last
column** (paper Section IV: "for traceability and simplicity, new
attribute values are appended as the last column"), which is precisely
what lets the growing model extend its input layer by right-padding.

:class:`FeatureRegistry` maintains that append-only mapping and a growth
journal (one :class:`GrowthRecord` per step) that the continuous-learning
driver uses to decide when retraining is due — the Table XI step log.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.compaction import AttributeSpec, CompactedTask
from ..constraints.operators import parse_value

__all__ = ["Feature", "GrowthRecord", "FeatureRegistry", "NONE_VALUE"]

#: Sentinel value-slot for the per-attribute "(none)" column.
NONE_VALUE = None


@dataclass(frozen=True, slots=True)
class Feature:
    """One feature column: an attribute's value (or its absence column)."""

    attribute: str
    value: str | None  # None = the "(none)" column

    @property
    def label(self) -> str:
        return f"{self.attribute}:(none)" if self.value is None \
            else f"{self.attribute}:{self.value}"


@dataclass(slots=True)
class GrowthRecord:
    """One feature-array extension (one Table XI step)."""

    step_index: int
    time: int
    features_before: int
    features_after: int
    added: tuple[Feature, ...] = ()

    @property
    def n_added(self) -> int:
        return self.features_after - self.features_before


class FeatureRegistry:
    """Append-only ``Feature → column index`` map with a growth journal."""

    def __init__(self) -> None:
        self._features: list[Feature] = []
        self._index: dict[tuple[str, str | None], int] = {}
        self._journal: list[GrowthRecord] = []
        self._step_open = False
        self._step_start = 0
        self._step_time = 0
        self._step_index = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _add(self, attribute: str, value: str | None) -> bool:
        key = (attribute, value)
        if key in self._index:
            return False
        self._index[key] = len(self._features)
        self._features.append(Feature(attribute, value))
        return True

    def observe_attribute(self, attribute: str) -> bool:
        """Ensure the attribute's "(none)" column exists."""

        return self._add(attribute, NONE_VALUE)

    def observe_value(self, attribute: str, value) -> bool:
        """Ensure columns for the attribute and one concrete value."""

        value = parse_value(value)
        if value is None:
            return self.observe_attribute(attribute)
        added = self.observe_attribute(attribute)
        return self._add(attribute, value) or added

    def observe_spec(self, spec: AttributeSpec) -> int:
        """Register every value a collapsed constraint mentions; returns #new."""

        added = int(self.observe_attribute(spec.attribute))
        values: list[str] = []
        if spec.has_equal and spec.equal is not None:
            values.append(spec.equal)
        values.extend(spec.not_in)
        if spec.lo is not None:
            values.append(str(spec.lo))
        if spec.hi is not None:
            values.append(str(spec.hi))
        for value in values:
            added += int(self._add(spec.attribute, value))
        return added

    def observe_task(self, task: CompactedTask) -> int:
        """Register a whole task's constraint vocabulary; returns #new."""

        return sum(self.observe_spec(spec) for spec in task)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def features_count(self) -> int:
        return len(self._features)

    def column(self, attribute: str, value=NONE_VALUE) -> int | None:
        """Column index of (attribute, value), or None if unregistered."""

        return self._index.get((attribute, parse_value(value)))

    def feature(self, column: int) -> Feature:
        return self._features[column]

    def features(self) -> tuple[Feature, ...]:
        return tuple(self._features)

    def feature_labels(self) -> list[str]:
        return [f.label for f in self._features]

    # ------------------------------------------------------------------
    # durable snapshot / warm-restart
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[tuple[str, str | None], ...]:
        """The full column mapping as ``(attribute, value)`` pairs.

        Column order is the identity of the CO-VV encoding, so a
        checkpointed snapshot replayed through :meth:`restore` rebuilds
        byte-identical feature indices — what lets a restarted cell
        serve a restored model against a freshly-loaded registry.
        """

        return tuple((f.attribute, f.value) for f in self._features)

    def restore(self, features) -> int:
        """Replay a :meth:`snapshot` in column order; returns #appended.

        Existing columns must match the snapshot prefix exactly (the
        registry is append-only, so a divergence means the checkpoint
        belongs to a different cell corpus) — new columns beyond the
        current width are appended.  A snapshot *narrower* than the
        current registry is fine: live growth since the checkpoint just
        stays in place.
        """

        added = 0
        for column, (attribute, value) in enumerate(features):
            if column < len(self._features):
                existing = self._features[column]
                if (existing.attribute, existing.value) != (attribute, value):
                    raise ValueError(
                        f"registry snapshot mismatch at column {column}: "
                        f"checkpoint has {attribute}:{value!r}, registry "
                        f"has {existing.attribute}:{existing.value!r}")
                continue
            added += int(self._add(attribute, value))
        return added

    def columns_of(self, attribute: str) -> list[int]:
        """All column indices belonging to one attribute (any order of growth)."""

        return [i for i, f in enumerate(self._features)
                if f.attribute == attribute]

    def values_of(self, attribute: str) -> list[str | None]:
        """The attribute's registered values, in column order (None first
        only if the attribute was registered before any value)."""

        return [f.value for f in self._features if f.attribute == attribute]

    def attributes(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for f in self._features:
            seen.setdefault(f.attribute)
        return tuple(seen)

    # ------------------------------------------------------------------
    # growth journal
    # ------------------------------------------------------------------
    def begin_step(self, time: int) -> None:
        """Open a growth step; new features from here get journalled to it."""

        if self._step_open:
            raise RuntimeError("previous growth step is still open")
        self._step_open = True
        self._step_start = len(self._features)
        self._step_time = time

    def end_step(self) -> GrowthRecord:
        """Close the current step; returns its GrowthRecord."""

        if not self._step_open:
            raise RuntimeError("no growth step is open")
        record = GrowthRecord(
            step_index=self._step_index, time=self._step_time,
            features_before=self._step_start,
            features_after=len(self._features),
            added=tuple(self._features[self._step_start:]))
        self._journal.append(record)
        self._step_open = False
        self._step_index += 1
        return record

    @property
    def journal(self) -> tuple[GrowthRecord, ...]:
        return tuple(self._journal)

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, key: tuple[str, str | None]) -> bool:
        return (key[0], parse_value(key[1])) in self._index
