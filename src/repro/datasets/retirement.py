"""Feature retirement — the paper's "Expiring Unused Attributes" extension.

§VI: "more active cluster configurations may face challenges if unused
attribute values accumulate over time.  Introducing a process to retire
obsolete features will keep the model efficient and scalable."

:class:`FeatureUsageTracker` records when each feature column was last
referenced by a task's constraints; :func:`retirement_plan` selects the
stale columns; the growing model applies the plan by *column-selecting*
its input weights (the shrinking mirror-image of zero-padded extension).
Retired columns are journalled so the registry's append-only column
identity is never violated — a retired column keeps its index in the
registry but is excluded from encoding via the plan's keep-mask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constraints.compaction import CompactedTask
from .registry import FeatureRegistry

__all__ = ["FeatureUsageTracker", "RetirementPlan", "retirement_plan"]


class FeatureUsageTracker:
    """Last-use timestamps for every registry column."""

    def __init__(self, registry: FeatureRegistry):
        self.registry = registry
        self._last_used: dict[int, int] = {}

    def observe_task(self, task: CompactedTask, time: int) -> None:
        """Mark every column of the task's constrained attributes used."""

        for spec in task:
            for column in self.registry.columns_of(spec.attribute):
                previous = self._last_used.get(column, -1)
                if time > previous:
                    self._last_used[column] = time

    def last_used(self, column: int) -> int | None:
        """Timestamp of the column's last use (None = never used)."""

        return self._last_used.get(column)

    def usage_vector(self) -> np.ndarray:
        """Per-column last-use times (-1 = never used)."""

        out = np.full(self.registry.features_count, -1, dtype=np.int64)
        for column, time in self._last_used.items():
            if column < out.shape[0]:
                out[column] = time
        return out


@dataclass(frozen=True)
class RetirementPlan:
    """Which columns survive a retirement pass.

    ``keep`` is a boolean mask over the registry's columns at plan time;
    ``kept_columns`` maps new (compacted) positions to old positions.
    """

    keep: np.ndarray
    threshold_time: int

    @property
    def kept_columns(self) -> np.ndarray:
        return np.flatnonzero(self.keep)

    @property
    def n_kept(self) -> int:
        return int(self.keep.sum())

    @property
    def n_retired(self) -> int:
        return int((~self.keep).sum())

    def compact_matrix(self, X):
        """Column-select a dataset matrix (dense or CSR) under the plan."""

        return X[:, self.kept_columns]

    def compact_weights(self, weight: np.ndarray) -> np.ndarray:
        """Column-select a (hidden, features) weight matrix.

        The inverse of zero-padded extension: retired columns' weights are
        dropped; surviving columns keep their trained values, so the
        shrunken model is exactly equivalent on data where retired
        features are zero (which stale features are, by definition of
        staleness going forward).
        """

        if weight.shape[1] != self.keep.shape[0]:
            raise ValueError(
                f"weight has {weight.shape[1]} columns, plan covers "
                f"{self.keep.shape[0]}")
        return np.ascontiguousarray(weight[:, self.kept_columns])


def retirement_plan(tracker: FeatureUsageTracker, *, before: int,
                    protect_none_columns: bool = True) -> RetirementPlan:
    """Plan the retirement of columns unused since ``before``.

    ``protect_none_columns`` keeps every attribute's ``(none)`` column
    alive (they anchor the attribute's presence semantics and cost one
    column each).
    """

    usage = tracker.usage_vector()
    keep = usage >= before
    if protect_none_columns:
        for i, feature in enumerate(tracker.registry.features()):
            if feature.value is None:
                keep[i] = True
    return RetirementPlan(keep=keep, threshold_time=before)
