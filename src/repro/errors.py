"""Exception hierarchy shared across the library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CompactionError",
    "TraceFormatError",
    "DatasetError",
    "TrainingFailedError",
    "PlanCompileError",
    "SchedulingError",
    "ServiceError",
    "ServiceClosedError",
    "NotServingError",
    "UnknownCellError",
    "OverloadedError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CompactionError(ReproError):
    """A task's constraint set is unsatisfiable or cannot be collapsed.

    The paper logs these and skips the task ("fewer than twenty across all
    datasets ... ignored in the simulation").
    """


class TraceFormatError(ReproError):
    """A trace record violates the 2011 CSV / 2019 JSON schema."""


class DatasetError(ReproError):
    """Dataset construction failed (e.g. unknown feature, empty split)."""


class TrainingFailedError(ReproError):
    """The fail-fast retry budget was exhausted (paper: ten attempts)."""


class PlanCompileError(ReproError):
    """A model cannot be exported to a fused inference plan (it contains
    a module the plan compiler has no fused equivalent for)."""


class SchedulingError(ReproError):
    """The simulator was asked to do something inconsistent."""


class ServiceError(ReproError):
    """Base class for online-serving failures."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a stopped classification service."""


class NotServingError(ServiceError):
    """No model has been published to the serving handle yet."""


class UnknownCellError(ServiceError):
    """A request was routed to a cell no serving stack is registered for."""


class OverloadedError(ServiceError):
    """Admission control shed the request: the cell's queue would blow
    its latency budget (or hard depth cap).

    ``retry_after_s`` hints how long the caller should back off before
    resubmitting (the projected excess queueing delay); ``cell`` names
    the overloaded cell when the request went through a router;
    ``reason`` distinguishes how the request was shed — ``"rejected"``
    at the admission gate, ``"evicted"`` from the queue by a
    drop-oldest policy, or ``"expired"`` at dequeue after outliving the
    latency budget.  This is the serving-layer equivalent of an
    HTTP 429 + ``Retry-After``.
    """

    def __init__(self, message: str, retry_after_s: float | None = None,
                 cell: str | None = None, reason: str = "rejected"):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.cell = cell
        self.reason = reason


class CircuitOpenError(ServiceError):
    """The cell's circuit breaker is open: the supervisor tripped it on
    an error/timeout streak (or a wedged worker) and new submissions are
    refused until the jittered reopen backoff expires.

    ``retry_after_s`` is the remaining backoff before the breaker
    half-opens for a probe; ``cell`` names the tripped cell when the
    request went through a router; ``reason`` records what tripped it.
    This is the serving-layer equivalent of HTTP 503 + ``Retry-After``
    (unlike :class:`OverloadedError`'s 429, the cell is *unhealthy*,
    not merely busy).
    """

    def __init__(self, message: str, retry_after_s: float | None = None,
                 cell: str | None = None, reason: str = "open"):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.cell = cell
        self.reason = reason
