"""Exception hierarchy shared across the library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CompactionError",
    "TraceFormatError",
    "DatasetError",
    "TrainingFailedError",
    "SchedulingError",
    "ServiceError",
    "ServiceClosedError",
    "NotServingError",
    "UnknownCellError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CompactionError(ReproError):
    """A task's constraint set is unsatisfiable or cannot be collapsed.

    The paper logs these and skips the task ("fewer than twenty across all
    datasets ... ignored in the simulation").
    """


class TraceFormatError(ReproError):
    """A trace record violates the 2011 CSV / 2019 JSON schema."""


class DatasetError(ReproError):
    """Dataset construction failed (e.g. unknown feature, empty split)."""


class TrainingFailedError(ReproError):
    """The fail-fast retry budget was exhausted (paper: ten attempts)."""


class SchedulingError(ReproError):
    """The simulator was asked to do something inconsistent."""


class ServiceError(ReproError):
    """Base class for online-serving failures."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a stopped classification service."""


class NotServingError(ServiceError):
    """No model has been published to the serving handle yet."""


class UnknownCellError(ServiceError):
    """A request was routed to a cell no serving stack is registered for."""
