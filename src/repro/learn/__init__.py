"""``repro.learn`` — NumPy implementations of the paper's sklearn baselines.

Provides the four baseline classifiers from the paper's Section V
(MLP, Ridge, SGD/linear-SVM, hard-voting ensemble) plus the stratified
splitting and metric machinery the evaluation protocol depends on.
"""

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .ensemble import VotingClassifier
from .linear import RidgeClassifier, SGDClassifier
from .metrics import (accuracy_score, classification_report, confusion_matrix,
                      f1_score, fbeta_score, precision_recall_fscore_support,
                      precision_score, recall_score)
from .mlp import MLPClassifier
from .model_selection import (KFold, StratifiedKFold, StratifiedShuffleSplit,
                              stratifiable_mask, train_test_split)
from .preprocessing import LabelEncoder, MinMaxScaler, StandardScaler
from .search import GridSearchCV, ParameterGrid, cross_val_score

__all__ = [
    "BaseEstimator", "ClassifierMixin", "check_array", "check_X_y",
    "MLPClassifier", "RidgeClassifier", "SGDClassifier", "VotingClassifier",
    "accuracy_score", "f1_score", "fbeta_score", "precision_score",
    "recall_score", "confusion_matrix", "classification_report",
    "precision_recall_fscore_support",
    "train_test_split", "StratifiedKFold", "StratifiedShuffleSplit", "KFold",
    "stratifiable_mask",
    "LabelEncoder", "StandardScaler", "MinMaxScaler",
    "GridSearchCV", "ParameterGrid", "cross_val_score",
]
