"""Estimator base classes (the sklearn ``base`` analogue).

All estimators follow the classic contract: hyperparameters are set in
``__init__`` and mirrored as attributes, learned state gets a trailing
underscore, ``fit`` returns ``self``.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np
import scipy.sparse as sp

__all__ = ["BaseEstimator", "ClassifierMixin", "check_X_y", "check_array",
           "ensure_dense"]


def ensure_dense(X) -> np.ndarray:
    """Accept ndarray / sparse matrix / nested lists; return a 2-D float array."""

    if sp.issparse(X):
        # toarray() — todense() materializes a deprecated np.matrix
        # plus an extra copy.
        X = X.toarray()
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {X.shape}")
    return X


def check_array(X) -> np.ndarray:
    """Validate a feature matrix: 2-D, finite, non-empty."""

    X = ensure_dense(X)
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ValueError("empty feature matrix")
    if not np.isfinite(X).all():
        raise ValueError("feature matrix contains NaN or infinity")
    return X


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate an (X, y) pair with aligned lengths."""

    X = check_array(X)
    y = np.asarray(y).ravel()
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]}")
    return X, y


class BaseEstimator:
    """get_params/set_params introspection shared by every estimator."""

    @classmethod
    def _param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return [name for name, p in sig.parameters.items()
                if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)]

    def get_params(self) -> dict[str, Any]:
        """Hyperparameters as a dict (constructor-argument names)."""

        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Update hyperparameters in place; unknown names raise."""

        valid = set(self._param_names())
        for key, value in params.items():
            if key not in valid:
                raise ValueError(f"invalid parameter {key!r} for {type(self).__name__}")
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({args})"


class ClassifierMixin:
    """Adds accuracy-based ``score`` to classifiers."""

    def score(self, X, y) -> float:
        from .metrics import accuracy_score

        return accuracy_score(np.asarray(y).ravel(), self.predict(X))

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(
                f"{type(self).__name__} instance is not fitted yet; call fit first")
