"""Ensemble models.

The paper's "Ensemble Voter" combines the baseline models "using hard
voting, as some models lacked the 'predict_proba' method needed for soft
voting" — :class:`VotingClassifier` implements both modes and raises a
clear error if soft voting is requested with probability-less members.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin
from .preprocessing import LabelEncoder

__all__ = ["VotingClassifier"]


class VotingClassifier(BaseEstimator, ClassifierMixin):
    """Majority-vote (or probability-averaging) combiner.

    Parameters
    ----------
    estimators:
        List of ``(name, estimator)`` pairs.  Each estimator is fitted on
        the full training data passed to :meth:`fit`.
    voting:
        ``'hard'`` — argmax of vote counts, ties broken by class order
        (sklearn semantics); ``'soft'`` — argmax of averaged probabilities.
    weights:
        Optional per-estimator vote weights.
    """

    def __init__(self, estimators: list[tuple[str, object]],
                 voting: str = "hard", weights: list[float] | None = None):
        self.estimators = estimators
        self.voting = voting
        self.weights = weights

    def fit(self, X, y) -> "VotingClassifier":
        if not self.estimators:
            raise ValueError("VotingClassifier needs at least one estimator")
        if self.voting not in ("hard", "soft"):
            raise ValueError(f"voting must be 'hard' or 'soft', got {self.voting!r}")
        names = [name for name, _ in self.estimators]
        if len(set(names)) != len(names):
            raise ValueError("estimator names must be unique")
        if self.weights is not None and len(self.weights) != len(self.estimators):
            raise ValueError("weights length must match estimators")
        if self.voting == "soft":
            for name, est in self.estimators:
                if not hasattr(est, "predict_proba"):
                    raise TypeError(
                        f"estimator {name!r} lacks predict_proba; "
                        "use voting='hard' (as the paper does)")

        self._encoder = LabelEncoder().fit(np.asarray(y).ravel())
        self.classes_ = self._encoder.classes_
        self.named_estimators_ = {}
        for name, est in self.estimators:
            est.fit(X, y)
            self.named_estimators_[name] = est
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        w = (np.asarray(self.weights, dtype=np.float64)
             if self.weights is not None else np.ones(len(self.estimators)))
        n_classes = len(self.classes_)
        if self.voting == "hard":
            votes = np.zeros((_n_rows(X), n_classes))
            for weight, (name, _) in zip(w, self.estimators):
                pred = self.named_estimators_[name].predict(X)
                codes = self._encoder.transform(pred)
                votes[np.arange(len(codes)), codes] += weight
            winner = votes.argmax(axis=1)  # ties → lowest class index
            return self._encoder.inverse_transform(winner)
        proba = self.predict_proba(X)
        return self._encoder.inverse_transform(proba.argmax(axis=1))

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        if self.voting != "soft":
            raise AttributeError("predict_proba requires voting='soft'")
        w = (np.asarray(self.weights, dtype=np.float64)
             if self.weights is not None else np.ones(len(self.estimators)))
        acc = None
        for weight, (name, _) in zip(w, self.estimators):
            proba = self.named_estimators_[name].predict_proba(X) * weight
            acc = proba if acc is None else acc + proba
        return acc / w.sum()


def _n_rows(X) -> int:
    return X.shape[0] if hasattr(X, "shape") else len(X)
