"""Linear classifiers: Ridge and SGD-trained linear SVM.

These are the paper's baseline models:

* ``RidgeClassifier`` — "Ridge Regression, which adds an L2 regularization
  penalty ... computationally efficient, interpretable, and effective for
  datasets with many features".  Implemented exactly as sklearn does: the
  targets are encoded one-vs-rest in {-1, +1}, a single regularized
  least-squares problem is solved in closed form, and prediction takes the
  argmax of the decision values.
* ``SGDClassifier`` — "a Linear SVM trained with Stochastic Gradient
  Descent, optimizing weights incrementally".  Hinge loss with L2 penalty,
  per-epoch shuffling, inverse-scaling learning rate.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .preprocessing import LabelEncoder

__all__ = ["RidgeClassifier", "SGDClassifier"]


class RidgeClassifier(BaseEstimator, ClassifierMixin):
    """L2-regularized least-squares classifier (closed form).

    Parameters
    ----------
    alpha:
        Regularization strength; larger values shrink coefficients harder.
    fit_intercept:
        Learn an unpenalized intercept by centering the problem.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "RidgeClassifier":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("RidgeClassifier needs at least two classes")

        # {-1, +1} one-vs-rest targets; binary problems use one column.
        if n_classes == 2:
            Y = np.where(codes == 1, 1.0, -1.0).reshape(-1, 1)
        else:
            Y = np.full((X.shape[0], n_classes), -1.0)
            Y[np.arange(X.shape[0]), codes] = 1.0

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = Y.mean(axis=0)
            Xc = X - x_mean
            Yc = Y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = np.zeros(Y.shape[1])
            Xc, Yc = X, Y

        n, d = Xc.shape
        if d <= n:
            # Primal normal equations: (X'X + aI) W = X'Y.
            gram = Xc.T @ Xc
            gram[np.diag_indices_from(gram)] += self.alpha
            coef = scipy.linalg.solve(gram, Xc.T @ Yc, assume_a="pos")
        else:
            # Dual form is cheaper when d > n: W = X'(XX' + aI)^-1 Y.
            gram = Xc @ Xc.T
            gram[np.diag_indices_from(gram)] += self.alpha
            coef = Xc.T @ scipy.linalg.solve(gram, Yc, assume_a="pos")

        self.coef_ = coef.T  # (n_outputs, n_features)
        self.intercept_ = y_mean - x_mean @ coef
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        scores = X @ self.coef_.T + self.intercept_
        return scores.ravel() if scores.shape[1] == 1 else scores

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        if scores.ndim == 1:
            codes = (scores > 0).astype(np.int64)
        else:
            codes = scores.argmax(axis=1)
        return self._encoder.inverse_transform(codes)


class SGDClassifier(BaseEstimator, ClassifierMixin):
    """Linear SVM (hinge loss) or logistic regression trained by SGD.

    Parameters
    ----------
    loss:
        ``'hinge'`` (linear SVM, the paper's configuration) or ``'log_loss'``.
    alpha:
        L2 penalty coefficient.
    max_iter:
        Maximum epochs over the data.
    tol:
        Stop when the epoch's mean loss improves by less than ``tol`` for
        ``n_iter_no_change`` consecutive epochs.
    eta0 / power_t:
        Inverse-scaling learning rate ``eta0 / t^power_t`` over update steps.
    batch_size:
        Samples per SGD update.  1 reproduces classic per-sample SGD;
        small mini-batches give identical solutions far faster in NumPy
        (vectorization is the dominant cost model here).
    """

    def __init__(self, loss: str = "hinge", alpha: float = 1e-4,
                 max_iter: int = 50, tol: float = 1e-3, eta0: float = 0.1,
                 power_t: float = 0.25, batch_size: int = 32,
                 n_iter_no_change: int = 5, fit_intercept: bool = True,
                 shuffle: bool = True, rng: np.random.Generator | None = None):
        self.loss = loss
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.eta0 = eta0
        self.power_t = power_t
        self.batch_size = batch_size
        self.n_iter_no_change = n_iter_no_change
        self.fit_intercept = fit_intercept
        self.shuffle = shuffle
        self.rng = rng

    # -- internals ---------------------------------------------------------
    def _loss_grad(self, margins: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample loss values and dloss/dmargin for the chosen loss."""

        if self.loss == "hinge":
            losses = np.maximum(0.0, 1.0 - margins)
            grad = np.where(margins < 1.0, -1.0, 0.0)
        elif self.loss == "log_loss":
            # log(1 + exp(-m)), numerically stable
            losses = np.logaddexp(0.0, -margins)
            grad = -1.0 / (1.0 + np.exp(margins))
        else:
            raise ValueError(f"unknown loss {self.loss!r}")
        return losses, grad

    def fit(self, X, y) -> "SGDClassifier":
        X, y = check_X_y(X, y)
        rng = self.rng or np.random.default_rng()
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("SGDClassifier needs at least two classes")
        n_outputs = 1 if n_classes == 2 else n_classes
        n, d = X.shape

        # One-vs-rest sign targets, shape (n, n_outputs).
        if n_outputs == 1:
            signs = np.where(codes == 1, 1.0, -1.0).reshape(-1, 1)
        else:
            signs = np.full((n, n_classes), -1.0)
            signs[np.arange(n), codes] = 1.0

        W = np.zeros((n_outputs, d))
        b = np.zeros(n_outputs)
        best_loss = np.inf
        stall = 0
        t = 0
        self.n_iter_ = 0
        for _epoch in range(self.max_iter):
            self.n_iter_ += 1
            order = np.arange(n)
            if self.shuffle:
                rng.shuffle(order)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                xb, sb = X[idx], signs[idx]
                t += 1
                eta = self.eta0 / (t ** self.power_t)
                margins = sb * (xb @ W.T + b)
                losses, dmargin = self._loss_grad(margins)
                epoch_loss += losses.sum()
                # dL/dW = mean over batch of dmargin * sign * x, plus L2 term.
                coeff = (dmargin * sb) / len(idx)
                grad_w = coeff.T @ xb + self.alpha * W
                W -= eta * grad_w
                if self.fit_intercept:
                    b -= eta * coeff.sum(axis=0)
            mean_loss = epoch_loss / (n * n_outputs)
            if mean_loss > best_loss - self.tol:
                stall += 1
                if stall >= self.n_iter_no_change:
                    break
            else:
                stall = 0
            best_loss = min(best_loss, mean_loss)

        self.coef_ = W
        self.intercept_ = b
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        scores = X @ self.coef_.T + self.intercept_
        return scores.ravel() if scores.shape[1] == 1 else scores

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        if scores.ndim == 1:
            codes = (scores > 0).astype(np.int64)
        else:
            codes = scores.argmax(axis=1)
        return self._encoder.inverse_transform(codes)
