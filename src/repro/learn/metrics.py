"""Classification metrics (the sklearn ``metrics`` analogue).

The paper's evaluation reports overall accuracy and the F1 score of
Group 0; these functions replicate sklearn's definitions, including its
``zero_division`` handling, so thresholds like ``accuracy > 0.95`` and
``group_0_f1_score > 0.9`` carry over unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "fbeta_score",
    "precision_recall_fscore_support",
    "classification_report",
]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"length mismatch: y_true {y_true.shape[0]} vs y_pred {y_pred.shape[0]}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-matching labels."""

    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Count matrix ``C[i, j]`` = samples of true class i predicted as j."""

    y_true, y_pred = _validate(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    n = len(labels)
    out = np.zeros((n, n), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            out[index[t], index[p]] += 1
    return out


def _per_class_counts(y_true, y_pred, labels) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(tp, fp, fn, support) per label."""

    tp = np.empty(len(labels), dtype=np.float64)
    fp = np.empty(len(labels), dtype=np.float64)
    fn = np.empty(len(labels), dtype=np.float64)
    support = np.empty(len(labels), dtype=np.float64)
    for i, label in enumerate(labels):
        true_is = y_true == label
        pred_is = y_pred == label
        tp[i] = np.sum(true_is & pred_is)
        fp[i] = np.sum(~true_is & pred_is)
        fn[i] = np.sum(true_is & ~pred_is)
        support[i] = np.sum(true_is)
    return tp, fp, fn, support


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray,
                 zero_division: float) -> np.ndarray:
    out = np.full_like(numerator, float(zero_division), dtype=np.float64)
    mask = denominator != 0
    out[mask] = numerator[mask] / denominator[mask]
    return out


def precision_recall_fscore_support(y_true, y_pred, *, labels=None,
                                    beta: float = 1.0, average: str | None = None,
                                    pos_label=1, zero_division: float = 0.0):
    """Per-class (or averaged) precision, recall, F-beta and support.

    ``average`` ∈ {None, 'binary', 'micro', 'macro', 'weighted'} with
    sklearn semantics.
    """

    y_true, y_pred = _validate(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)

    if average == "binary":
        if pos_label not in labels:
            # No positive samples or predictions at all: metrics are the
            # zero_division value with zero support.
            z = float(zero_division)
            return z, z, z, 0
        labels = np.asarray([pos_label])

    tp, fp, fn, support = _per_class_counts(y_true, y_pred, labels)

    if average == "micro":
        tp, fp, fn = tp.sum(keepdims=True), fp.sum(keepdims=True), fn.sum(keepdims=True)
        support = support.sum(keepdims=True)

    precision = _safe_divide(tp, tp + fp, zero_division)
    recall = _safe_divide(tp, tp + fn, zero_division)
    beta2 = beta * beta
    fscore = _safe_divide((1 + beta2) * precision * recall,
                          beta2 * precision + recall, 0.0)
    # sklearn: F is zero_division only when both precision and recall are 0
    # because of zero division.
    both_zero_div = ((tp + fp) == 0) & ((tp + fn) == 0)
    fscore[both_zero_div] = float(zero_division)

    if average is None:
        return precision, recall, fscore, support.astype(np.int64)
    if average in ("binary", "micro"):
        return float(precision[0]), float(recall[0]), float(fscore[0]), int(support.sum())
    if average == "macro":
        return (float(precision.mean()), float(recall.mean()),
                float(fscore.mean()), int(support.sum()))
    if average == "weighted":
        total = support.sum()
        if total == 0:
            return (float(zero_division),) * 3 + (0,)
        w = support / total
        return (float((precision * w).sum()), float((recall * w).sum()),
                float((fscore * w).sum()), int(total))
    raise ValueError(f"unknown average {average!r}")


def precision_score(y_true, y_pred, *, labels=None, average: str | None = "binary",
                    pos_label=1, zero_division: float = 0.0):
    """Positive predictive value."""

    p, _r, _f, _s = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, average=average, pos_label=pos_label,
        zero_division=zero_division)
    return p


def recall_score(y_true, y_pred, *, labels=None, average: str | None = "binary",
                 pos_label=1, zero_division: float = 0.0):
    """True positive rate."""

    _p, r, _f, _s = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, average=average, pos_label=pos_label,
        zero_division=zero_division)
    return r


def fbeta_score(y_true, y_pred, *, beta: float, labels=None,
                average: str | None = "binary", pos_label=1,
                zero_division: float = 0.0):
    """Weighted harmonic mean of precision and recall."""

    _p, _r, f, _s = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, beta=beta, average=average,
        pos_label=pos_label, zero_division=zero_division)
    return f


def f1_score(y_true, y_pred, *, labels=None, average: str | None = "binary",
             pos_label=1, zero_division: float = 0.0):
    """F1 = harmonic mean of precision and recall."""

    return fbeta_score(y_true, y_pred, beta=1.0, labels=labels, average=average,
                       pos_label=pos_label, zero_division=zero_division)


def classification_report(y_true, y_pred, *, labels=None, digits: int = 3) -> str:
    """Human-readable per-class metric table (sklearn-style)."""

    y_true, y_pred = _validate(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    p, r, f, s = precision_recall_fscore_support(y_true, y_pred, labels=labels)
    width = max(len(str(label)) for label in labels.tolist() + ["weighted avg"])
    header = f"{'':>{width}}  {'precision':>9}  {'recall':>9}  {'f1-score':>9}  {'support':>9}"
    rows = [header]
    for i, label in enumerate(labels):
        rows.append(f"{label!s:>{width}}  {p[i]:>9.{digits}f}  {r[i]:>9.{digits}f}  "
                    f"{f[i]:>9.{digits}f}  {int(s[i]):>9d}")
    acc = accuracy_score(y_true, y_pred)
    rows.append("")
    rows.append(f"{'accuracy':>{width}}  {'':>9}  {'':>9}  {acc:>9.{digits}f}  "
                f"{int(s.sum()):>9d}")
    mp, mr, mf, _ = precision_recall_fscore_support(y_true, y_pred, labels=labels,
                                                    average="macro")
    rows.append(f"{'macro avg':>{width}}  {mp:>9.{digits}f}  {mr:>9.{digits}f}  "
                f"{mf:>9.{digits}f}  {int(s.sum()):>9d}")
    wp, wr, wf, _ = precision_recall_fscore_support(y_true, y_pred, labels=labels,
                                                    average="weighted")
    rows.append(f"{'weighted avg':>{width}}  {wp:>9.{digits}f}  {wr:>9.{digits}f}  "
                f"{wf:>9.{digits}f}  {int(s.sum()):>9d}")
    return "\n".join(rows)
