"""Multi-layer perceptron classifier built on :mod:`repro.nn`.

The paper's baseline "MLP Classifier ... the ANN was configured with 30
hidden units and the default Adam optimizer".  This mirrors sklearn's
``MLPClassifier`` hyperparameter surface (hidden_layer_sizes, alpha,
batch_size, learning_rate_init, max_iter, tol, n_iter_no_change) with the
training loop expressed in the same framework the growing model uses,
so epoch counts are directly comparable.

Training runs on the compiled :class:`~repro.core.TrainPlan` by default
(``fused=True``): fused NumPy forward-backward-Adam, no per-batch
autograd graph.  The ``alpha`` L2 penalty is applied as *decoupled*
weight decay folded into the Adam update (weights only, sklearn
convention) on both paths — the eager path uses
``nn.Adam(decoupled_weight_decay=...)`` rather than building a throwaway
``(p*p).sum()`` graph per batch, so the recorded ``loss_curve_`` is the
plain data cross-entropy on either path.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .. import nn
from ..core.train_plan import compile_training
from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .preprocessing import LabelEncoder

__all__ = ["MLPClassifier"]

_ACTIVATIONS = {"relu": nn.ReLU, "tanh": nn.Tanh, "logistic": nn.Sigmoid,
                "identity": nn.Identity}


class MLPClassifier(BaseEstimator, ClassifierMixin):
    """Feed-forward neural network trained with Adam and cross-entropy.

    Parameters mirror sklearn; the defaults match the paper's baseline
    (one hidden layer of 30 ReLU units, Adam at 1e-3).  ``fused=False``
    falls back to the eager autograd loop — the fast path's equivalence
    oracle; both paths consume the shuffle RNG identically, so they see
    the same mini-batches.
    """

    def __init__(self, hidden_layer_sizes: tuple[int, ...] = (30,),
                 activation: str = "relu", alpha: float = 1e-4,
                 batch_size: int | str = "auto", learning_rate_init: float = 1e-3,
                 max_iter: int = 200, tol: float = 1e-4,
                 n_iter_no_change: int = 10, shuffle: bool = True,
                 fused: bool = True,
                 rng: np.random.Generator | None = None):
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.alpha = alpha
        self.batch_size = batch_size
        self.learning_rate_init = learning_rate_init
        self.max_iter = max_iter
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.shuffle = shuffle
        self.fused = fused
        self.rng = rng

    def _build(self, n_features: int, n_classes: int,
               rng: np.random.Generator) -> nn.Sequential:
        if self.activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {self.activation!r}")
        act = _ACTIVATIONS[self.activation]
        layers: "OrderedDict[str, nn.Module]" = OrderedDict()
        width_in = n_features
        for i, width in enumerate(self.hidden_layer_sizes):
            if width <= 0:
                raise ValueError("hidden layer sizes must be positive")
            layers[f"fc{i + 1}"] = nn.Linear(width_in, width, rng=rng)
            layers[f"act{i + 1}"] = act()
            width_in = width
        layers["out"] = nn.Linear(width_in, n_classes, rng=rng)
        return nn.Sequential(layers)

    def fit(self, X, y) -> "MLPClassifier":
        X, y = check_X_y(X, y)
        rng = self.rng or np.random.default_rng()
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("MLPClassifier needs at least two classes")

        n = X.shape[0]
        batch = min(200, n) if self.batch_size == "auto" else int(self.batch_size)
        model = self._build(X.shape[1], n_classes, rng)
        X = X.astype(np.float32)

        self.loss_curve_: list[float] = []
        self.n_iter_ = 0
        if self.fused:
            self._fit_fused(model, X, codes, batch, rng)
        else:
            self._fit_eager(model, X, codes, batch, rng)
        self._model = model
        return self

    def _early_stop(self, mean_loss: float, best_loss: float,
                    stall: int) -> tuple[bool, float, int]:
        """Shared plateau bookkeeping; returns (stop, best, stall)."""

        self.loss_curve_.append(mean_loss)
        if mean_loss > best_loss - self.tol:
            stall += 1
        else:
            stall = 0
        return (stall >= self.n_iter_no_change,
                min(best_loss, mean_loss), stall)

    def _fit_fused(self, model: nn.Sequential, X: np.ndarray,
                   codes: np.ndarray, batch: int,
                   rng: np.random.Generator) -> None:
        plan = compile_training(model, lr=self.learning_rate_init,
                                decoupled_weight_decay=self.alpha)
        n = X.shape[0]
        best_loss = np.inf
        stall = 0
        for _epoch in range(self.max_iter):
            self.n_iter_ += 1
            order = np.arange(n)
            if self.shuffle:
                rng.shuffle(order)
            mean_loss = plan.train_epoch(X, codes, order, batch) / n
            stop, best_loss, stall = self._early_stop(mean_loss,
                                                      best_loss, stall)
            if stop:
                break
        plan.finish()

    def _fit_eager(self, model: nn.Sequential, X: np.ndarray,
                   codes: np.ndarray, batch: int,
                   rng: np.random.Generator) -> None:
        loss_fn = nn.CrossEntropyLoss()
        # alpha as decoupled decay on the weights only (never biases):
        # same shrink the fused plan applies, no penalty graph.
        weights = [p for name, p in model.named_parameters()
                   if name.endswith("weight")]
        optimizer = nn.Adam(model.parameters(), lr=self.learning_rate_init,
                            decoupled_weight_decay=self.alpha,
                            decay_params=weights)
        loader = nn.DataLoader(
            nn.TensorDataset(X, codes),
            batch_size=batch, shuffle=self.shuffle, rng=rng)

        best_loss = np.inf
        stall = 0
        for _epoch in range(self.max_iter):
            self.n_iter_ += 1
            model.train()
            epoch_loss = 0.0
            seen = 0
            for xb, yb in loader:
                optimizer.zero_grad()
                logits = model(xb)
                loss = loss_fn(logits, yb)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(xb)
                seen += len(xb)
            stop, best_loss, stall = self._early_stop(epoch_loss / seen,
                                                      best_loss, stall)
            if stop:
                break

    def _logits(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        self._model.eval()
        with nn.no_grad():
            out = self._model(nn.from_numpy(X.astype(np.float32)))
        return out.numpy()

    def predict_proba(self, X) -> np.ndarray:
        # _logits returns a fresh array, so the shared single-pass
        # in-place softmax (also the InferencePlan output head) applies
        # directly — no shifted/exp temporaries.
        return nn.functional.softmax_inplace(self._logits(X))

    def predict(self, X) -> np.ndarray:
        codes = self._logits(X).argmax(axis=1)
        return self._encoder.inverse_transform(codes)
