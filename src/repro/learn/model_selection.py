"""Train/test splitting with stratification (sklearn ``model_selection``).

The paper: "Stratified training and testing datasets were created where
possible (at least two samples per class were required)" and "Stratified
randomized folds were used to preserve class proportions".  This module
implements ``train_test_split(stratify=...)``, :class:`StratifiedShuffleSplit`
and :class:`StratifiedKFold` with those semantics, plus the helper
:func:`stratifiable_mask` that identifies classes meeting the two-sample
minimum.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "train_test_split",
    "StratifiedShuffleSplit",
    "StratifiedKFold",
    "KFold",
    "stratifiable_mask",
]


def stratifiable_mask(y, min_per_class: int = 2) -> np.ndarray:
    """Boolean mask of samples whose class has ≥ ``min_per_class`` members."""

    y = np.asarray(y).ravel()
    _classes, inverse, counts = np.unique(y, return_inverse=True, return_counts=True)
    return counts[inverse] >= min_per_class


def _resolve_sizes(n: int, test_size, train_size) -> tuple[int, int]:
    if test_size is None and train_size is None:
        test_size = 0.25
    if test_size is not None:
        n_test = int(np.ceil(test_size * n)) if isinstance(test_size, float) else int(test_size)
    else:
        n_train_tmp = (int(np.floor(train_size * n)) if isinstance(train_size, float)
                       else int(train_size))
        n_test = n - n_train_tmp
    if train_size is not None:
        n_train = (int(np.floor(train_size * n)) if isinstance(train_size, float)
                   else int(train_size))
    else:
        n_train = n - n_test
    if n_train <= 0 or n_test <= 0 or n_train + n_test > n:
        raise ValueError(
            f"invalid split sizes for n={n}: train={n_train}, test={n_test}")
    return n_train, n_test


def _stratified_indices(y: np.ndarray, n_train: int, n_test: int,
                        rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Per-class proportional allocation with largest-remainder rounding."""

    classes, class_indices = np.unique(y, return_inverse=True)
    n = y.shape[0]
    class_counts = np.bincount(class_indices)
    if class_counts.min() < 2:
        raise ValueError(
            "stratified split requires at least two samples per class; "
            "filter with stratifiable_mask first")

    def _allocate(total: int) -> np.ndarray:
        raw = class_counts * (total / n)
        alloc = np.floor(raw).astype(int)
        # Every class keeps at least one sample on each side.
        alloc = np.maximum(alloc, 1)
        # Largest remainders get the leftover slots.
        remainder = raw - np.floor(raw)
        while alloc.sum() < total:
            order = np.argsort(-remainder)
            for ci in order:
                if alloc.sum() >= total:
                    break
                if alloc[ci] < class_counts[ci] - 1:
                    alloc[ci] += 1
        while alloc.sum() > total:
            order = np.argsort(remainder)
            for ci in order:
                if alloc.sum() <= total:
                    break
                if alloc[ci] > 1:
                    alloc[ci] -= 1
        return alloc

    train_alloc = _allocate(n_train)

    train_idx: list[np.ndarray] = []
    test_idx: list[np.ndarray] = []
    for ci in range(len(classes)):
        members = np.flatnonzero(class_indices == ci)
        rng.shuffle(members)
        k = min(train_alloc[ci], len(members) - 1)
        train_idx.append(members[:k])
        test_idx.append(members[k:])
    train = np.concatenate(train_idx)
    test = np.concatenate(test_idx)
    rng.shuffle(train)
    rng.shuffle(test)
    # Trim the test side to the requested size (keeping at least one per class
    # took priority over the exact count).
    return train, test[:max(n_test, len(classes))] if len(test) > n_test else test


def train_test_split(*arrays, test_size=None, train_size=None, shuffle: bool = True,
                     stratify=None, rng: np.random.Generator | None = None):
    """Split arrays into train/test partitions.

    Mirrors ``sklearn.model_selection.train_test_split``: returns
    ``train, test`` pairs for each input array, optionally stratified on the
    ``stratify`` labels.
    """

    if not arrays:
        raise ValueError("at least one array required")
    rng = rng or np.random.default_rng()
    n = len(arrays[0]) if not hasattr(arrays[0], "shape") else arrays[0].shape[0]
    for a in arrays:
        length = len(a) if not hasattr(a, "shape") else a.shape[0]
        if length != n:
            raise ValueError("input arrays have mismatched lengths")

    n_train, n_test = _resolve_sizes(n, test_size, train_size)

    if stratify is not None:
        if not shuffle:
            raise ValueError("stratified split requires shuffle=True")
        y = np.asarray(stratify).ravel()
        if y.shape[0] != n:
            raise ValueError("stratify labels must match array length")
        train, test = _stratified_indices(y, n_train, n_test, rng)
    else:
        order = np.arange(n)
        if shuffle:
            rng.shuffle(order)
        test = order[:n_test]
        train = order[n_test:n_test + n_train]

    out = []
    for a in arrays:
        if hasattr(a, "shape") and not isinstance(a, (list, tuple)):
            out.extend((a[train], a[test]))
        else:
            a = np.asarray(a)
            out.extend((a[train], a[test]))
    return out


class StratifiedShuffleSplit:
    """Repeated stratified random splits preserving class proportions."""

    def __init__(self, n_splits: int = 10, test_size=0.2, train_size=None,
                 rng: np.random.Generator | None = None):
        if n_splits < 1:
            raise ValueError("n_splits must be >= 1")
        self.n_splits = n_splits
        self.test_size = test_size
        self.train_size = train_size
        self.rng = rng or np.random.default_rng()

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y).ravel()
        n = y.shape[0]
        n_train, n_test = _resolve_sizes(n, self.test_size, self.train_size)
        for _ in range(self.n_splits):
            yield _stratified_indices(y, n_train, n_test, self.rng)

    def get_n_splits(self) -> int:
        return self.n_splits


class StratifiedKFold:
    """K folds with per-fold class proportions matching the whole set."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 rng: np.random.Generator | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y).ravel()
        classes, class_indices = np.unique(y, return_inverse=True)
        counts = np.bincount(class_indices)
        if counts.min() < self.n_splits:
            raise ValueError(
                f"the least-populated class has {counts.min()} members; "
                f"cannot make {self.n_splits} stratified folds")
        fold_of = np.empty(y.shape[0], dtype=np.int64)
        for ci in range(len(classes)):
            members = np.flatnonzero(class_indices == ci)
            if self.shuffle:
                self.rng.shuffle(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for k in range(self.n_splits):
            test = np.flatnonzero(fold_of == k)
            train = np.flatnonzero(fold_of != k)
            yield train, test

    def get_n_splits(self) -> int:
        return self.n_splits


class KFold:
    """Plain (optionally shuffled) K-fold splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False,
                 rng: np.random.Generator | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = X.shape[0] if hasattr(X, "shape") else len(X)
        if n < self.n_splits:
            raise ValueError("more folds than samples")
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        folds = np.array_split(order, self.n_splits)
        for k in range(self.n_splits):
            test = folds[k]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != k])
            yield train, test

    def get_n_splits(self) -> int:
        return self.n_splits
