"""Data preprocessing utilities (sklearn ``preprocessing`` analogue)."""

from __future__ import annotations

import numpy as np

__all__ = ["LabelEncoder", "StandardScaler", "MinMaxScaler"]


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers 0..K-1."""

    def fit(self, y) -> "LabelEncoder":
        y = np.asarray(y).ravel()
        self.classes_ = np.unique(y)
        return self

    def fit_transform(self, y) -> np.ndarray:
        self.fit(y)
        return self.transform(y)

    def transform(self, y) -> np.ndarray:
        self._check_fitted()
        y = np.asarray(y).ravel()
        idx = np.searchsorted(self.classes_, y)
        bad = (idx >= len(self.classes_)) | (self.classes_[np.minimum(idx, len(self.classes_) - 1)] != y)
        if np.any(bad):
            unknown = np.unique(y[bad])
            raise ValueError(f"unseen labels: {unknown.tolist()[:5]}")
        return idx.astype(np.int64)

    def inverse_transform(self, idx) -> np.ndarray:
        self._check_fitted()
        idx = np.asarray(idx).ravel().astype(np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self.classes_)):
            raise ValueError("encoded labels out of range")
        return self.classes_[idx]

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder is not fitted")


class StandardScaler:
    """Zero-mean unit-variance feature scaling."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to a fixed range (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if lo >= hi:
            raise ValueError("feature_range minimum must be below maximum")
        self.feature_range = feature_range

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        span[span == 0] = 1.0
        self._span = span
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "data_min_"):
            raise RuntimeError("MinMaxScaler is not fitted")
        lo, hi = self.feature_range
        X = np.asarray(X, dtype=np.float64)
        unit = (X - self.data_min_) / self._span
        return unit * (hi - lo) + lo

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
