"""Hyperparameter search (the sklearn ``GridSearchCV`` analogue).

The paper's MLP baseline "delivered strong results with default
hyperparameters, further improved through tuning" — this module provides
the tuning loop: exhaustive search over a parameter grid with stratified
K-fold cross-validated scoring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .metrics import accuracy_score
from .model_selection import StratifiedKFold

__all__ = ["ParameterGrid", "GridSearchCV", "cross_val_score"]


class ParameterGrid:
    """Iterate the cartesian product of a ``{name: [values]}`` grid."""

    def __init__(self, grid: dict[str, list]):
        if not grid:
            raise ValueError("parameter grid cannot be empty")
        for name, values in grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid entry {name!r} must be a non-empty "
                                 f"list")
        self.grid = {name: list(values) for name, values in grid.items()}

    def __len__(self) -> int:
        out = 1
        for values in self.grid.values():
            out *= len(values)
        return out

    def __iter__(self):
        names = list(self.grid)
        for combo in itertools.product(*(self.grid[n] for n in names)):
            yield dict(zip(names, combo))


def cross_val_score(estimator_factory: Callable[[], object], X, y,
                    n_splits: int = 3,
                    scorer: Callable = accuracy_score,
                    rng: np.random.Generator | None = None) -> np.ndarray:
    """Stratified K-fold scores for a freshly-built estimator per fold."""

    X = np.asarray(X)
    y = np.asarray(y).ravel()
    splitter = StratifiedKFold(n_splits=n_splits,
                               rng=rng or np.random.default_rng())
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        estimator = estimator_factory()
        estimator.fit(X[train_idx], y[train_idx])
        scores.append(scorer(y[test_idx], estimator.predict(X[test_idx])))
    return np.asarray(scores)


@dataclass
class GridSearchCV:
    """Exhaustive grid search with cross-validated scoring.

    ``estimator_factory`` is called with each parameter combination as
    keyword arguments (so unpicklable resources like RNGs can be injected
    by the factory itself).
    """

    estimator_factory: Callable[..., object]
    param_grid: dict[str, list]
    n_splits: int = 3
    scorer: Callable = accuracy_score
    rng: np.random.Generator | None = None
    results_: list[dict] = field(default_factory=list, init=False)

    def fit(self, X, y) -> "GridSearchCV":
        X = np.asarray(X)
        y = np.asarray(y).ravel()
        rng = self.rng or np.random.default_rng()
        self.results_ = []
        best = None
        for params in ParameterGrid(self.param_grid):
            seeds = rng.integers(2 ** 63)
            scores = cross_val_score(
                lambda: self.estimator_factory(**params), X, y,
                n_splits=self.n_splits, scorer=self.scorer,
                rng=np.random.default_rng(seeds))
            entry = {"params": params, "mean_score": float(scores.mean()),
                     "std_score": float(scores.std()),
                     "scores": scores.tolist()}
            self.results_.append(entry)
            if best is None or entry["mean_score"] > best["mean_score"]:
                best = entry
        self.best_params_ = best["params"]
        self.best_score_ = best["mean_score"]
        # Refit the winner on the full data.
        self.best_estimator_ = self.estimator_factory(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "best_estimator_"):
            raise RuntimeError("GridSearchCV is not fitted")
        return self.best_estimator_.predict(X)
