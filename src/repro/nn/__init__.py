"""``repro.nn`` — a from-scratch PyTorch-style deep-learning framework.

Built over NumPy for this reproduction because the paper's contribution
(growing a model's input layer in place, with per-column gradient damping)
requires exactly the low-level capabilities the paper credits PyTorch
with: direct state-dict manipulation, tensor padding, ``requires_grad``
freezing, in-place gradient multiplication under ``no_grad``, and a
dynamically built autograd graph.

Public surface::

    from repro import nn
    model = nn.Sequential(OrderedDict([
        ('fc1', nn.Linear(n_features, 30)),
        ('fc2', nn.Linear(30, 26)),
    ]))
    loss_fn = nn.CrossEntropyLoss(weight=class_weights)
    opt = nn.Adam(model.parameters(), lr=0.05)
"""

from .autograd import (GradArray, Tensor, arange, from_numpy, is_grad_enabled,
                       no_grad, ones, rand, randn, tensor, zeros)
from .data import DataLoader, TensorDataset
from .loss import CrossEntropyLoss, L1Loss, MSELoss, NLLLoss
from .module import (Dropout, Identity, Linear, Module, Parameter, ReLU,
                     Sequential, Sigmoid, Tanh)
from .optim import SGD, Adam, Optimizer
from . import functional
from . import init
from . import serialize

__all__ = [
    "Tensor", "GradArray", "no_grad", "is_grad_enabled", "tensor", "zeros",
    "ones", "arange", "rand", "randn", "from_numpy",
    "Module", "Parameter", "Linear", "Sequential", "ReLU", "Tanh", "Sigmoid",
    "Identity", "Dropout",
    "CrossEntropyLoss", "MSELoss", "L1Loss", "NLLLoss",
    "Optimizer", "SGD", "Adam",
    "TensorDataset", "DataLoader",
    "functional", "init", "serialize",
]
