"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the foundation of :mod:`repro.nn`, the from-scratch
deep-learning framework used to implement the paper's Continuous Transfer
Learning Method.  It provides a :class:`Tensor` type supporting a dynamic
computation graph (built during the forward pass, exactly like PyTorch
Autograd as described in the paper's Section IV.B), broadcasting-aware
gradients, in-place operations on leaf data, and a ``no_grad`` context.

Only the operations required by the paper's model zoo are implemented, but
each is implemented completely (forward + backward + broadcasting).
Gradients are accumulated into ``Tensor.grad`` as plain ``numpy.ndarray``
objects so training loops can manipulate them directly — the paper's
Listing 3 multiplies gradient tensors in place, which maps to
``param.grad.mul_(multiplier)`` here via :class:`GradArray`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "GradArray",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "arange",
    "rand",
    "randn",
    "from_numpy",
]


class _GradMode(threading.local):
    """Thread-local gradient-recording switch (mirrors torch.no_grad)."""

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return True when operations are being recorded for backprop."""

    return _grad_mode.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction, like ``torch.no_grad``."""

    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    NumPy broadcasting may have expanded an operand during the forward
    pass; the corresponding gradient must be summed over the broadcast
    axes.  This handles both prepended axes and size-1 axes.
    """

    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class GradArray(np.ndarray):
    """``numpy.ndarray`` subclass adding torch-style in-place helpers.

    The paper's training loop (Listing 3) calls ``param_grad.mul_(...)``
    inside a ``no_grad`` block.  Gradients produced by :meth:`Tensor.backward`
    are views of this class so that idiom works verbatim.
    """

    def mul_(self, other) -> "GradArray":
        """In-place multiplication, returning self (torch semantics)."""

        self *= np.asarray(other, dtype=self.dtype)
        return self

    def add_(self, other) -> "GradArray":
        """In-place addition, returning self."""

        self += np.asarray(other, dtype=self.dtype)
        return self

    def zero_(self) -> "GradArray":
        """Fill with zeros in place, returning self."""

        self[...] = 0
        return self


def _as_gradarray(a: np.ndarray) -> GradArray:
    return np.ascontiguousarray(a).view(GradArray)


_FLOAT_TYPES = (np.float16, np.float32, np.float64)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Floating-point tensors may require gradients;
        integer tensors (labels, indices) may not.
    requires_grad:
        Record operations involving this tensor so that
        :meth:`backward` can populate :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(self, data, requires_grad: bool = False, _prev: tuple = (), _op: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype == np.float64:
            # float32 is the framework default, as in the paper's model
            # (``model.to(dtype=torch.float32)``); callers may still build
            # float64 tensors explicitly via from_numpy(..., copy=False).
            arr = arr.astype(np.float32)
        elif arr.dtype == bool:
            arr = arr.astype(np.float32)
        elif arr.dtype.kind in "iu" and arr.dtype != np.int64:
            arr = arr.astype(np.int64)
        self.data: np.ndarray = arr
        if requires_grad and arr.dtype.kind != "f":
            raise RuntimeError("only floating-point tensors can require gradients")
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: GradArray | None = None
        self._backward: Callable[[], None] | None = None
        self._prev: tuple = _prev
        self._op = _op

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _promote(other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=np.float32))

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def size(self, dim: int | None = None):
        """Shape tuple, or the extent along ``dim`` (torch-style)."""

        if dim is None:
            return self.data.shape
        return self.data.shape[dim]

    def numel(self) -> int:
        return int(self.data.size)

    def item(self) -> float:
        return self.data.item()

    def numpy(self) -> np.ndarray:
        """The raw ndarray (no copy). Mutating it mutates the tensor."""

        return self.data

    def tolist(self):
        return self.data.tolist()

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but detached from the graph."""

        t = Tensor.__new__(Tensor)
        t.data = self.data
        t.requires_grad = False
        t.grad = None
        t._backward = None
        t._prev = ()
        t._op = "detach"
        return t

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype))

    def float(self) -> "Tensor":
        return self if self.dtype == np.float32 else Tensor(self.data.astype(np.float32))

    def long(self) -> "Tensor":
        return Tensor(self.data.astype(np.int64))

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_part})"

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = _as_gradarray(grad.copy())
        else:
            self.grad += grad

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], None] | None) -> "Tensor":
        """Create a graph node. ``backward`` receives the output gradient."""

        track = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = track
        out._op = op
        if track and backward is not None:
            out._prev = tuple(parents)

            def _bw() -> None:
                backward(out.grad)

            out._backward = _bw
        else:
            out._prev = ()
            out._backward = None
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""

        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self.grad = _as_gradarray(np.asarray(grad, dtype=self.data.dtype).reshape(self.data.shape).copy())

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()
                # Free interior references so memory can be reclaimed and
                # double-backward misuse fails loudly.
                node._backward = None
                node._prev = ()

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor._promote(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return Tensor._make(out_data, (self, other), "add", backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = Tensor._promote(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(-g)

        return Tensor._make(out_data, (self, other), "sub", backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor._promote(other) - self

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(out_data, (self,), "neg", backward)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._promote(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return Tensor._make(out_data, (self, other), "mul", backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._promote(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data * other.data))

        return Tensor._make(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._promote(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), "pow", backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._promote(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            a, b = self.data, other.data
            g = np.asarray(g)
            if self.requires_grad:
                if a.ndim == 1 and b.ndim == 1:      # dot product
                    ga = g * b
                elif b.ndim == 1:                    # (n,k) @ (k,) -> (n,)
                    ga = np.outer(g, b)
                elif a.ndim == 1:                    # (k,) @ (k,m) -> (m,)
                    ga = b @ g
                else:                                # batched/2-D matmul
                    ga = g @ b.swapaxes(-1, -2)
                self._accumulate(ga.reshape(a.shape))
            if other.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    gb = g * a
                elif b.ndim == 1:                    # (n,k) @ (k,)
                    gb = a.T @ g
                elif a.ndim == 1:                    # (k,) @ (k,m)
                    gb = np.outer(a, g)
                else:
                    gb = a.swapaxes(-1, -2) @ g
                other._accumulate(gb.reshape(b.shape))

        return Tensor._make(out_data, (self, other), "matmul", backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(np.asarray(out_data), (self,), "sum", backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            full_max = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full_max)
            # Split gradient between ties (matches numerical subgradient).
            counts = mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(mask * grad / counts)

        return Tensor._make(np.asarray(out_data), (self,), "max", backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), "log", backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), "tanh", backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (self.data > 0))

        return Tensor._make(out_data, (self,), "relu", backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), "sigmoid", backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data))

        return Tensor._make(out_data, (self,), "abs", backward)

    def clamp(self, min_value=None, max_value=None) -> "Tensor":
        out_data = np.clip(self.data, min_value, max_value)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                mask = np.ones_like(self.data, dtype=bool)
                if min_value is not None:
                    mask &= self.data >= min_value
                if max_value is not None:
                    mask &= self.data <= max_value
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), "clamp", backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(g).reshape(self.data.shape))

        return Tensor._make(out_data, (self,), "reshape", backward)

    view = reshape

    def transpose(self, *axes) -> "Tensor":
        axes_tuple = axes if axes else None
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_tuple = tuple(axes[0])
        out_data = self.data.transpose(axes_tuple) if axes_tuple else self.data.T

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_tuple:
                inverse = np.argsort(axes_tuple)
                self._accumulate(np.asarray(g).transpose(inverse))
            else:
                self._accumulate(np.asarray(g).T)

        return Tensor._make(out_data, (self,), "transpose", backward)

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        if isinstance(index, tuple):
            index = tuple(i.data if isinstance(i, Tensor) else i for i in index)
        out_data = self.data[index]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, g)
                self._accumulate(grad)

        return Tensor._make(np.asarray(out_data), (self,), "getitem", backward)

    # ------------------------------------------------------------------
    # comparisons (produce detached float/bool arrays; no gradients)
    # ------------------------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data == other)

    def __ne__(self, other):  # type: ignore[override]
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data != other)

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other)

    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other)

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------
    # reductions returning plain arrays
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def argmin(self, axis=None) -> np.ndarray:
        return self.data.argmin(axis=axis)

    # ------------------------------------------------------------------
    # in-place data mutation (leaf tensors only; no graph recording)
    # ------------------------------------------------------------------
    def mul_(self, other) -> "Tensor":
        """In-place multiply of the underlying data (torch semantics)."""

        self.data *= np.asarray(other.data if isinstance(other, Tensor) else other,
                                dtype=self.data.dtype)
        return self

    def add_(self, other) -> "Tensor":
        self.data += np.asarray(other.data if isinstance(other, Tensor) else other,
                                dtype=self.data.dtype)
        return self

    def zero_(self) -> "Tensor":
        self.data[...] = 0
        return self

    def fill_(self, value) -> "Tensor":
        self.data[...] = value
        return self

    def zero_grad(self) -> None:
        self.grad = None


# ----------------------------------------------------------------------
# module-level constructors (torch-like)
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Build a tensor from array-like data."""

    return Tensor(data, requires_grad=requires_grad)


def from_numpy(array: np.ndarray) -> Tensor:
    """Wrap an ndarray without copying (dtype preserved when float32/int64)."""

    t = Tensor.__new__(Tensor)
    arr = np.asarray(array)
    if arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    elif arr.dtype.kind in "iu" and arr.dtype != np.int64:
        arr = arr.astype(np.int64)
    t.data = arr
    t.grad = None
    t.requires_grad = False
    t._backward = None
    t._prev = ()
    t._op = "from_numpy"
    return t


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def arange(*args, **kwargs) -> Tensor:
    return Tensor(np.arange(*args, **kwargs))


def rand(*shape, rng: np.random.Generator | None = None,
         requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.random(shape, dtype=np.float32), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None,
          requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(np.float32),
                  requires_grad=requires_grad)
