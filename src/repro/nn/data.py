"""Mini-batch dataset and loader utilities (the ``torch.utils.data`` analogue).

The paper's training loop iterates ``for X_batch, y_batch in
dataset_data.train_loader`` — :class:`DataLoader` provides that protocol,
with deterministic shuffling via an injectable :class:`numpy.random.Generator`
(seeded RNGs everywhere is a project-wide invariant; see ``repro.rng``).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
import scipy.sparse as sp

from .autograd import Tensor, from_numpy

__all__ = ["TensorDataset", "DataLoader"]


def _to_array(x) -> np.ndarray:
    if isinstance(x, Tensor):
        return x.data
    if sp.issparse(x):
        # toarray() — todense() materializes a deprecated np.matrix
        # plus an extra copy.
        return x.toarray()
    return np.asarray(x)


class TensorDataset:
    """Tuple-of-arrays dataset with aligned first dimensions."""

    def __init__(self, *arrays):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        self.arrays: tuple[np.ndarray, ...] = tuple(_to_array(a) for a in arrays)
        n = self.arrays[0].shape[0]
        for a in self.arrays:
            if a.shape[0] != n:
                raise ValueError("all arrays must share the first dimension")
        self._length = n

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index) -> tuple[np.ndarray, ...]:
        return tuple(a[index] for a in self.arrays)


class DataLoader:
    """Iterate a dataset in (optionally shuffled) mini-batches of Tensors.

    Parameters
    ----------
    dataset:
        A :class:`TensorDataset` (or anything with ``__len__`` and
        array-returning ``__getitem__``).
    batch_size:
        Mini-batch size; the final partial batch is yielded unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle indices at the start of every epoch.
    rng:
        Deterministic generator used for shuffling.
    """

    def __init__(self, dataset: TensorDataset, batch_size: int = 64,
                 shuffle: bool = False, drop_last: bool = False,
                 rng: np.random.Generator | None = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[Tensor, ...]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and idx.size < self.batch_size:
                break
            batch = self.dataset[idx]
            yield tuple(from_numpy(np.ascontiguousarray(a)) for a in batch)
