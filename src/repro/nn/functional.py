"""Functional tensor operations (the ``torch.nn.functional`` analogue).

The paper's Listing 2 extends the top input layer with
``torch.nn.functional.pad(input=w, pad=(0, k), mode='constant', value=0)``;
:func:`pad` implements exactly those semantics so the growing-model code
reads the same as the paper's.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = [
    "pad",
    "linear",
    "relu",
    "softmax",
    "log_softmax",
    "softmax_inplace",
    "one_hot",
    "dropout",
]


def pad(input: Tensor | np.ndarray, pad: tuple[int, ...],
        mode: str = "constant", value: float = 0.0) -> Tensor | np.ndarray:
    """Pad the trailing dimensions of a tensor, torch-style.

    ``pad`` is given as ``(left_last, right_last, left_second_last, ...)``
    — pairs applying from the **last** dimension backwards, exactly as in
    ``torch.nn.functional.pad``.  Only ``mode='constant'`` is supported
    (the only mode the paper uses).

    Works on both :class:`Tensor` (differentiable: gradient of the padded
    region is discarded) and raw ndarrays (used on state-dict entries).
    """

    if mode != "constant":
        raise NotImplementedError("only constant padding is implemented")
    if len(pad) % 2 != 0:
        raise ValueError("pad must contain (before, after) pairs")

    is_tensor = isinstance(input, Tensor)
    data = input.data if is_tensor else np.asarray(input)
    npairs = len(pad) // 2
    if npairs > data.ndim:
        raise ValueError("pad has more pairs than input dimensions")

    width = [(0, 0)] * data.ndim
    for i in range(npairs):
        axis = data.ndim - 1 - i
        width[axis] = (int(pad[2 * i]), int(pad[2 * i + 1]))
    out_data = np.pad(data, width, mode="constant", constant_values=value)

    if not is_tensor:
        return out_data

    src = input
    slices = tuple(slice(before, before + data.shape[ax])
                   for ax, (before, _after) in enumerate(width))

    def backward(g: np.ndarray) -> None:
        if src.requires_grad:
            src._accumulate(np.asarray(g)[slices])

    return Tensor._make(out_data, (src,), "pad", backward)


def linear(input: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``y = x @ W.T + b`` with torch's (out_features, in_features) layout."""

    out = input @ weight.T
    if bias is not None:
        out = out + bias
    return out


def relu(input: Tensor) -> Tensor:
    """Rectified linear unit."""

    return input.relu()


def softmax(input: Tensor, dim: int = -1) -> Tensor:
    """Numerically-stable softmax along ``dim``."""

    shifted = input - input.max(axis=dim, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=dim, keepdims=True)


def softmax_inplace(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax computed **in place** on a float logits array.

    The inference-side counterpart of :func:`softmax`: no autograd, no
    temporaries beyond the per-row max/sum reductions — shift, ``exp``,
    and normalize all write back into ``logits``.  Both
    :class:`~repro.core.InferencePlan`'s output head and
    ``MLPClassifier.predict_proba`` share this pass.  The caller must
    own ``logits`` (it is destroyed) and it must be a float array.
    """

    logits -= logits.max(axis=-1, keepdims=True)
    np.exp(logits, out=logits)
    logits /= logits.sum(axis=-1, keepdims=True)
    return logits


def log_softmax(input: Tensor, dim: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``dim``."""

    shifted = input - input.max(axis=dim, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=dim, keepdims=True).log()


def one_hot(labels: Tensor | np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding of integer labels (returns an ndarray)."""

    idx = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
    idx = idx.astype(np.int64).ravel()
    if idx.size and (idx.min() < 0 or idx.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    out = np.zeros((idx.size, num_classes), dtype=np.float32)
    out[np.arange(idx.size), idx] = 1.0
    return out


def dropout(input: Tensor, p: float = 0.5, training: bool = True,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""

    if not training or p <= 0.0:
        return input
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    rng = rng or np.random.default_rng()
    mask = (rng.random(input.shape) >= p).astype(np.float32) / (1.0 - p)
    return input * Tensor(mask)
