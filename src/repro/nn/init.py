"""Parameter initialization schemes.

``kaiming_uniform`` replicates the default initializer of
``torch.nn.Linear`` (Kaiming-uniform with ``a=sqrt(5)``, which reduces to
``U(-1/sqrt(fan_in), +1/sqrt(fan_in))`` for the weight matrix), keeping the
reproduction's starting conditions statistically equivalent to the paper's.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "uniform", "zeros", "normal"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError("fan computation needs at least 2 dimensions")
    fan_out, fan_in = shape[0], shape[1]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return fan_in * receptive, fan_out * receptive


def kaiming_uniform(shape: tuple[int, ...], a: float = math.sqrt(5),
                    rng: np.random.Generator | None = None) -> np.ndarray:
    """Kaiming-uniform init (torch's Linear default when ``a=sqrt(5)``)."""

    rng = rng or np.random.default_rng()
    fan_in, _ = _fans(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], gain: float = 1.0,
                   rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""

    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform(shape: tuple[int, ...], low: float = 0.0, high: float = 1.0,
            rng: np.random.Generator | None = None) -> np.ndarray:
    """Uniform init over [low, high)."""

    rng = rng or np.random.default_rng()
    return rng.uniform(low, high, size=shape).astype(np.float32)


def normal(shape: tuple[int, ...], mean: float = 0.0, std: float = 1.0,
           rng: np.random.Generator | None = None) -> np.ndarray:
    """Gaussian init."""

    rng = rng or np.random.default_rng()
    return (rng.standard_normal(size=shape) * std + mean).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (used for newly appended input-feature columns)."""

    return np.zeros(shape, dtype=np.float32)
