"""Loss functions.

:class:`CrossEntropyLoss` follows torch semantics precisely, including the
per-class ``weight`` vector the paper uses to up-weight Group 0 by a factor
of 200: with ``reduction='mean'`` the weighted negative log-likelihoods are
divided by the **sum of the weights of the participating targets** (not the
batch size), matching ``torch.nn.CrossEntropyLoss``.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .autograd import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "L1Loss", "NLLLoss"]


class _Loss:
    """Base class for losses; instances are callable like modules."""

    def __init__(self, reduction: str = "mean"):
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def __call__(self, input: Tensor, target) -> Tensor:
        return self.forward(input, target)

    def forward(self, input: Tensor, target) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def _reduce(self, per_sample: Tensor) -> Tensor:
        if self.reduction == "mean":
            return per_sample.mean()
        if self.reduction == "sum":
            return per_sample.sum()
        return per_sample


class CrossEntropyLoss(_Loss):
    """Softmax cross-entropy over logits with optional class weights.

    Parameters
    ----------
    weight:
        Optional length-``C`` array of per-class weights (the paper sets
        ``[200, 1, 1, ..., 1]`` to prioritize Group 0).
    reduction:
        ``'mean'`` (weighted mean, torch semantics), ``'sum'`` or ``'none'``.
    """

    def __init__(self, weight: np.ndarray | Tensor | None = None,
                 reduction: str = "mean"):
        super().__init__(reduction)
        if weight is not None:
            weight = weight.data if isinstance(weight, Tensor) else np.asarray(weight)
            weight = weight.astype(np.float32).ravel()
            if np.any(weight < 0):
                raise ValueError("class weights must be non-negative")
        self.weight = weight

    def forward(self, input: Tensor, target) -> Tensor:
        target_idx = (target.data if isinstance(target, Tensor)
                      else np.asarray(target)).astype(np.int64).ravel()
        n, c = input.shape
        if target_idx.shape[0] != n:
            raise ValueError("target length does not match batch size")
        if target_idx.size and (target_idx.min() < 0 or target_idx.max() >= c):
            raise ValueError("target class index out of range")

        log_probs = F.log_softmax(input, dim=1)
        picked = log_probs[(np.arange(n), target_idx)]
        nll = -picked
        if self.weight is not None:
            w = self.weight[target_idx]
            nll = nll * Tensor(w)
            if self.reduction == "mean":
                return nll.sum() / float(w.sum())
        return self._reduce(nll)


class NLLLoss(_Loss):
    """Negative log-likelihood over log-probabilities."""

    def __init__(self, weight: np.ndarray | None = None, reduction: str = "mean"):
        super().__init__(reduction)
        self.weight = None if weight is None else np.asarray(weight, dtype=np.float32)

    def forward(self, input: Tensor, target) -> Tensor:
        target_idx = (target.data if isinstance(target, Tensor)
                      else np.asarray(target)).astype(np.int64).ravel()
        n = input.shape[0]
        picked = input[(np.arange(n), target_idx)]
        nll = -picked
        if self.weight is not None:
            w = self.weight[target_idx]
            nll = nll * Tensor(w)
            if self.reduction == "mean":
                return nll.sum() / float(w.sum())
        return self._reduce(nll)


class MSELoss(_Loss):
    """Mean squared error."""

    def forward(self, input: Tensor, target) -> Tensor:
        target_t = target if isinstance(target, Tensor) else Tensor(target)
        diff = input - target_t.detach()
        return self._reduce((diff * diff).reshape(-1))


class L1Loss(_Loss):
    """Mean absolute error."""

    def forward(self, input: Tensor, target) -> Tensor:
        target_t = target if isinstance(target, Tensor) else Tensor(target)
        return self._reduce((input - target_t.detach()).abs().reshape(-1))
