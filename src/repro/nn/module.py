"""Neural-network module system (the ``torch.nn`` analogue).

Implements the exact surface the paper's Listings 1–3 rely on:

* ``nn.Sequential(OrderedDict([('fc1', nn.Linear(...)), ...]))``
* ``model.state_dict()`` / ``model.load_state_dict(sd)`` with dotted keys
  such as ``'fc1.weight'`` whose values are raw arrays that can be padded
  before restoring (Listing 2),
* ``model.named_parameters()`` for the per-parameter gradient-damping loop
  (Listing 3),
* ``param.requires_grad = False`` freezing,
* ``model.train()`` / ``model.eval()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from . import functional as F
from . import init
from .autograd import Tensor

__all__ = ["Parameter", "Module", "Linear", "Sequential", "ReLU", "Tanh",
           "Sigmoid", "Identity", "Dropout"]


class Parameter(Tensor):
    """A tensor registered as a trainable module parameter."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute routing ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            object.__setattr__(self, name, value)
        elif isinstance(value, Module):
            self._modules[name] = value
            object.__setattr__(self, name, value)
        else:
            object.__setattr__(self, name, value)

    # -- forward ----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter iteration ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""

        for name, param in self._parameters.items():
            yield (prefix + name if prefix else name), param
        for mod_name, module in self._modules.items():
            sub_prefix = f"{prefix}{mod_name}." if prefix else f"{mod_name}."
            yield from module.named_parameters(sub_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _name, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            sub_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(sub_prefix)

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- train / eval -------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- device / dtype shim --------------------------------------------------
    def to(self, device=None, dtype=None) -> "Module":
        """No-op device move plus optional dtype cast (CPU-only framework)."""

        if dtype is not None:
            for _name, param in self.named_parameters():
                param.data = param.data.astype(dtype)
        return self

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of every parameter keyed by dotted name.

        Values are plain ndarrays so callers can reshape/pad them before
        restoring — the manipulation at the heart of the growing model.
        """

        return OrderedDict((name, param.data.copy())
                           for name, param in self.named_parameters())

    def load_state_dict(self, state_dict, strict: bool = True) -> None:
        """Restore parameters from dotted-name → array mapping.

        With ``strict=True`` (default) the key sets must match exactly and
        every shape must match, mirroring torch's behaviour.
        """

        params = dict(self.named_parameters())
        missing = set(params) - set(state_dict)
        unexpected = set(state_dict) - set(params)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}")
        for name, value in state_dict.items():
            if name not in params:
                continue
            param = params[name]
            value = np.asarray(value, dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': "
                    f"model {param.data.shape} vs state {value.shape}")
            param.data = value.copy()
            param.grad = None

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- misc -------------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            sub = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {sub}")
        lines.append(")")
        return "\n".join(lines)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with torch's weight layout.

    ``weight`` has shape ``(out_features, in_features)``; consequently
    ``weight.size(dim=1)`` is the input-feature count — the quantity the
    paper reads back from the state dict to detect that the feature array
    has grown (Listing 2).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng()
        weight = init.kaiming_uniform((out_features, in_features), rng=rng)
        self.weight = Parameter(weight)
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(
                rng.uniform(-bound, bound, size=out_features).astype(np.float32))
        else:
            self.bias = None  # type: ignore[assignment]

    def forward(self, input: Tensor) -> Tensor:
        if input.shape[-1] != self.weight.data.shape[1]:
            raise ValueError(
                f"Linear expected {self.weight.data.shape[1]} input features, "
                f"got {input.shape[-1]}")
        return F.linear(input, self.weight, self.bias)

    def extra_repr(self) -> str:
        return (f"in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self.bias is not None}")


class Sequential(Module):
    """Chain of modules applied in order.

    Accepts either an ``OrderedDict`` (paper style, giving layers stable
    names such as ``fc1``/``fc2``) or positional modules (auto-named
    ``'0'``, ``'1'``, ...).
    """

    def __init__(self, *args):
        super().__init__()
        if len(args) == 1 and isinstance(args[0], (OrderedDict, dict)):
            items = args[0].items()
        else:
            items = ((str(i), m) for i, m in enumerate(args))
        for name, module in items:
            if not isinstance(module, Module):
                raise TypeError(f"Sequential entries must be Modules, got {type(module)}")
            setattr(self, name, module)

    def forward(self, input: Tensor) -> Tensor:
        out = input
        for module in self._modules.values():
            out = module(out)
        return out

    def __getitem__(self, key: str | int) -> Module:
        if isinstance(key, int):
            return list(self._modules.values())[key]
        return self._modules[key]

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())


class ReLU(Module):
    """Elementwise rectifier module."""

    def forward(self, input: Tensor) -> Tensor:
        return input.relu()


class Tanh(Module):
    """Elementwise hyperbolic-tangent module."""

    def forward(self, input: Tensor) -> Tensor:
        return input.tanh()


class Sigmoid(Module):
    """Elementwise logistic module."""

    def forward(self, input: Tensor) -> Tensor:
        return input.sigmoid()


class Identity(Module):
    """Pass-through module."""

    def forward(self, input: Tensor) -> Tensor:
        return input


class Dropout(Module):
    """Inverted dropout (active only in training mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, input: Tensor) -> Tensor:
        return F.dropout(input, p=self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"
