"""Gradient-descent optimizers.

:class:`Adam` reproduces ``torch.optim.Adam`` (RMSProp-style second moment
plus momentum and bias correction — the paper's Section IV.B describes
exactly this and uses ``lr=0.05``).  Optimizers skip parameters whose
``requires_grad`` flag is False *at step time*, which is what makes the
paper's per-batch freeze/unfreeze dance in Listing 3 effective.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list and per-parameter state."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        seen: set[int] = set()
        for p in self.params:
            if id(p) in seen:
                raise ValueError("duplicate parameter in optimizer")
            seen.add(id(p))
        self.state: dict[int, dict] = {}

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""

        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serializable optimizer state (per-parameter slots by position)."""

        return {
            "state": {i: {k: (v.copy() if isinstance(v, np.ndarray) else v)
                          for k, v in self.state.get(id(p), {}).items()}
                      for i, p in enumerate(self.params)},
        }

    def load_state_dict(self, sd: dict) -> None:
        for i, p in enumerate(self.params):
            if i in sd["state"] or str(i) in sd["state"]:
                slot = sd["state"].get(i, sd["state"].get(str(i)))
                self.state[id(p)] = {k: (v.copy() if isinstance(v, np.ndarray) else v)
                                     for k, v in slot.items()}


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov

    def step(self) -> None:
        for p in self.params:
            if not p.requires_grad or p.grad is None:
                continue
            g = np.asarray(p.grad, dtype=p.data.dtype)
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                slot = self.state.setdefault(id(p), {})
                buf = slot.get("momentum_buffer")
                if buf is None:
                    buf = g.copy()
                else:
                    buf *= self.momentum
                    buf += g
                slot["momentum_buffer"] = buf
                g = g + self.momentum * buf if self.nesterov else buf
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first/second moment estimates.

    ``weight_decay`` is the classic *coupled* L2 (added to the gradient,
    flowing through the moments, as in ``torch.optim.Adam``).
    ``decoupled_weight_decay`` is the AdamW formulation — a post-update
    shrink ``p *= 1 - lr·wd`` that bypasses the adaptive scaling — and
    is what :class:`~repro.learn.MLPClassifier` uses for its ``alpha``
    penalty instead of building a per-batch ``(p*p).sum()`` autograd
    graph.  ``decay_params`` restricts the decoupled decay to a subset
    of parameters (sklearn penalizes weights only, never biases).  The
    shrink formulation matches :meth:`repro.core.TrainPlan.step`
    exactly, so fused and eager training decay identically.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0,
                 decoupled_weight_decay: float = 0.0,
                 decay_params: Iterable[Tensor] | None = None):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        if weight_decay and decoupled_weight_decay:
            raise ValueError("choose coupled or decoupled weight decay, "
                             "not both")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled_weight_decay = decoupled_weight_decay
        if decay_params is None:
            self._decay_ids = None
        else:
            self._decay_ids = {id(p) for p in decay_params}
            unknown = self._decay_ids - {id(p) for p in self.params}
            if unknown:
                raise ValueError("decay_params must be a subset of the "
                                 "optimized parameters")

    def step(self) -> None:
        beta1, beta2 = self.betas
        shrink = 1.0 - self.lr * self.decoupled_weight_decay
        for p in self.params:
            if not p.requires_grad or p.grad is None:
                continue
            g = np.asarray(p.grad, dtype=np.float32)
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            slot = self.state.setdefault(id(p), {})
            if "step" not in slot:
                slot["step"] = 0
                slot["exp_avg"] = np.zeros_like(p.data, dtype=np.float32)
                slot["exp_avg_sq"] = np.zeros_like(p.data, dtype=np.float32)
            slot["step"] += 1
            t = slot["step"]
            m, v = slot["exp_avg"], slot["exp_avg_sq"]
            m *= beta1
            m += (1 - beta1) * g
            v *= beta2
            v += (1 - beta2) * (g * g)
            m_hat = m / (1 - beta1 ** t)
            v_hat = v / (1 - beta2 ** t)
            p.data -= (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(p.data.dtype)
            if self.decoupled_weight_decay and (
                    self._decay_ids is None or id(p) in self._decay_ids):
                p.data *= shrink
