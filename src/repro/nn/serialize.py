"""Model checkpointing: state-dict persistence to ``.npz`` files.

Replaces ``torch.save`` / ``torch.load`` in the paper's Listings 1–2.
A state dict is an ordered mapping of dotted parameter names to ndarrays;
``save`` writes it losslessly to NumPy's zip format and ``load`` restores
it with the original key order, so the paper's

    model_state_dict = torch.load(model_file_path)
    model.load_state_dict(model_state_dict)

becomes

    model_state_dict = serialize.load(model_file_path)
    model.load_state_dict(model_state_dict)

:func:`dumps` / :func:`loads` are the in-memory counterparts used by the
serving layer to publish model copies between threads without touching
disk (``repro.serve.ModelHandle``).
"""

from __future__ import annotations

import io
import os
from collections import OrderedDict
from pathlib import Path

import numpy as np

__all__ = ["save", "load", "dumps", "loads"]

_ORDER_KEY = "__key_order__"


def _write(handle, state_dict) -> None:
    if _ORDER_KEY in state_dict:
        raise ValueError(f"{_ORDER_KEY!r} is a reserved key")
    arrays = {key: np.asarray(value) for key, value in state_dict.items()}
    arrays[_ORDER_KEY] = np.array(list(state_dict.keys()), dtype=object)
    np.savez(handle, **{_escape(k): v for k, v in arrays.items()})


def _read(handle, origin) -> "OrderedDict[str, np.ndarray]":
    with np.load(handle, allow_pickle=True) as payload:
        escaped = {key: payload[key] for key in payload.files}
    order_key = _escape(_ORDER_KEY)
    if order_key not in escaped:
        raise ValueError(f"{origin} is not a repro.nn checkpoint")
    order = [str(k) for k in escaped.pop(order_key)]
    by_name = {_unescape(k): v for k, v in escaped.items()}
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in order:
        out[name] = by_name[name]
    return out


def save(state_dict, path: str | os.PathLike,
         atomic: bool = False) -> None:
    """Persist a dotted-name → ndarray mapping to ``path`` (.npz).

    Key order is preserved through a sidecar entry so that ``load`` returns
    an :class:`~collections.OrderedDict` identical to the input.

    With ``atomic=True`` the bytes land in a same-directory temp file
    that is fsynced and then renamed over ``path``, so a crash mid-write
    can never leave a torn checkpoint under the final name — readers see
    either the old complete file or the new complete file.
    """

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not atomic:
        with open(path, "wb") as handle:
            _write(handle, state_dict)
        return
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            _write(handle, state_dict)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def load(path: str | os.PathLike) -> "OrderedDict[str, np.ndarray]":
    """Load a state dict previously written by :func:`save`."""

    return _read(path, origin=path)


def dumps(state_dict) -> bytes:
    """Serialize a state dict to bytes (same format as :func:`save`)."""

    buffer = io.BytesIO()
    _write(buffer, state_dict)
    return buffer.getvalue()


def loads(data: bytes) -> "OrderedDict[str, np.ndarray]":
    """Restore a state dict previously produced by :func:`dumps`."""

    return _read(io.BytesIO(data), origin="<bytes>")


# np.savez forbids '/' in member names on some platforms; dots are fine but
# escape defensively so arbitrary parameter names round-trip.
def _escape(key: str) -> str:
    return key.replace("/", "\\slash ")


def _unescape(key: str) -> str:
    return key.replace("\\slash ", "/")
