"""Deterministic random-number plumbing.

Every stochastic component in the library (trace generation, shuffling,
weight init, SGD sampling) takes an explicit ``numpy.random.Generator``.
This module provides the conventions for deriving independent child
generators from a single experiment seed so that whole paper-scale
experiments replay bit-identically.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "spawn", "derive"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """A fresh PCG64 generator from an integer seed (None = nondeterministic)."""

    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent children."""

    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def derive(seed: int, *tags: str | int) -> np.random.Generator:
    """Derive a named child generator: same (seed, tags) → same stream.

    Used to give each subsystem (e.g. ``derive(seed, "trace", "2019c")``)
    its own stream without the subsystems perturbing each other when one
    of them changes how much randomness it consumes.
    """

    entropy = [seed] + [zlib.crc32(t.encode()) if isinstance(t, str) else int(t)
                        for t in tags]
    return np.random.default_rng(np.random.SeedSequence(entropy))
