"""``repro.serve`` — real-time inference service for the Task CO Analyzer.

The production counterpart of the simulated Figure 3 loop: a
thread-safe, hot-swappable model slot (:class:`ModelHandle`), a
microbatching request queue (:class:`MicroBatcher`), a background
trainer that retrains as constraint vocabulary grows
(:class:`BackgroundTrainer`), the :class:`ClassificationService` facade
composing them, and an open-loop :class:`LoadGenerator` measuring
throughput and tail latency.

Quickstart::

    from repro.serve import ClassificationService, LoadGenerator

    service = ClassificationService(model, result.registry).start()
    report = LoadGenerator(service, result.tasks, result.labels,
                           rate=5000, duration_s=5,
                           observe_every=4).run()
    service.close()
    print(report)
"""

from .handle import ModelHandle, ModelSnapshot
from .loadgen import LoadGenerator, LoadTestReport, arrival_offsets
from .metrics import LatencyStats, ServiceStats
from .microbatch import ClassifyRequest, MicroBatcher
from .service import ClassificationService
from .trainer import BackgroundTrainer, ServeUpdate

__all__ = [
    "ModelHandle", "ModelSnapshot",
    "MicroBatcher", "ClassifyRequest",
    "BackgroundTrainer", "ServeUpdate",
    "ClassificationService",
    "LoadGenerator", "LoadTestReport", "arrival_offsets",
    "LatencyStats", "ServiceStats",
]
