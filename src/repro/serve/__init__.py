"""``repro.serve`` — real-time inference service for the Task CO Analyzer.

The production counterpart of the simulated Figure 3 loop: a
thread-safe, hot-swappable model slot (:class:`ModelHandle`) that
publishes ``(model, compiled InferencePlan)`` pairs atomically, a
sharded microbatching request queue (:class:`MicroBatcher`) serving
batches sparse-end-to-end through the fused plan (eager ``Module``
fallback via ``compile=False``), a background trainer that retrains as
constraint vocabulary grows (:class:`BackgroundTrainer`), cell-aware
backpressure and batch autotuning (:class:`AdmissionController`,
:class:`AutoTuner`), the :class:`ClassificationService` facade
composing them, a multi-cell dispatch layer owning one stack per
computing cell (:class:`CellRouter`), and an open-loop
:class:`LoadGenerator` measuring throughput, tail latency, and
shed/accept rates.

Quickstart::

    from repro.serve import ClassificationService, LoadGenerator

    service = ClassificationService(model, result.registry,
                                    n_workers=4).start()
    report = LoadGenerator(service, result.tasks, result.labels,
                           rate=5000, duration_s=5,
                           observe_every=4).run()
    service.close()
    print(report)

Multi-cell::

    from repro.serve import CellRouter, LoadGenerator

    router = CellRouter(n_workers=2)
    router.add_cell("2019a", model_a, registry_a)
    router.add_cell("2019c", model_c, registry_c)
    with router:
        report = LoadGenerator(
            router, corpora={"2019a": (tasks_a, labels_a),
                             "2019c": (tasks_c, labels_c)},
            rate=8000, duration_s=5, swap_midstream=True).run()
    print(report)  # per-cell counts + misroute audit
"""

from .admission import SHED_POLICIES, AdmissionController, AutoTuner
from .handle import CandidateRoute, ModelHandle, ModelSnapshot
from .http import DEFAULT_CELL, HttpIngress, create_app
from .loadgen import LoadGenerator, LoadTestReport, arrival_offsets
from .metrics import LatencyStats, RouterStats, ServiceStats
from .microbatch import ClassifyRequest, MicroBatcher
from .persistence import (AsyncCheckpointer, CellCheckpoint,
                          CheckpointStore, CorruptCheckpointError)
from .rollout import (ROLLBACK_SIGNALS, OfferOutcome, ReplayRing,
                      RolloutController, RolloutPolicy, ShadowVerdict)
from .router import CellRouter
from .service import ClassificationService
from .supervise import (BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN,
                        CircuitBreaker, Supervisor)
from .telemetry import (EventLog, HistogramSnapshot, ServeEvent,
                        StageTimings, StreamingHistogram, Telemetry,
                        render_prometheus)
from .trainer import BackgroundTrainer, ServeUpdate

__all__ = [
    "ModelHandle", "ModelSnapshot", "CandidateRoute",
    "MicroBatcher", "ClassifyRequest",
    "RolloutPolicy", "RolloutController", "ReplayRing",
    "OfferOutcome", "ShadowVerdict", "ROLLBACK_SIGNALS",
    "AdmissionController", "AutoTuner", "SHED_POLICIES",
    "BackgroundTrainer", "ServeUpdate",
    "ClassificationService",
    "CellRouter",
    "LoadGenerator", "LoadTestReport", "arrival_offsets",
    "LatencyStats", "ServiceStats", "RouterStats",
    "Telemetry", "StreamingHistogram", "StageTimings",
    "HistogramSnapshot", "EventLog", "ServeEvent", "render_prometheus",
    "HttpIngress", "create_app", "DEFAULT_CELL",
    "CheckpointStore", "CellCheckpoint", "AsyncCheckpointer",
    "CorruptCheckpointError",
    "CircuitBreaker", "Supervisor",
    "BREAKER_CLOSED", "BREAKER_HALF_OPEN", "BREAKER_OPEN",
]
