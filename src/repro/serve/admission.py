"""Adaptive admission control for the serving stack.

An open-loop task stream does not care how fast the Task CO Analyzer
is: when bursty arrivals outrun a cell's drain rate, the microbatcher's
queue — and therefore every queued request's latency — grows without
bound.  Related RL schedulers ("A HPC Co-Scheduler with Reinforcement
Learning", "Deep Reinforcement Agent for Scheduling in HPC") make the
same point about online policies under adversarial load: a real-time
component must *fail fast and bounded*, not slowly and unboundedly.

Two cooperating pieces, both wired through
:class:`~repro.serve.MicroBatcher`:

* :class:`AdmissionController` — per-cell backpressure.  It tracks the
  queue depth, an EWMA of the observed arrival rate, and an EWMA of the
  batch service rate, and sheds work (a typed
  :class:`~repro.errors.OverloadedError` carrying a retry-after hint)
  whenever admitting one more request would blow a configurable latency
  budget or a hard queue cap.  Policy ``"reject"`` refuses the new
  arrival; ``"drop-oldest"`` evicts the stalest queued request instead,
  which favours fresh work during a burst.
* :class:`AutoTuner` — batch-size / max-wait autotuning.  Small batches
  and short waits at low load keep latency down; under a burst the
  tuner grows the batch toward its cap so the model's vectorization
  pays for the queue.  Recommendations follow an EWMA of the arrival
  rate and are applied with hysteresis so constant load converges to a
  fixed operating point instead of oscillating.

Both take an injectable ``clock`` so tests can drive them
deterministically.
"""

from __future__ import annotations

import math
import time

from ..analysis.concur.runtime import new_lock

__all__ = ["SHED_POLICIES", "AdmissionController", "AutoTuner"]

SHED_POLICIES = ("reject", "drop-oldest")


class _ArrivalRateEstimator:
    """Gap-EWMA arrival-rate estimate shared by controller and tuner."""

    __slots__ = ("alpha", "_clock", "_gap_ewma", "_last")

    def __init__(self, alpha: float, clock):
        self.alpha = alpha
        self._clock = clock
        self._gap_ewma: float | None = None
        self._last: float | None = None

    def observe(self) -> None:
        now = self._clock()
        if self._last is not None:
            gap = max(now - self._last, 1e-9)
            self._gap_ewma = (gap if self._gap_ewma is None else
                              self.alpha * gap
                              + (1.0 - self.alpha) * self._gap_ewma)
        self._last = now

    @property
    def rate(self) -> float:
        """Arrivals/second (0 until two arrivals were seen)."""

        return 0.0 if not self._gap_ewma else 1.0 / self._gap_ewma


class AdmissionController:
    """Decide, per arrival, whether a cell's queue can absorb one more.

    Parameters
    ----------
    latency_budget_ms:
        Shed when the projected queueing delay of a newly-admitted
        request (queue depth over the observed service rate, plus the
        batcher's current assembly wait) exceeds this budget.  ``None``
        disables the budget check.
    policy:
        ``"reject"`` refuses the arrival outright; ``"drop-oldest"``
        admits it and evicts the oldest queued request instead (the
        batcher owns the eviction — this object only decides).
    max_queue:
        Hard queue-depth cap, checked before the budget.  ``None``
        disables it.  At least one of ``latency_budget_ms`` /
        ``max_queue`` must be set.
    alpha:
        EWMA smoothing factor for the arrival- and service-time
        estimates.
    assumed_service_rate:
        Cold-start drain-rate estimate (tasks/second) used until the
        first batch is observed.  Deliberately conservative — the
        serving floor, not the expected capacity — so a cold cell
        sheds too eagerly rather than blowing its budget.
    headroom:
        Fraction of the budget the controller is willing to fill
        (default 0.85).  The projection is an *expectation* built from
        EWMA estimates; admitting right up to the budget would park the
        accepted tail exactly on it, so estimate noise and batch-grain
        variance must fit in the reserved remainder.
    """

    def __init__(self, latency_budget_ms: float | None = 50.0,
                 policy: str = "reject", max_queue: int | None = None,
                 alpha: float = 0.2,
                 assumed_service_rate: float = 5000.0,
                 headroom: float = 0.85,
                 arrivals: _ArrivalRateEstimator | None = None,
                 clock=time.monotonic):
        if latency_budget_ms is None and max_queue is None:
            raise ValueError("need a latency budget or a queue cap "
                             "(both None would admit everything)")
        if latency_budget_ms is not None and latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        if policy not in SHED_POLICIES:
            raise ValueError(f"policy must be one of {SHED_POLICIES}")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if assumed_service_rate <= 0:
            raise ValueError("assumed_service_rate must be positive")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        self.latency_budget_ms = latency_budget_ms
        self.policy = policy
        self.max_queue = max_queue
        self.alpha = alpha
        self.assumed_service_rate = assumed_service_rate
        self.headroom = headroom
        self._clock = clock
        # Workers report batches concurrently; the submit path only
        # reads the float (a stale estimate is fine, a torn read-modify-
        # write is not).
        self._rate_lock = new_lock("AdmissionController._rate_lock")
        self._cycle_mean_s: float | None = None  # guarded-by: _rate_lock
        self._cycle_dev_s = 0.0  # guarded-by: _rate_lock
        self._batch_mean = 0.0  # guarded-by: _rate_lock
        # ``arrivals`` lets the wirer share one estimator with an
        # AutoTuner watching the same stream (the caller then only
        # feeds one of them per arrival).
        self.arrivals = arrivals or _ArrivalRateEstimator(alpha, clock)
        # Outcome ledger, owned by the batcher (which alone knows
        # whether a shed decision rejected the arrival, evicted a
        # victim, or expired a queued request); updated under its
        # stats_lock.
        self.admitted_total = 0
        self.shed_total = 0

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def note_arrival(self) -> None:
        """Fold one arrival into the arrival-rate EWMA (submit path)."""

        self.arrivals.observe()

    def note_batch(self, n_tasks: int, elapsed_s: float) -> None:
        """Fold one completed batch into the service-time estimate.

        ``elapsed_s`` should be the worker's full cycle for the batch
        (end of its previous batch to end of this one) so queue-lock and
        scheduler contention count against capacity.  The unit smoothed
        is the *batch cycle*, not a per-task rate, for two reasons:
        smoothing rates is harmonically biased (one lucky fast batch
        spikes the estimated capacity), and dividing by batch size bakes
        the current size into the estimate — a service with fixed
        per-batch cost then looks slower the smaller its batches get,
        which clamps the queue, which shrinks the batches further (a
        shed death spiral).  Mean and mean absolute deviation are kept
        in the TCP-RTO shape; :meth:`evaluate` projects against
        mean + 2·dev so the estimate's own dispersion is priced in.
        """

        if n_tasks <= 0:
            return
        cycle = max(elapsed_s, 1e-9)
        with self._rate_lock:
            if self._cycle_mean_s is None:
                self._cycle_mean_s = cycle
                self._cycle_dev_s = cycle / 2.0
                self._batch_mean = float(n_tasks)
            else:
                self._cycle_dev_s += self.alpha * (
                    abs(cycle - self._cycle_mean_s) - self._cycle_dev_s)
                self._cycle_mean_s += self.alpha * (cycle
                                                    - self._cycle_mean_s)
                self._batch_mean += self.alpha * (n_tasks
                                                  - self._batch_mean)

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """Observed arrivals/second (0 until two arrivals were seen)."""

        return self.arrivals.rate

    @property
    def service_rate(self) -> float:
        """Observed mean per-worker drain rate, tasks/second (assumed
        until measured)."""

        with self._rate_lock:
            # Locked read: mean and batch size update as a pair in
            # note_batch; dividing one epoch's numerator by another's
            # denominator would misprice capacity mid-update.
            mean = self._cycle_mean_s
            batch_mean = self._batch_mean
        if mean is None or batch_mean <= 0:
            return self.assumed_service_rate
        return batch_mean / mean

    def pessimistic_cycle_s(self, batch_limit: int) -> float:
        """Batch-cycle seconds the gate plans with: mean + 2·dev.

        Before the first observation, assume a full ``batch_limit``
        batch at the conservative cold-start rate.
        """

        with self._rate_lock:
            # Locked pair read, same reason as service_rate: the
            # mean + 2·dev projection must come from one update epoch.
            mean = self._cycle_mean_s
            dev = self._cycle_dev_s
        if mean is None:
            return max(batch_limit, 1) / self.assumed_service_rate
        return mean + 2.0 * dev

    # ------------------------------------------------------------------
    # the decision
    # ------------------------------------------------------------------
    def evaluate(self, queue_depth: int, wait_us: int = 0,
                 batch_limit: int = 1, workers: int = 1) -> float | None:
        """``None`` to admit, else seconds the caller should back off.

        ``queue_depth`` is the depth the request would join behind;
        ``wait_us`` the batcher's current assembly window (part of the
        projected latency); ``batch_limit`` / ``workers`` describe how
        that queue will actually be drained — the projection counts the
        *full batches ahead* across the worker pool, so a deep queue
        served in large vectorized batches is not mistaken for a slow
        one.  The request's own batch is deliberately excluded — and a
        request joining ahead of any full batch is always admitted:
        gating bounds *queueing* delay, and shedding at an
        effectively-empty queue because the service itself is slow (or
        the budget is tighter than the assembly wait) would be a
        self-inflicted outage.  The dequeue-time cull still bounds
        realized staleness.  This method is pure decision — the batcher
        records the outcome in :attr:`admitted_total` /
        :attr:`shed_total`, since only it knows whether a shed decision
        rejected the arrival or evicted a victim instead.
        """

        retry_after: float | None = None
        if self.max_queue is not None and queue_depth >= self.max_queue:
            retry_after = (queue_depth - self.max_queue + 1) / \
                self.service_rate
        elif self.latency_budget_ms is not None:
            batches_ahead = queue_depth // max(batch_limit, 1)
            if batches_ahead:
                projected_s = (batches_ahead
                               * self.pessimistic_cycle_s(batch_limit)
                               / max(workers, 1) + wait_us / 1e6)
                excess_s = (projected_s
                            - self.headroom * self.latency_budget_ms / 1e3)
                if excess_s > 0:
                    retry_after = excess_s
        if retry_after is None:
            return None
        return max(retry_after, 1e-3)

    @property
    def expiry_ns(self) -> int | None:
        """Queue age (ns) past which a request is culled at dequeue.

        Gate projections are expectations over EWMA estimates; when the
        drain rate collapses *after* a request was admitted (scheduler
        contention, a slow batch), the gate cannot take the admission
        back — so workers shed requests that already outlived
        ``headroom × budget`` instead of serving them late.  Capacity
        is never spent on work that has already blown its budget, and
        every completed request's queue age is bounded by the cutoff.
        """

        if self.latency_budget_ms is None:
            return None
        return int(self.headroom * self.latency_budget_ms * 1e6)

    def snapshot(self) -> dict:
        """Point-in-time view of the estimates and decision counters."""

        return {
            "latency_budget_ms": self.latency_budget_ms,
            "policy": self.policy,
            "max_queue": self.max_queue,
            "arrival_rate": self.arrival_rate,
            "service_rate": self.service_rate,
            "admitted": self.admitted_total,
            "shed": self.shed_total,
        }


class AutoTuner:
    """Fit microbatch size / assembly wait to the observed arrival rate.

    The recommendation is a pure function of the arrival-rate EWMA:

    * target batch — the arrivals expected inside one full assembly
      window (``rate × max_wait_us``), clamped to ``[min_batch,
      max_batch]``: one-request batches at low load, capped batches
      under bursts;
    * target wait — the time needed to assemble that batch beyond its
      first request (with 1.5× slack), clamped to ``[min_wait_us,
      max_wait_us]``: a lone low-load request is never held.

    :meth:`update` applies a recommendation only when it moves more than
    ``hysteresis`` (relative) from the applied value, so constant load
    converges to one operating point instead of oscillating around a
    rounding boundary.  Not thread-safe by itself — the batcher calls it
    under its queue condition lock.
    """

    def __init__(self, min_batch: int = 1, max_batch: int = 256,
                 min_wait_us: int = 50, max_wait_us: int = 2000,
                 alpha: float = 0.1, hysteresis: float = 0.25,
                 clock=time.monotonic):
        if not 1 <= min_batch <= max_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if not 0 <= min_wait_us <= max_wait_us:
            raise ValueError("need 0 <= min_wait_us <= max_wait_us")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if hysteresis < 0:
            raise ValueError("hysteresis cannot be negative")
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.min_wait_us = min_wait_us
        self.max_wait_us = max_wait_us
        self.alpha = alpha
        self.hysteresis = hysteresis
        self.arrivals = _ArrivalRateEstimator(alpha, clock)
        # The applied operating point (latency-biased until load shows).
        self.batch = min_batch
        self.wait_us = min_wait_us

    def observe_arrival(self) -> None:
        """Fold one arrival into the rate estimate."""

        self.arrivals.observe()

    @property
    def arrival_rate(self) -> float:
        """Observed arrivals/second (0 until two arrivals were seen)."""

        return self.arrivals.rate

    def recommend(self) -> tuple[int, int]:
        """The (batch, wait_us) the current arrival rate asks for."""

        rate = self.arrival_rate
        if rate <= 0.0:
            return self.min_batch, self.min_wait_us
        expected = rate * self.max_wait_us / 1e6
        batch = min(max(math.ceil(expected), self.min_batch), self.max_batch)
        if batch <= 1:
            return batch, self.min_wait_us
        wait = math.ceil(1.5e6 * (batch - 1) / rate)
        return batch, min(max(wait, self.min_wait_us), self.max_wait_us)

    def update(self) -> tuple[int, int]:
        """Apply the recommendation (with hysteresis); returns it."""

        batch, wait = self.recommend()
        if abs(batch - self.batch) > self.hysteresis * self.batch:
            self.batch = batch
        if abs(wait - self.wait_us) > self.hysteresis * max(self.wait_us, 1):
            self.wait_us = wait
        return self.batch, self.wait_us
