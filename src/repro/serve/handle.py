"""Double-buffered model publication for the serving path.

The real-world half of the paper's Figure 3 promise — "updating ML model
runs in parallel and won't block or slow down the main cluster
scheduler" — is a publication point: the serving thread keeps reading the
*old* model until a background trainer atomically swaps in a new one.

:class:`ModelHandle` is that point.  Publication clones the incoming
model through the checkpoint codec (:mod:`repro.nn.serialize`), so the
trainer retains its own live copy and the served weights can never be
mutated mid-prediction; readers take an immutable :class:`ModelSnapshot`
and use it for a whole microbatch, which is what makes hot-swaps
atomic at batch granularity (no request is classified half by one model
version and half by another).

Publication also *compiles*: models exposing ``compile()`` (a
:class:`~repro.core.GrowingModel`) are exported to a fused
:class:`~repro.core.InferencePlan` stamped with the snapshot's version,
and the frozen snapshot carries the ``(model, plan)`` pair — swapping
the model and its compiled form is a single atomic publication, so a
worker can never pair a stale plan with a newer model.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from ..analysis.concur.runtime import new_lock
from ..core.inference_plan import InferencePlan
from ..errors import NotServingError

__all__ = ["ModelSnapshot", "CandidateRoute", "ModelHandle"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class ModelSnapshot:
    """One published, immutable model version.

    ``model`` is anything with ``predict(X) -> labels`` (a
    :class:`~repro.core.GrowingModel` in production; test doubles are
    fine, mirroring :class:`~repro.sim.TaskCOAnalyzer`'s duck typing).
    ``plan`` is the model's fused inference plan when it could be
    compiled (``plan.model_version == version`` always holds), else
    ``None`` and serving stays on the eager path.
    """

    version: int
    model: object
    features_count: int
    published_at: float  # time.monotonic()
    plan: InferencePlan | None = None
    published_unix: float = 0.0  # time.time() — for absolute freshness

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict(X)

    def align(self, X: np.ndarray) -> np.ndarray:
        """Pad/slice a row block to this snapshot's input width.

        Rows encoded against a *newer* registry state are a superset of
        this model's columns (append-only growth), so slicing off the
        tail is exactly "ignore vocabulary this version never saw";
        older rows are right-padded with zeros (entirely-acceptable
        columns in the reversed CO-VV notation).
        """

        width = X.shape[1]
        if width < self.features_count:
            return np.pad(X, ((0, 0), (0, self.features_count - width)))
        if width > self.features_count:
            return X[:, :self.features_count]
        return X


@dataclass(frozen=True, slots=True)
class CandidateRoute:
    """A staged (not yet promoted) model version plus its traffic split.

    ``takes`` decides per request which side of the canary serves it,
    using the task's cached content hash — deterministic within the
    process, so the same task always routes to the same side and the
    misroute audit stays exact (every response reports the version that
    really served it, incumbent or candidate).  The split is resolved
    at 1/10000 granularity.
    """

    snapshot: ModelSnapshot
    fraction: float

    def takes(self, task: object) -> bool:
        return (hash(task) & 0x7FFFFFFF) % 10_000 < int(
            round(self.fraction * 10_000))


class ModelHandle:
    """Thread-safe double-buffered model slot.

    Writers call :meth:`publish` (rare); readers call :meth:`snapshot`
    (hot path — a single attribute read, no lock).  The most recent
    ``retain_history`` published versions are kept so audits can re-run
    a request against the exact model that served it; older snapshots
    are evicted (a continuously-retraining service would otherwise leak
    one weight copy per publication).  ``retain_history=None`` keeps
    everything.

    With ``compile=True`` (default) every publication also exports the
    model's fused :class:`~repro.core.InferencePlan` when the model
    supports it (duck-typed on a ``compile(model_version=...)``
    method); plain-``predict`` doubles publish with ``plan=None``.
    """

    def __init__(self, model: object | None = None,
                 features_count: int | None = None,
                 retain_history: int | None = 32,
                 compile: bool = True,
                 telemetry=None,
                 base_version: int = 0):
        if retain_history is not None and retain_history < 1:
            raise ValueError("retain_history must be >= 1 (or None)")
        if base_version < 0:
            raise ValueError("base_version must be >= 0")
        self._lock = new_lock("ModelHandle._lock")
        self._active: ModelSnapshot | None = None  # guarded-by: _lock
        # base_version seeds the version counter for warm restarts: the
        # next publication gets base_version + 1, and the pre-restart
        # versions count as evicted (their snapshots are not in memory),
        # keeping snapshot_for()'s history indexing and the monotone
        # version contract exact across process restarts.
        self._history: list[ModelSnapshot] = []  # guarded-by: _lock
        self._published = base_version  # guarded-by: _lock
        self._evicted = base_version  # guarded-by: _lock
        self._candidate: CandidateRoute | None = None  # guarded-by: _lock
        self._base_version = base_version
        self.retain_history = retain_history
        self.compile = compile
        #: Optional post-publication hook (``hook(snapshot)``), invoked
        #: outside the lock after every publish/promote — the durability
        #: layer's async-checkpoint trigger.  Exceptions are logged,
        #: never propagated into the publishing thread.
        self.on_publish = None
        #: Optional :class:`~repro.serve.telemetry.Telemetry`: each
        #: publication records a ``publish`` stage timing and a
        #: structural hot-swap event (with the staleness window the new
        #: version closed).
        self.telemetry = telemetry
        if model is not None:
            self.publish(model, features_count=features_count, clone=False)

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def publish(self, model: object, features_count: int | None = None,
                clone: bool = True,
                compile: bool | None = None) -> ModelSnapshot:
        """Atomically swap the served model; returns the new snapshot.

        With ``clone=True`` (the default) the model is copied via its
        ``clone()`` method — a checkpoint round-trip for
        :class:`~repro.core.GrowingModel` — so the caller keeps a
        private, still-trainable instance.  ``features_count`` defaults
        to the model's own ``features_count`` attribute.  ``compile``
        overrides the handle-wide default for this publication; the
        plan (if any) is stamped with the new snapshot's version under
        the publication lock, so ``(model, plan)`` always swap as one.
        """

        start_ns = time.perf_counter_ns()
        if clone:
            cloner = getattr(model, "clone", None)
            if cloner is None:
                raise TypeError(
                    f"{type(model).__name__} has no clone(); publish with "
                    f"clone=False if sharing the instance is intended")
            model = cloner()
        if features_count is None:
            features_count = getattr(model, "features_count", None)
        if features_count is None:
            raise ValueError("features_count required for models that do "
                             "not expose one (is the model trained?)")
        if compile is None:
            compile = self.compile
        compiler = getattr(model, "compile", None) if compile else None
        with self._lock:
            self._published += 1
            plan = None
            if compiler is not None:
                try:
                    plan = compiler(model_version=self._published)
                except Exception:  # noqa: BLE001 — eager fallback
                    # An uncompilable model (unsupported module, or a
                    # duck-typed double whose unrelated compile() chokes
                    # on our signature) must not fail the publication —
                    # and must never kill a background trainer's
                    # publish — it just serves eagerly.
                    logger.warning(
                        "could not compile %s for v%d; serving eagerly",
                        type(model).__name__, self._published,
                        exc_info=True)
            previous = self._active
            snapshot = ModelSnapshot(
                version=self._published, model=model,
                features_count=int(features_count),
                published_at=time.monotonic(), plan=plan,
                published_unix=time.time())
            self._history.append(snapshot)
            self._active = snapshot
            # A direct publish supersedes any in-flight canary: the new
            # active model invalidates the comparisons the candidate was
            # being judged on, so the experiment is abandoned (its
            # snapshot stays in history for audits).
            self._candidate = None
            if self.retain_history is not None:
                while len(self._history) > self.retain_history:
                    self._history.pop(0)
                    self._evicted += 1
        telemetry = self.telemetry
        if telemetry is not None:
            publish_us = (time.perf_counter_ns() - start_ns) / 1e3
            staleness_closed_s = (
                snapshot.published_at - previous.published_at
                if previous is not None else 0.0)
            telemetry.observe("publish", publish_us)
            telemetry.events.append(
                "publish", version=snapshot.version,
                staleness_closed_s=round(staleness_closed_s, 6),
                compiled=plan is not None,
                publish_us=round(publish_us, 3))
        self._notify_publish(snapshot)
        return snapshot

    def stage(self, model: object, fraction: float,
              features_count: int | None = None, clone: bool = True,
              compile: bool | None = None) -> ModelSnapshot:
        """Stage a candidate next to the incumbent for canary traffic.

        The candidate gets a real (monotone) version number and is
        retained in history immediately — requests it serves report
        that version, and audits can replay them against it even if the
        candidate is later demoted — but ``_active`` is untouched: the
        incumbent keeps serving ``1 - fraction`` of traffic until
        :meth:`promote` or :meth:`demote` resolves the pair.  Staging
        over an existing candidate replaces it.
        """

        if not 0.0 < fraction <= 1.0:
            raise ValueError("canary fraction must be in (0, 1]")
        if clone:
            cloner = getattr(model, "clone", None)
            if cloner is None:
                raise TypeError(
                    f"{type(model).__name__} has no clone(); stage with "
                    f"clone=False if sharing the instance is intended")
            model = cloner()
        if features_count is None:
            features_count = getattr(model, "features_count", None)
        if features_count is None:
            raise ValueError("features_count required for models that do "
                             "not expose one (is the model trained?)")
        if compile is None:
            compile = self.compile
        compiler = getattr(model, "compile", None) if compile else None
        with self._lock:
            self._published += 1
            plan = None
            if compiler is not None:
                try:
                    plan = compiler(model_version=self._published)
                except Exception:  # noqa: BLE001 — eager fallback
                    logger.warning(
                        "could not compile candidate %s for v%d; canary "
                        "serves eagerly", type(model).__name__,
                        self._published, exc_info=True)
            snapshot = ModelSnapshot(
                version=self._published, model=model,
                features_count=int(features_count),
                published_at=time.monotonic(), plan=plan,
                published_unix=time.time())
            self._history.append(snapshot)
            self._candidate = CandidateRoute(snapshot, float(fraction))
            if self.retain_history is not None:
                while len(self._history) > self.retain_history:
                    self._history.pop(0)
                    self._evicted += 1
        return snapshot

    def promote(self) -> ModelSnapshot:
        """Make the staged candidate the active model atomically.

        Raises :class:`RuntimeError` when no candidate is staged (e.g.
        a concurrent :meth:`demote` or :meth:`publish` resolved the
        pair first).  Emits the same ``publish`` telemetry event a
        direct swap would, flagged ``promoted``.
        """

        start_ns = time.perf_counter_ns()
        with self._lock:
            candidate = self._candidate
            if candidate is None:
                raise RuntimeError("no staged candidate to promote")
            previous = self._active
            self._active = candidate.snapshot
            self._candidate = None
        snapshot = candidate.snapshot
        telemetry = self.telemetry
        if telemetry is not None:
            publish_us = (time.perf_counter_ns() - start_ns) / 1e3
            staleness_closed_s = (
                time.monotonic() - previous.published_at
                if previous is not None else 0.0)
            telemetry.observe("publish", publish_us)
            telemetry.events.append(
                "publish", version=snapshot.version,
                staleness_closed_s=round(staleness_closed_s, 6),
                compiled=snapshot.plan is not None,
                publish_us=round(publish_us, 3), promoted=True)
        self._notify_publish(snapshot)
        return snapshot

    def _notify_publish(self, snapshot: ModelSnapshot) -> None:
        hook = self.on_publish  # unguarded-ok: atomic reference read; set once at service wiring time
        if hook is None:
            return
        try:
            hook(snapshot)
        except Exception:  # noqa: BLE001 — the hook must never break publish
            logger.exception("on_publish hook failed for v%d",
                             snapshot.version)

    def demote(self) -> ModelSnapshot | None:
        """Drop the staged candidate; the incumbent was never displaced.

        Returns the demoted snapshot (still retained in history so
        audits of the requests it served keep working), or ``None``
        when no candidate was staged.
        """

        with self._lock:
            candidate = self._candidate
            self._candidate = None
        return None if candidate is None else candidate.snapshot

    # ------------------------------------------------------------------
    # reader side (hot path)
    # ------------------------------------------------------------------
    def snapshot(self) -> ModelSnapshot:
        """The currently-served version (lock-free attribute read)."""

        active = self._active  # unguarded-ok: hot path; a reference read is atomic and the snapshot is immutable
        if active is None:
            raise NotServingError("no model has been published")
        return active

    def candidate_route(self) -> CandidateRoute | None:
        """The staged candidate's route, or ``None`` (lock-free read).

        Batcher workers read this once per batch; the returned route is
        frozen, so the split decision and the version reported for
        canary-served requests are consistent even across a concurrent
        promote/demote.
        """

        return self._candidate  # unguarded-ok: hot path; atomic reference read of a frozen route

    @property
    def candidate_version(self) -> int:
        """Version of the staged candidate (0 when none)."""

        candidate = self._candidate  # unguarded-ok: atomic reference read; version is frozen on the snapshot
        return 0 if candidate is None else candidate.snapshot.version

    @property
    def serving(self) -> bool:
        return self._active is not None  # unguarded-ok: atomic reference read for health probes

    @property
    def version(self) -> int:
        """Version of the active snapshot (0 before first publish)."""

        active = self._active  # unguarded-ok: atomic reference read; version is frozen on the snapshot
        return 0 if active is None else active.version

    @property
    def base_version(self) -> int:
        """Version floor inherited from a warm restart (0 on a cold boot)."""

        return self._base_version

    @property
    def swap_count(self) -> int:
        """Hot-swaps after the initial publication (of this process)."""

        return max(0, self._published - 1 - self._base_version)  # unguarded-ok: monotonic int read for stats; staleness is benign

    @property
    def history(self) -> tuple[ModelSnapshot, ...]:
        """The retained (most recent) snapshots, oldest first."""

        with self._lock:
            return tuple(self._history)

    def snapshot_for(self, version: int) -> ModelSnapshot:
        """Look up a retained past version (1-based) for audit."""

        with self._lock:
            if not 1 <= version <= self._published:
                raise KeyError(f"no published version {version}")
            if version <= self._evicted:
                raise KeyError(
                    f"version {version} was evicted (retain_history="
                    f"{self.retain_history})")
            return self._history[version - 1 - self._evicted]
