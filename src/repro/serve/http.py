"""HTTP ingress for the serving stack: classification + telemetry plane.

The Task CO Analyzer is pitched as a component on the scheduler's
task-arrival path; this module gives the in-process serving stack a real
network boundary so something that is *not* a Python caller can submit
tasks and observe the service.  :func:`create_app` builds a Flask app
over either a single :class:`~repro.serve.ClassificationService` or a
multi-cell :class:`~repro.serve.CellRouter`:

========  ============  ====================================================
method    path          purpose
========  ============  ====================================================
POST      /classify     classify one JSON task (429 + ``Retry-After`` on
                        overload, 404 for unknown cells)
POST      /observe      feed one labelled observation to the training loop
POST      /audit        re-classify a task under the exact past model
                        version that served it (410 once evicted)
GET       /metrics      Prometheus text exposition (0.0.4)
GET       /stats        full JSON stats + admission snapshots + stage
                        histograms + event-log tail
GET       /healthz      liveness/readiness: trainer thread, staleness
                        budget, queue saturation — 200 or 503
GET       /cells        registered cell ids
========  ============  ====================================================

Tasks travel as the :meth:`~repro.constraints.CompactedTask.to_dict`
wire format (``{"specs": [{"attribute": ..., "lo": ..., ...}]}``).

:class:`HttpIngress` wraps the app in a threaded
:func:`werkzeug.serving.make_server` (HTTP/1.1, so load-generator
connections keep alive) with ``port=0`` ephemeral-port support for
tests.  The server threads share the process with the serving stack —
the ingress is a boundary, not an isolation layer.
"""

from __future__ import annotations

import logging
import threading
from typing import TYPE_CHECKING

from ..constraints.compaction import CompactedTask
from ..errors import (
    NotServingError,
    OverloadedError,
    ServiceClosedError,
    UnknownCellError,
)
from .telemetry import render_prometheus

if TYPE_CHECKING:  # pragma: no cover
    from .service import ClassificationService

__all__ = ["DEFAULT_CELL", "create_app", "HttpIngress"]

logger = logging.getLogger(__name__)

#: Cell id a bare (router-less) service is exported under.
DEFAULT_CELL = "default"

_CLASSIFY_TIMEOUT_S = 5.0


class _Target:
    """Uniform view over a service or a router (the app's one backend)."""

    def __init__(self, target):
        # Duck-typed on the router's ``cells`` tuple: avoids importing
        # the concrete classes here and keeps test doubles workable.
        self.router = target if hasattr(target, "cells") else None
        self.service_single = None if self.router is not None else target

    def services(self) -> dict[str, "ClassificationService"]:
        if self.router is None:
            return {DEFAULT_CELL: self.service_single}
        return {cell: self.router.service(cell)
                for cell in self.router.cells}

    def service(self, cell: str | None) -> "ClassificationService":
        if self.router is None:
            if cell not in (None, DEFAULT_CELL):
                raise UnknownCellError(
                    f"single-service ingress only serves cell "
                    f"{DEFAULT_CELL!r}, not {cell!r}")
            return self.service_single
        if cell is None:
            cells = self.router.cells
            if len(cells) == 1:
                return self.router.service(cells[0])
            raise UnknownCellError(
                f"multi-cell ingress needs an explicit 'cell' "
                f"(cells: {sorted(cells)})")
        return self.router.service(cell)

    def submit(self, cell: str | None, task: CompactedTask):
        service = self.service(cell)
        request = service.submit(task)
        if request.cell is None and cell is not None:
            request.cell = cell
        return request


def _parse_task(payload) -> CompactedTask:
    try:
        return CompactedTask.from_dict(payload)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"invalid task: {exc}") from exc


class _BadRequest(ValueError):
    """Maps to a 400 with the message as the error body."""


def create_app(target, staleness_budget_s: float | None = None):
    """Build the Flask app over ``target`` (service or router).

    ``staleness_budget_s`` arms the ``/healthz`` freshness check: a cell
    whose served model is older than the budget flips the probe to 503
    (the continuous-retraining loop has stalled even if its thread is
    technically alive).  ``None`` disables the check.
    """

    from flask import Flask, jsonify, request  # deferred: serving-only dep

    app = Flask("repro.serve")
    backend = _Target(target)
    app.config["REPRO_TARGET"] = backend
    app.config["REPRO_STALENESS_BUDGET_S"] = staleness_budget_s

    def _error(status: int, message: str, **extra):
        payload = {"error": message, **extra}
        return jsonify(payload), status

    @app.errorhandler(_BadRequest)
    def _bad_request(exc):
        return _error(400, str(exc))

    @app.errorhandler(UnknownCellError)
    def _unknown_cell(exc):
        return _error(404, str(exc))

    @app.errorhandler(OverloadedError)
    def _overloaded(exc):
        retry_after = exc.retry_after_s
        body, status = _error(429, str(exc), reason=exc.reason,
                              cell=exc.cell,
                              retry_after_s=retry_after)
        response = app.make_response((body, status))
        if retry_after is not None:
            # RFC 9110 Retry-After is delta-seconds (an integer); keep
            # the precise value in the JSON body.
            response.headers["Retry-After"] = str(
                max(1, int(round(retry_after))))
        return response

    @app.errorhandler(ServiceClosedError)
    @app.errorhandler(NotServingError)
    def _unavailable(exc):
        return _error(503, str(exc))

    def _json_body() -> dict:
        payload = request.get_json(silent=True)
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------
    @app.post("/classify")
    def classify():
        payload = _json_body()
        task = _parse_task(payload.get("task"))
        cell = payload.get("cell")
        if cell is not None and not isinstance(cell, str):
            raise _BadRequest("'cell' must be a string")
        classify_request = backend.submit(cell, task)
        timeout = payload.get("timeout_s", _CLASSIFY_TIMEOUT_S)
        if not classify_request.wait(timeout):
            return _error(504, "classification did not complete within "
                               f"{timeout}s")
        if classify_request.error is not None:
            error = classify_request.error
            if isinstance(error, OverloadedError):
                raise error  # → 429 (evicted / expired after admission)
            if isinstance(error, ServiceClosedError):
                raise error  # → 503
            logger.error("classification failed over HTTP: %s", error)
            return _error(500, "classification failed")
        return jsonify({
            "group": classify_request.group,
            "model_version": classify_request.version,
            "cell": classify_request.cell or DEFAULT_CELL,
            "latency_us": classify_request.latency_us,
        })

    @app.post("/observe")
    def observe():
        payload = _json_body()
        task = _parse_task(payload.get("task"))
        group = payload.get("group")
        if isinstance(group, bool) or not isinstance(group, int):
            raise _BadRequest("'group' must be an integer label")
        service = backend.service(payload.get("cell"))
        service.observe(task, group)
        return "", 204

    @app.post("/audit")
    def audit():
        """Re-classify under the exact model version that served a
        request — the load generator's wire-level misroute audit."""

        payload = _json_body()
        task = _parse_task(payload.get("task"))
        version = payload.get("version")
        if isinstance(version, bool) or not isinstance(version, int):
            raise _BadRequest("'version' must be an integer")
        service = backend.service(payload.get("cell"))
        try:
            snapshot = service.handle.snapshot_for(version)
        except KeyError as exc:
            return _error(410, f"model version unavailable: {exc}")
        encoder = service.batcher._encoders[0]
        with service.batcher.registry_lock:
            row = encoder.encode_row_dense(task)
        rows = snapshot.align(row.reshape(1, -1))
        group = int(snapshot.predict(rows)[0])
        return jsonify({"group": group, "model_version": version,
                        "cell": payload.get("cell") or DEFAULT_CELL})

    # ------------------------------------------------------------------
    # telemetry plane
    # ------------------------------------------------------------------
    def _per_cell():
        services = backend.services()
        stats = {cell: service.stats().to_dict()
                 for cell, service in services.items()}
        admission = {cell: service.admission.snapshot()
                     for cell, service in services.items()
                     if service.admission is not None}
        return services, stats, admission

    @app.get("/metrics")
    def metrics():
        services, stats, admission = _per_cell()
        text = render_prometheus(
            stats, admission=admission,
            stages={cell: service.telemetry.stage_snapshots()
                    for cell, service in services.items()},
            events={cell: service.telemetry.events
                    for cell, service in services.items()})
        return app.response_class(
            text, mimetype="text/plain; version=0.0.4; charset=utf-8")

    @app.get("/stats")
    def stats():
        services, stats, admission = _per_cell()
        return jsonify({
            "cells": {
                cell: {
                    "stats": stats[cell],
                    "admission": admission.get(cell),
                    "telemetry": service.telemetry.to_dict(),
                }
                for cell, service in services.items()
            },
        })

    @app.get("/healthz")
    def healthz():
        budget = app.config["REPRO_STALENESS_BUDGET_S"]
        checks = []

        def check(cell, name, ok, **detail):
            checks.append({"cell": cell, "check": name, "ok": bool(ok),
                           **detail})

        for cell, service in backend.services().items():
            cell_stats = service.stats()
            check(cell, "published", cell_stats.has_published,
                  model_version=cell_stats.model_version)
            if service.trainer is not None and service.started:
                check(cell, "trainer_alive", service.trainer.alive)
            if budget is not None and cell_stats.has_published:
                check(cell, "staleness",
                      cell_stats.model_staleness_s <= budget,
                      staleness_s=cell_stats.model_staleness_s,
                      budget_s=budget)
            admission = service.admission
            if admission is not None and admission.max_queue is not None:
                check(cell, "queue_saturation",
                      cell_stats.pending < admission.max_queue,
                      pending=cell_stats.pending,
                      max_queue=admission.max_queue)
        healthy = all(c["ok"] for c in checks)
        body = jsonify({"status": "ok" if healthy else "unhealthy",
                        "checks": checks})
        return body, (200 if healthy else 503)

    @app.get("/cells")
    def cells():
        return jsonify({"cells": sorted(backend.services())})

    return app


class HttpIngress:
    """A threaded WSGI server hosting :func:`create_app`'s app.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  ``threaded=True`` gives each connection its own
    handler thread, so a keep-alive load-generator connection cannot
    starve the health probe.
    """

    def __init__(self, target, host: str = "127.0.0.1", port: int = 8080,
                 staleness_budget_s: float | None = None):
        self.app = create_app(target,
                              staleness_budget_s=staleness_budget_s)
        self.host = host
        self._requested_port = port
        self._server = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpIngress":
        if self._server is not None:
            raise RuntimeError("ingress already started")
        from werkzeug.serving import WSGIRequestHandler, make_server

        class KeepAliveHandler(WSGIRequestHandler):
            # HTTP/1.1 keeps load-generator connections open between
            # requests; werkzeug defaults to 1.0 (close-per-request).
            protocol_version = "HTTP/1.1"

            def log_request(self, *args, **kwargs):  # quiet access log
                pass

        self._server = make_server(self.host, self._requested_port,
                                   self.app, threaded=True,
                                   request_handler=KeepAliveHandler)
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serve-http",
                                        daemon=True)
        self._thread.start()
        logger.info("HTTP ingress listening on %s", self.url)
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
        self._server.server_close()
        self._server = None
        self._thread = None

    def __enter__(self) -> "HttpIngress":
        return self.start() if self._server is None else self

    def __exit__(self, *exc) -> None:
        self.stop()
