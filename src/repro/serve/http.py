"""HTTP ingress for the serving stack: classification + telemetry plane.

The Task CO Analyzer is pitched as a component on the scheduler's
task-arrival path; this module gives the in-process serving stack a real
network boundary so something that is *not* a Python caller can submit
tasks and observe the service.  :func:`create_app` builds a Flask app
over either a single :class:`~repro.serve.ClassificationService` or a
multi-cell :class:`~repro.serve.CellRouter`:

========  ============  ====================================================
method    path          purpose
========  ============  ====================================================
POST      /classify     classify one JSON task — or a whole ``tasks``
                        batch in one round trip (429 + ``Retry-After``
                        on overload, 404 for unknown cells)
POST      /observe      feed one labelled observation to the training loop
POST      /audit        re-classify a task under the exact past model
                        version that served it (410 once evicted)
GET       /metrics      Prometheus text exposition (0.0.4)
GET       /stats        full JSON stats + admission snapshots + stage
                        histograms + event-log tail
GET       /healthz      liveness/readiness: trainer thread, staleness
                        budget, queue saturation — 200 or 503
GET       /cells        registered cell ids
========  ============  ====================================================

Tasks travel as the :meth:`~repro.constraints.CompactedTask.to_dict`
wire format (``{"specs": [{"attribute": ..., "lo": ..., ...}]}``).

Batched bodies amortize the wire: ``{"tasks": [...], "cell": ...}``
submits the whole list through one batcher round trip and returns
``{"results": [...]}`` with one entry per task **in task order** —
successes carry the single-task response shape, per-task failures are
``{"error": ..., "status": ...}`` entries (an unparsable task is a
per-item 400; a shed batch is a whole-body 429 — admission prices the
batch as a unit and never partially admits a wire body).

The serving hot path does not pay Flask routing:
:class:`HttpIngress` wraps the app in a thin WSGI dispatcher
(:class:`_ClassifyFastPath`) that matches ``POST /classify`` before
Flask sees the request, reads the JSON straight off ``wsgi.input``,
and reuses the same typed-error→status mapping; Flask keeps the
telemetry/health plane.  ``n_listeners > 1`` runs that WSGI app on
several threaded servers bound to ``SO_REUSEPORT`` sockets sharing one
port — the kernel balances connections across listeners, all backed by
the same serving stack.

:class:`HttpIngress` uses threaded
:func:`werkzeug.serving.make_server` servers (HTTP/1.1, so
load-generator connections keep alive) with ``port=0`` ephemeral-port
support for tests.  The server threads share the process with the
serving stack — the ingress is a boundary, not an isolation layer.
"""

from __future__ import annotations

import json
import logging
import math
import socket
import threading
import time
from http.client import responses as _HTTP_REASONS
from typing import TYPE_CHECKING

from ..constraints.compaction import CompactedTask
from ..errors import (
    CircuitOpenError,
    NotServingError,
    OverloadedError,
    ServiceClosedError,
    UnknownCellError,
)
from .supervise import BREAKER_OPEN
from .telemetry import render_prometheus

if TYPE_CHECKING:  # pragma: no cover
    from .service import ClassificationService

__all__ = ["DEFAULT_CELL", "create_app", "HttpIngress"]

logger = logging.getLogger(__name__)

#: Cell id a bare (router-less) service is exported under.
DEFAULT_CELL = "default"

_CLASSIFY_TIMEOUT_S = 5.0
#: Upper bound a client may set via ``timeout_s`` — a handler thread is
#: parked for the duration, so the wire contract caps it.
_MAX_TIMEOUT_S = 60.0
#: Upper bound on ``tasks`` entries per batched body: bounds the memory
#: one request can pin and keeps a single body within one admission
#: decision's meaningful range.
_MAX_BATCH_TASKS = 4096


class _Target:
    """Uniform view over a service or a router (the app's one backend)."""

    def __init__(self, target):
        # Duck-typed on the router's ``cells`` tuple: avoids importing
        # the concrete classes here and keeps test doubles workable.
        self.router = target if hasattr(target, "cells") else None
        self.service_single = None if self.router is not None else target

    def services(self) -> dict[str, "ClassificationService"]:
        if self.router is None:
            return {DEFAULT_CELL: self.service_single}
        return {cell: self.router.service(cell)
                for cell in self.router.cells}

    def service(self, cell: str | None) -> "ClassificationService":
        if self.router is None:
            if cell not in (None, DEFAULT_CELL):
                raise UnknownCellError(
                    f"single-service ingress only serves cell "
                    f"{DEFAULT_CELL!r}, not {cell!r}")
            return self.service_single
        if cell is None:
            cells = self.router.cells
            if len(cells) == 1:
                return self.router.service(cells[0])
            raise UnknownCellError(
                f"multi-cell ingress needs an explicit 'cell' "
                f"(cells: {sorted(cells)})")
        return self.router.service(cell)

    def submit(self, cell: str | None, task: CompactedTask):
        service = self.service(cell)
        request = service.submit(task)
        if request.cell is None and cell is not None:
            request.cell = cell
        return request

    def submit_many(self, cell: str | None, tasks: list[CompactedTask]):
        service = self.service(cell)
        requests = service.submit_many(tasks)
        if cell is not None:
            for request in requests:
                if request.cell is None:
                    request.cell = cell
        return requests


def _parse_task(payload) -> CompactedTask:
    try:
        return CompactedTask.from_dict(payload)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"invalid task: {exc}") from exc


class _BadRequest(ValueError):
    """Maps to a 400 with the message as the error body."""


# ----------------------------------------------------------------------
# the /classify core — shared by the Flask route and the WSGI fast path
# ----------------------------------------------------------------------

def _parse_cell(payload) -> str | None:
    cell = payload.get("cell")
    if cell is not None and not isinstance(cell, str):
        raise _BadRequest("'cell' must be a string")
    return cell


def _parse_timeout(payload) -> float:
    """Validated client wait budget — a malformed value is the client's
    400, never the server's unhandled ``TypeError`` 500."""

    timeout = payload.get("timeout_s", _CLASSIFY_TIMEOUT_S)
    if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
        raise _BadRequest("'timeout_s' must be a number (seconds)")
    timeout = float(timeout)
    if not math.isfinite(timeout) or timeout <= 0.0 \
            or timeout > _MAX_TIMEOUT_S:
        raise _BadRequest(f"'timeout_s' must be in "
                          f"(0, {_MAX_TIMEOUT_S:g}] seconds")
    return timeout


def _typed_error(exc) -> tuple[int, dict, dict]:
    """``(status, body, extra_headers)`` for one typed serving error."""

    if isinstance(exc, _BadRequest):
        return 400, {"error": str(exc)}, {}
    if isinstance(exc, UnknownCellError):
        return 404, {"error": str(exc)}, {}
    if isinstance(exc, OverloadedError):
        headers = {}
        if exc.retry_after_s is not None:
            # RFC 9110 Retry-After is delta-seconds (an integer); keep
            # the precise value in the JSON body.
            headers["Retry-After"] = str(
                max(1, int(round(exc.retry_after_s))))
        return 429, {"error": str(exc), "reason": exc.reason,
                     "cell": exc.cell,
                     "retry_after_s": exc.retry_after_s}, headers
    if isinstance(exc, CircuitOpenError):
        # A tripped cell is *unavailable*, not overloaded: 503 so
        # balancers and retry policies treat it as a sick backend.
        headers = {}
        if exc.retry_after_s is not None:
            headers["Retry-After"] = str(
                max(1, int(round(exc.retry_after_s))))
        return 503, {"error": str(exc), "reason": exc.reason,
                     "cell": exc.cell,
                     "retry_after_s": exc.retry_after_s}, headers
    if isinstance(exc, (ServiceClosedError, NotServingError)):
        return 503, {"error": str(exc)}, {}
    raise exc


_TYPED_ERRORS = (_BadRequest, UnknownCellError, OverloadedError,
                 CircuitOpenError, ServiceClosedError, NotServingError)


def _abandon(backend: _Target, cell: str | None, request) -> str:
    """Cancel-or-account a request whose client timed out waiting.

    A 504 must not leave a zombie in the queue: if the request is still
    queued it is withdrawn (counted ``cancelled``, waiter failed); if a
    worker already took it, its batch is in flight and it completes
    normally moments later.
    """

    cancelled = backend.service(cell).batcher.cancel(request)
    return "cancelled" if cancelled else "in-flight"


def _request_entry(request) -> tuple[int, dict, dict]:
    """Map one *finished* request onto its wire result."""

    if request.error is not None:
        error = request.error
        if isinstance(error, (OverloadedError, ServiceClosedError)):
            return _typed_error(error)
        logger.error("classification failed over HTTP: %s", error)
        return 500, {"error": "classification failed"}, {}
    return 200, {
        "group": request.group,
        "model_version": request.version,
        "cell": request.cell or DEFAULT_CELL,
        "latency_us": request.latency_us,
    }, {}


def _classify_single(backend: _Target, payload: dict
                     ) -> tuple[int, dict, dict]:
    task = _parse_task(payload.get("task"))
    cell = _parse_cell(payload)
    timeout = _parse_timeout(payload)
    request = backend.submit(cell, task)
    if not request.wait(timeout):
        state = _abandon(backend, cell, request)
        return 504, {"error": f"classification did not complete within "
                              f"{timeout}s", "state": state}, {}
    return _request_entry(request)


def _classify_batch(backend: _Target, payload: dict
                    ) -> tuple[int, dict, dict]:
    """One batched body → one batcher round trip → in-order results.

    Per-item semantics: an unparsable task yields a 400 *entry* while
    the valid tasks are still served; whole-body semantics: an
    admission shed (the gate prices the batch as a unit) or an unknown
    cell rejects the entire body with 429 / 404.
    """

    items = payload.get("tasks")
    if not isinstance(items, list) or not items:
        raise _BadRequest("'tasks' must be a non-empty list")
    if len(items) > _MAX_BATCH_TASKS:
        raise _BadRequest(f"'tasks' exceeds the per-body limit of "
                          f"{_MAX_BATCH_TASKS}")
    cell = _parse_cell(payload)
    timeout = _parse_timeout(payload)
    entries: list[dict | None] = [None] * len(items)
    parsed: list[tuple[int, CompactedTask]] = []
    for i, item in enumerate(items):
        try:
            parsed.append((i, CompactedTask.from_dict(item)))
        except (TypeError, ValueError) as exc:
            entries[i] = {"error": f"invalid task: {exc}", "status": 400}
    requests = (backend.submit_many(cell, [task for _, task in parsed])
                if parsed else [])
    deadline = time.monotonic() + timeout
    for (i, _task), request in zip(parsed, requests):
        if not request.wait(max(0.0, deadline - time.monotonic())):
            state = _abandon(backend, cell, request)
            entries[i] = {"error": "classification did not complete "
                                   "within the body timeout",
                          "status": 504, "state": state}
            continue
        status, body, _headers = _request_entry(request)
        if status != 200:
            body = dict(body)
            body["status"] = status
        entries[i] = body
    return 200, {"results": entries}, {}


def _classify_payload(backend: _Target, payload: dict
                      ) -> tuple[int, dict, dict]:
    """Dispatch one ``/classify`` JSON body (single- or batched-task).

    Returns ``(status, body, extra_headers)``; every typed serving
    error is mapped here so the Flask route and the WSGI fast path
    share one contract.
    """

    try:
        if "tasks" in payload:
            if "task" in payload:
                raise _BadRequest("give either 'task' or 'tasks', "
                                  "not both")
            return _classify_batch(backend, payload)
        return _classify_single(backend, payload)
    except _TYPED_ERRORS as exc:
        return _typed_error(exc)
    except Exception:  # noqa: BLE001 — the wire must answer, not raise
        logger.exception("unhandled error on /classify")
        return 500, {"error": "classification failed"}, {}


class _ClassifyFastPath:
    """WSGI dispatcher: ``POST /classify`` before Flask routing.

    The hot endpoint skips Flask's url-map match, request-context push,
    and response machinery — the body is ``json.loads``-ed straight off
    ``wsgi.input`` and the reply is one pre-encoded JSON write.  Every
    other route falls through to the wrapped Flask app (telemetry and
    health stay on the framework where convenience beats microseconds).
    """

    def __init__(self, app, backend: _Target):
        self.app = app
        self.backend = backend

    def __call__(self, environ, start_response):
        if (environ.get("PATH_INFO") != "/classify"
                or environ.get("REQUEST_METHOD") != "POST"):
            return self.app(environ, start_response)
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except (TypeError, ValueError):
            length = 0
        raw = environ["wsgi.input"].read(length) if length > 0 else b""
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = None
        if not isinstance(payload, dict):
            status, body, headers = (
                400, {"error": "request body must be a JSON object"}, {})
        else:
            status, body, headers = _classify_payload(self.backend,
                                                      payload)
        data = json.dumps(body).encode()
        response_headers = [("Content-Type", "application/json"),
                            ("Content-Length", str(len(data)))]
        response_headers.extend(headers.items())
        reason = _HTTP_REASONS.get(status, "")
        start_response(f"{status} {reason}", response_headers)
        return [data]


def create_app(target, staleness_budget_s: float | None = None):
    """Build the Flask app over ``target`` (service or router).

    ``staleness_budget_s`` arms the ``/healthz`` freshness check: a cell
    whose served model is older than the budget flips the probe to 503
    (the continuous-retraining loop has stalled even if its thread is
    technically alive).  ``None`` disables the check.
    """

    from flask import Flask, jsonify, request  # deferred: serving-only dep

    app = Flask("repro.serve")
    backend = _Target(target)
    app.config["REPRO_TARGET"] = backend
    app.config["REPRO_STALENESS_BUDGET_S"] = staleness_budget_s

    def _error(status: int, message: str, **extra):
        payload = {"error": message, **extra}
        return jsonify(payload), status

    def _typed_error_response(exc):
        status, body, headers = _typed_error(exc)
        response = app.make_response((jsonify(body), status))
        for key, value in headers.items():
            response.headers[key] = value
        return response

    @app.errorhandler(_BadRequest)
    @app.errorhandler(UnknownCellError)
    @app.errorhandler(OverloadedError)
    @app.errorhandler(CircuitOpenError)
    @app.errorhandler(ServiceClosedError)
    @app.errorhandler(NotServingError)
    def _typed(exc):
        return _typed_error_response(exc)

    def _json_body() -> dict:
        payload = request.get_json(silent=True)
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------
    @app.post("/classify")
    def classify():
        # Same core as the WSGI fast path — the Flask route exists for
        # test clients and for apps mounted without the ingress wrapper.
        status, body, headers = _classify_payload(backend, _json_body())
        response = app.make_response((jsonify(body), status))
        for key, value in headers.items():
            response.headers[key] = value
        return response

    @app.post("/observe")
    def observe():
        payload = _json_body()
        task = _parse_task(payload.get("task"))
        group = payload.get("group")
        if isinstance(group, bool) or not isinstance(group, int):
            raise _BadRequest("'group' must be an integer label")
        service = backend.service(_parse_cell(payload))
        service.observe(task, group)
        return "", 204

    @app.post("/audit")
    def audit():
        """Re-classify under the exact model version that served a
        request — the load generator's wire-level misroute audit."""

        payload = _json_body()
        task = _parse_task(payload.get("task"))
        version = payload.get("version")
        if isinstance(version, bool) or not isinstance(version, int):
            raise _BadRequest("'version' must be an integer")
        cell = _parse_cell(payload)
        service = backend.service(cell)
        try:
            group = service.audit_classify(task, version)
        except KeyError as exc:
            return _error(410, f"model version unavailable: {exc}")
        return jsonify({"group": group, "model_version": version,
                        "cell": cell or DEFAULT_CELL})

    # ------------------------------------------------------------------
    # telemetry plane
    # ------------------------------------------------------------------
    def _per_cell():
        services = backend.services()
        stats = {cell: service.stats().to_dict()
                 for cell, service in services.items()}
        admission = {cell: service.admission.snapshot()
                     for cell, service in services.items()
                     if service.admission is not None}
        return services, stats, admission

    @app.get("/metrics")
    def metrics():
        services, stats, admission = _per_cell()
        text = render_prometheus(
            stats, admission=admission,
            stages={cell: service.telemetry.stage_snapshots()
                    for cell, service in services.items()},
            events={cell: service.telemetry.events
                    for cell, service in services.items()})
        return app.response_class(
            text, mimetype="text/plain; version=0.0.4; charset=utf-8")

    @app.get("/stats")
    def stats():
        services, stats, admission = _per_cell()
        return jsonify({
            "cells": {
                cell: {
                    "stats": stats[cell],
                    "admission": admission.get(cell),
                    "telemetry": service.telemetry.to_dict(),
                }
                for cell, service in services.items()
            },
        })

    @app.get("/healthz")
    def healthz():
        budget = app.config["REPRO_STALENESS_BUDGET_S"]
        checks = []

        def check(cell, name, ok, **detail):
            checks.append({"cell": cell, "check": name, "ok": bool(ok),
                           **detail})

        restored = 0
        for cell, service in backend.services().items():
            cell_stats = service.stats()
            restored = max(restored, cell_stats.restored_version)
            check(cell, "published", cell_stats.has_published,
                  model_version=cell_stats.model_version,
                  restored_version=cell_stats.restored_version)
            breaker = getattr(service, "breaker", None)
            if breaker is not None:
                # An open breaker pulls the cell from rotation; a
                # half-open one is probing and may serve.
                check(cell, "breaker", breaker.state_code != BREAKER_OPEN,
                      state=breaker.state)
            supervisor = getattr(service, "supervisor", None)
            if supervisor is not None and supervisor.degraded:
                check(cell, "degraded", False,
                      reasons=list(supervisor.degraded_reasons))
            if service.trainer is not None and service.started:
                check(cell, "trainer_alive", service.trainer.alive)
                # Alive but wedged: past the threshold of consecutive
                # crashed retrain attempts the cell can no longer close
                # staleness, and the probe should pull it from rotation.
                failures = service.trainer.consecutive_failures
                threshold = service.trainer.max_consecutive_failures
                check(cell, "trainer_failures", failures < threshold,
                      consecutive_failures=failures, threshold=threshold)
            if budget is not None and cell_stats.has_published:
                check(cell, "staleness",
                      cell_stats.model_staleness_s <= budget,
                      staleness_s=cell_stats.model_staleness_s,
                      budget_s=budget)
            admission = service.admission
            if admission is not None and admission.max_queue is not None:
                check(cell, "queue_saturation",
                      cell_stats.pending < admission.max_queue,
                      pending=cell_stats.pending,
                      max_queue=admission.max_queue)
        healthy = all(c["ok"] for c in checks)
        body = jsonify({"status": "ok" if healthy else "unhealthy",
                        "restored_version": restored,
                        "checks": checks})
        return body, (200 if healthy else 503)

    @app.get("/cells")
    def cells():
        return jsonify({"cells": sorted(backend.services())})

    return app


class HttpIngress:
    """Threaded WSGI server(s) hosting the serving app.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  ``threaded=True`` gives each connection its own
    handler thread, so a keep-alive load-generator connection cannot
    starve the health probe.  The hot ``POST /classify`` path is served
    by :class:`_ClassifyFastPath` ahead of Flask routing.

    ``n_listeners > 1`` binds that many ``SO_REUSEPORT`` sockets to the
    same port and runs one threaded server per socket: the kernel
    load-balances accepted connections across listeners, every listener
    dispatching into the same in-process serving stack.  This multiplies
    the accept/handler capacity of the wire without any extra routing
    layer (one host, one port, one backend).
    """

    def __init__(self, target, host: str = "127.0.0.1", port: int = 8080,
                 staleness_budget_s: float | None = None,
                 n_listeners: int = 1):
        if n_listeners < 1:
            raise ValueError("n_listeners must be >= 1")
        self.app = create_app(target,
                              staleness_budget_s=staleness_budget_s)
        self.wsgi_app = _ClassifyFastPath(self.app,
                                          self.app.config["REPRO_TARGET"])
        self.host = host
        self.n_listeners = n_listeners
        self._requested_port = port
        self._bound_port: int | None = None
        self._servers: list = []
        self._sockets: list[socket.socket] = []
        self._threads: list[threading.Thread] = []

    @property
    def port(self) -> int:
        if self._bound_port is None:
            return self._requested_port
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpIngress":
        if self._servers:
            raise RuntimeError("ingress already started")
        from werkzeug.serving import WSGIRequestHandler, make_server

        class KeepAliveHandler(WSGIRequestHandler):
            # HTTP/1.1 keeps load-generator connections open between
            # requests; werkzeug defaults to 1.0 (close-per-request).
            protocol_version = "HTTP/1.1"

            def log_request(self, *args, **kwargs):  # quiet access log
                pass

        if self.n_listeners == 1:
            server = make_server(self.host, self._requested_port,
                                 self.wsgi_app, threaded=True,
                                 request_handler=KeepAliveHandler)
            self._servers = [server]
            self._bound_port = server.server_port
        else:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise RuntimeError("n_listeners > 1 needs SO_REUSEPORT, "
                                   "which this platform lacks")
            # Bind the sockets ourselves (the first may pick the
            # ephemeral port the rest then share) and hand each to a
            # werkzeug server via fd= (which dups it).
            port = self._requested_port
            try:
                for _ in range(self.n_listeners):
                    sock = socket.socket(socket.AF_INET,
                                         socket.SOCK_STREAM)
                    sock.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEPORT, 1)
                    sock.bind((self.host, port))
                    sock.listen(128)
                    port = sock.getsockname()[1]
                    self._sockets.append(sock)
                self._bound_port = port
                self._servers = [
                    make_server(self.host, self._bound_port,
                                self.wsgi_app, threaded=True,
                                request_handler=KeepAliveHandler,
                                fd=sock.fileno())
                    for sock in self._sockets]
            except BaseException:
                self._teardown()
                raise
        self._threads = []
        for i, server in enumerate(self._servers):
            thread = threading.Thread(target=server.serve_forever,
                                      name=f"repro-serve-http-{i}",
                                      daemon=True)
            self._threads.append(thread)
            thread.start()
        logger.info("HTTP ingress listening on %s (%d listener(s))",
                    self.url, len(self._servers))
        return self

    def _teardown(self) -> None:
        for server in self._servers:
            server.server_close()
        for sock in self._sockets:
            sock.close()
        self._servers = []
        self._sockets = []
        self._threads = []
        self._bound_port = None

    def stop(self, timeout: float | None = 10.0) -> None:
        if not self._servers:
            return
        for server in self._servers:
            server.shutdown()
        if timeout is None:
            for thread in self._threads:
                thread.join()
        else:
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                thread.join(max(0.0, deadline - time.monotonic()))
        self._teardown()

    def __enter__(self) -> "HttpIngress":
        return self.start() if not self._servers else self

    def __exit__(self, *exc) -> None:
        self.stop()
