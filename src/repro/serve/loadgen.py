"""Open-loop load generation against a classification service.

Replays a cell's constrained-task corpus at a configurable offered rate
and measures what the serving stack actually delivers: completed
throughput, p50/p95/p99/max classification latency, per-model-version
request counts, and drops (requests that never completed — the hot-swap
acceptance criterion demands zero).

Open loop means arrivals follow the schedule regardless of completions:
if the service falls behind, the queue grows and latency shows it —
exactly how a cluster's task stream would behave.  Two arrival patterns:

* ``poisson`` — memoryless arrivals at the offered rate,
* ``bursty``  — the same mean rate compressed into periodic bursts
  (duty cycle ``1/burst_factor``), the adversarial shape for a
  microbatcher.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..constraints.compaction import CompactedTask
from .metrics import LatencyStats
from .microbatch import ClassifyRequest
from .service import ClassificationService

__all__ = ["arrival_offsets", "LoadTestReport", "LoadGenerator"]

PATTERNS = ("poisson", "bursty")


def arrival_offsets(rate: float, duration_s: float,
                    rng: np.random.Generator, pattern: str = "poisson",
                    burst_factor: float = 4.0,
                    period_s: float = 0.25) -> np.ndarray:
    """Arrival times (seconds from start) for one open-loop run."""

    if rate <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if pattern not in PATTERNS:
        raise ValueError(f"pattern must be one of {PATTERNS}")
    if pattern == "poisson":
        n = max(1, int(rate * duration_s * 1.5))
        gaps = rng.exponential(1.0 / rate, size=n)
        offsets = np.cumsum(gaps)
        return offsets[offsets < duration_s]
    # Bursty: all arrivals land in the first 1/burst_factor of each
    # period at burst_factor × rate, preserving the mean rate.
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    hot_rate = rate * burst_factor
    duty_s = period_s / burst_factor
    n = max(1, int(hot_rate * duration_s * 1.5))
    gaps = rng.exponential(1.0 / hot_rate, size=n)
    within = np.cumsum(gaps)
    # Fold the continuous hot stream into the duty window of each period.
    offsets = (within // duty_s) * period_s + (within % duty_s)
    return offsets[offsets < duration_s]


@dataclass
class LoadTestReport:
    """Everything one load-test run measured."""

    pattern: str
    offered_rate: float
    duration_s: float
    n_requests: int
    n_completed: int
    n_dropped: int
    throughput_rps: float
    latency: LatencyStats
    versions_served: dict[int, int] = field(default_factory=dict)
    swaps: int = 0
    trainer_updates: int = 0
    batches: int = 0
    largest_batch: int = 0

    def to_dict(self) -> dict:
        """JSON-ready dict (the shape the perf trajectory records)."""

        return {
            "pattern": self.pattern,
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_dropped": self.n_dropped,
            "throughput_rps": self.throughput_rps,
            "latency_us": self.latency.to_dict(),
            "versions_served": {str(k): v
                                for k, v in self.versions_served.items()},
            "swaps": self.swaps,
            "trainer_updates": self.trainer_updates,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
        }

    def __str__(self) -> str:
        lat = self.latency
        return (f"{self.pattern} @ {self.offered_rate:,.0f}/s for "
                f"{self.duration_s:.1f}s: {self.n_completed:,} classified "
                f"({self.n_dropped} dropped), {self.throughput_rps:,.0f}/s "
                f"throughput; latency p50={lat.p50_us:.0f}µs "
                f"p95={lat.p95_us:.0f}µs p99={lat.p99_us:.0f}µs; "
                f"{self.swaps} hot-swaps over {len(self.versions_served)} "
                f"version(s)")


class LoadGenerator:
    """Drive a service with a replayed task corpus at an offered rate.

    Parameters
    ----------
    service:
        A started :class:`~repro.serve.ClassificationService`.
    tasks / labels:
        The replay corpus (e.g. ``PipelineResult.tasks`` /
        ``.labels``); cycled when shorter than the run.  When labels are
        given and ``observe_every`` > 0, every n-th submission also
        feeds the service's training loop.
    """

    def __init__(self, service: ClassificationService,
                 tasks: list[CompactedTask],
                 labels: np.ndarray | None = None,
                 rate: float = 5000.0, duration_s: float = 5.0,
                 pattern: str = "poisson", observe_every: int = 0,
                 drain_timeout_s: float = 30.0,
                 rng: np.random.Generator | None = None):
        if not tasks:
            raise ValueError("need a non-empty task corpus")
        if labels is not None and len(labels) != len(tasks):
            raise ValueError("labels and tasks lengths differ")
        if observe_every > 0 and labels is None:
            raise ValueError("observe_every needs labels")
        self.service = service
        self.tasks = tasks
        self.labels = labels
        self.rate = rate
        self.duration_s = duration_s
        self.pattern = pattern
        self.observe_every = observe_every
        self.drain_timeout_s = drain_timeout_s
        self.rng = rng or np.random.default_rng()

    def run(self) -> LoadTestReport:
        offsets = arrival_offsets(self.rate, self.duration_s, self.rng,
                                  pattern=self.pattern)
        tasks, labels = self.tasks, self.labels
        n_tasks = len(tasks)
        observe_every = self.observe_every
        submit = self.service.submit
        observe = self.service.observe

        requests: list[ClassifyRequest] = []
        start = time.perf_counter()
        for i, offset in enumerate(offsets):
            # Open loop: sleep only when ahead of schedule, never to
            # catch up — a backlog is the service's problem to absorb.
            while True:
                lag = offset - (time.perf_counter() - start)
                if lag <= 0:
                    break
                time.sleep(min(lag, 2e-4))
            task = tasks[i % n_tasks]
            requests.append(submit(task))
            if observe_every and i % observe_every == 0:
                observe(task, int(labels[i % n_tasks]))

        # Drain: every accepted request must complete.  Failed or
        # cancelled requests count as dropped — they were not classified.
        deadline = time.monotonic() + self.drain_timeout_s
        for request in requests:
            request.wait(max(0.0, deadline - time.monotonic()))
        completed = [r for r in requests if r.ok]
        dropped = len(requests) - len(completed)

        latencies = [r.latency_ns for r in completed]
        if completed:
            start_ns = min(r.enqueued_ns for r in completed)
            end_ns = max(r.completed_ns for r in completed)
            wall_s = max((end_ns - start_ns) / 1e9, 1e-9)
            throughput = len(completed) / wall_s
        else:
            throughput = 0.0

        stats = self.service.stats()
        return LoadTestReport(
            pattern=self.pattern, offered_rate=self.rate,
            duration_s=self.duration_s, n_requests=len(requests),
            n_completed=len(completed), n_dropped=dropped,
            throughput_rps=throughput,
            latency=LatencyStats.from_ns(latencies),
            versions_served=stats.versions_served,
            swaps=stats.swaps, trainer_updates=stats.trainer_updates,
            batches=stats.batches, largest_batch=stats.largest_batch)
