"""Open-loop load generation against a classification service.

Replays a cell's constrained-task corpus at a configurable offered rate
and measures what the serving stack actually delivers: completed
throughput, p50/p95/p99/max classification latency, per-model-version
request counts, and drops (requests that never completed — the hot-swap
acceptance criterion demands zero).

Open loop means arrivals follow the schedule regardless of completions:
if the service falls behind, the queue grows and latency shows it —
exactly how a cluster's task stream would behave.  When the target runs
admission control, shed arrivals (:class:`~repro.errors.OverloadedError`)
are counted rather than retried, and the report carries accept/shed
rates plus goodput with exactly-once accounting
(``accepted + shed == submitted``).  Two arrival patterns:

* ``poisson`` — memoryless arrivals at the offered rate,
* ``bursty``  — the same mean rate compressed into periodic bursts
  (duty cycle ``1/burst_factor``), the adversarial shape for a
  microbatcher.

Multi-cell mode: given a :class:`~repro.serve.CellRouter` and a
``corpora`` mapping, the generator interleaves several cells' corpora
over one arrival schedule, optionally forces a mid-stream hot-swap in
every cell, and audits completed requests against the exact per-cell
model version that served them — the cross-cell misroute criterion.

HTTP mode: given ``url=`` instead of an in-process target, the same
open-loop schedule, exactly-once accounting, and misroute audit run
over the wire against an :class:`~repro.serve.HttpIngress` — a pool of
keep-alive sender connections POSTs ``/classify`` (and ``/observe``),
429 responses map back onto the shed buckets via their ``reason``, and
the audit replays completions through ``POST /audit``.  The measured
latency then *includes* client-side queueing and wire overhead, which
is the point: it is what a scheduler calling over the network would
see.  ``http_batch > 1`` lets each sender coalesce its backlog into
batched ``{"tasks": [...]}`` bodies (grouped per cell, up to the knob)
— one round trip per batch instead of per task — with the same
exactly-once per-task accounting mapped back from the per-entry
results.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from http.client import BadStatusLine, CannotSendRequest, HTTPConnection
from urllib.parse import urlsplit

import numpy as np

from ..constraints.compaction import CompactedTask
from ..errors import OverloadedError
from .metrics import LatencyStats
from .microbatch import ClassifyRequest
from .router import CellRouter
from .service import ClassificationService

__all__ = ["arrival_offsets", "LoadTestReport", "LoadGenerator"]

PATTERNS = ("poisson", "bursty")


def _exponential_cover(mean_gap: float, span_s: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Cumulative exponential arrival times guaranteed to pass ``span_s``.

    Draws gap chunks until their sum covers the span: a single fixed-size
    draw (the old ``1.5×`` heuristic) can fall short on an unlucky seed,
    silently ending the arrival stream early and under-offering load.
    """

    chunks: list[np.ndarray] = []
    covered = 0.0
    size = max(16, int(span_s / mean_gap * 1.5))
    while covered <= span_s:
        gaps = rng.exponential(mean_gap, size=size)
        chunks.append(gaps)
        covered += float(gaps.sum())
    return np.cumsum(np.concatenate(chunks))


def arrival_offsets(rate: float, duration_s: float,
                    rng: np.random.Generator, pattern: str = "poisson",
                    burst_factor: float = 4.0,
                    period_s: float = 0.25) -> np.ndarray:
    """Arrival times (seconds from start) for one open-loop run."""

    if rate <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if pattern not in PATTERNS:
        raise ValueError(f"pattern must be one of {PATTERNS}")
    if pattern == "poisson":
        offsets = _exponential_cover(1.0 / rate, duration_s, rng)
        return offsets[offsets < duration_s]
    # Bursty: all arrivals land in the first 1/burst_factor of each
    # period at burst_factor × rate, preserving the mean rate.
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    hot_rate = rate * burst_factor
    duty_s = period_s / burst_factor
    # Each wall period of period_s maps to duty_s of hot-stream time, so
    # covering duration_s of wall time needs duration_s/burst_factor of
    # hot time.
    within = _exponential_cover(1.0 / hot_rate, duration_s / burst_factor,
                                rng)
    # Fold the continuous hot stream into the duty window of each period.
    offsets = (within // duty_s) * period_s + (within % duty_s)
    return offsets[offsets < duration_s]


@dataclass
class LoadTestReport:
    """Everything one load-test run measured.

    Exactly-once accounting under admission control:
    ``n_requests == n_accepted + n_shed`` (every submission either
    entered a queue or was refused at the gate) and ``n_accepted ==
    n_completed + n_evicted + n_expired + n_dropped`` (every accepted
    request finished exactly one way — classified, evicted by a
    drop-oldest policy, culled at dequeue after outliving the budget,
    or lost; ``n_dropped`` must be 0).  ``latency`` covers *accepted,
    completed* requests only — the tail the configured latency budget
    constrains.
    """

    pattern: str
    offered_rate: float
    duration_s: float
    n_requests: int
    n_completed: int
    n_dropped: int
    throughput_rps: float
    latency: LatencyStats
    n_accepted: int = 0
    n_shed: int = 0
    n_evicted: int = 0
    n_expired: int = 0
    goodput_rps: float = 0.0
    versions_served: dict[int, int] = field(default_factory=dict)
    swaps: int = 0
    trainer_updates: int = 0
    # Freshness at run end: worst-case seconds since last publish, and
    # the slowest most-recent retrain-trigger→publish latency.
    model_staleness_s: float = 0.0
    last_train_seconds: float = 0.0
    batches: int = 0
    largest_batch: int = 0
    per_cell: dict[str, int] = field(default_factory=dict)
    # All shed buckets per cell: gate + evicted + expired.
    per_cell_shed: dict[str, int] = field(default_factory=dict)
    n_audited: int = 0
    n_misrouted: int = 0

    @property
    def accept_rate(self) -> float:
        return self.n_accepted / self.n_requests if self.n_requests else 0.0

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> dict:
        """JSON-ready dict (the shape the perf trajectory records)."""

        return {
            "pattern": self.pattern,
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "n_requests": self.n_requests,
            "n_accepted": self.n_accepted,
            "n_shed": self.n_shed,
            "n_evicted": self.n_evicted,
            "n_expired": self.n_expired,
            "n_completed": self.n_completed,
            "n_dropped": self.n_dropped,
            "accept_rate": self.accept_rate,
            "shed_rate": self.shed_rate,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "latency_us": self.latency.to_dict(),
            "versions_served": {str(k): v
                                for k, v in self.versions_served.items()},
            "swaps": self.swaps,
            "trainer_updates": self.trainer_updates,
            "model_staleness_s": self.model_staleness_s,
            "last_train_seconds": self.last_train_seconds,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "per_cell": dict(self.per_cell),
            "per_cell_shed": dict(self.per_cell_shed),
            "n_audited": self.n_audited,
            "n_misrouted": self.n_misrouted,
        }

    def __str__(self) -> str:
        lat = self.latency
        text = (f"{self.pattern} @ {self.offered_rate:,.0f}/s for "
                f"{self.duration_s:.1f}s: {self.n_completed:,} classified "
                f"({self.n_dropped} dropped), {self.throughput_rps:,.0f}/s "
                f"throughput; latency p50={lat.p50_us:.0f}µs "
                f"p95={lat.p95_us:.0f}µs p99={lat.p99_us:.0f}µs; "
                f"{self.swaps} hot-swaps over {len(self.versions_served)} "
                f"version(s)")
        if self.trainer_updates:
            text += (f"; freshness: model {self.model_staleness_s:.2f}s "
                     f"old at run end, last retrain->publish "
                     f"{self.last_train_seconds:.2f}s")
        if self.n_shed or self.n_evicted or self.n_expired:
            text += (f"; shed {self.n_shed:,} at the gate + "
                     f"{self.n_evicted:,} evicted + {self.n_expired:,} "
                     f"expired ({self.accept_rate:.0%} accepted), goodput "
                     f"{self.goodput_rps:,.0f}/s")
        if self.per_cell:
            cells = ", ".join(f"{cell}={count:,}"
                              for cell, count in self.per_cell.items())
            text += (f"; cells: {cells}; {self.n_misrouted} misrouted "
                     f"of {self.n_audited} audited")
        return text


class _HttpRecord:
    """Client-side accounting for one wire-mode arrival."""

    __slots__ = ("cell", "body", "observe_body", "task_json",
                 "enqueued_ns", "completed_ns", "group", "version",
                 "outcome")

    def __init__(self, cell: str | None, body: bytes,
                 observe_body: bytes | None, task_json: str):
        self.cell = cell
        self.body = body
        self.observe_body = observe_body
        self.task_json = task_json
        self.enqueued_ns = time.perf_counter_ns()
        self.completed_ns: int | None = None
        self.group: int | None = None
        self.version: int | None = None
        # None until a sender resolves it; terminal values mirror the
        # in-process buckets: completed / rejected / evicted / expired /
        # dropped.
        self.outcome: str | None = None

    @property
    def latency_ns(self) -> int:
        assert self.completed_ns is not None
        return self.completed_ns - self.enqueued_ns


class _HttpClient:
    """One keep-alive connection to the ingress (per sender thread)."""

    def __init__(self, host: str, port: int, timeout_s: float = 15.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: HTTPConnection | None = None

    #: Failures that mean "the kept-alive socket went stale under us"
    #: (the server reaped an idle connection, or restarted between
    #: requests) — the only ones worth one transparent resend.
    #: ``RemoteDisconnected`` subclasses both ``ConnectionResetError``
    #: and ``BadStatusLine``, so both spellings are covered.
    _RETRYABLE = (ConnectionResetError, BrokenPipeError,
                  CannotSendRequest, BadStatusLine)

    def request(self, method: str, path: str,
                body: bytes | None = None) -> tuple[int, bytes]:
        headers = {"Content-Type": "application/json"} if body else {}
        # One transparent reconnect, and only for stale-socket errors:
        # a timeout, a protocol violation, or an application error must
        # surface on the first attempt — resending those would double-
        # submit work against an unhealthy server.
        for attempt in (0, 1):
            try:
                if self._conn is None:
                    self._conn = HTTPConnection(self.host, self.port,
                                                timeout=self.timeout_s)
                self._conn.request(method, path, body=body,
                                   headers=headers)
                response = self._conn.getresponse()
                return response.status, response.read()
            except self._RETRYABLE:
                self.close()
                if attempt:
                    raise
            except Exception:
                self.close()
                raise
        raise AssertionError("unreachable")

    def get_json(self, path: str) -> dict:
        status, data = self.request("GET", path)
        if status != 200:
            raise RuntimeError(f"GET {path} returned {status}")
        return json.loads(data)

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None


class LoadGenerator:
    """Drive a service (or a multi-cell router) at an offered rate.

    Parameters
    ----------
    service:
        A started :class:`~repro.serve.ClassificationService` — or a
        started :class:`~repro.serve.CellRouter` when ``corpora`` is
        given.
    tasks / labels:
        The single-cell replay corpus (e.g. ``PipelineResult.tasks`` /
        ``.labels``); cycled when shorter than the run.  When labels are
        given and ``observe_every`` > 0, every n-th submission also
        feeds the service's training loop.
    corpora:
        Multi-cell mode: ``{cell_id: (tasks, labels_or_None)}``.  Every
        cell must be registered on the router; arrivals round-robin
        across cells, each cell cycling its own corpus.
    swap_midstream:
        Republish every cell's currently-served model (a behaviour-
        preserving clone) at the halfway arrival, forcing at least one
        mid-stream hot-swap per cell — what the misroute audit and the
        zero-drop criterion are exercised against.
    audit_per_cell:
        Multi-cell mode: per cell, re-classify up to this many completed
        requests against the audited snapshot of the exact version that
        served them; any disagreement counts as a misroute.
    url / http_connections / http_batch:
        Wire mode: drive a running :class:`~repro.serve.HttpIngress` at
        ``url`` instead of an in-process target, over a pool of
        ``http_connections`` keep-alive sender connections.  Accounting
        and the misroute audit are unchanged (429 reasons map back onto
        the shed buckets; the audit goes through ``POST /audit``);
        ``swap_midstream`` is unavailable — the ingress does not expose
        publication.  ``http_batch`` > 1 coalesces each sender's
        backlog into batched ``{"tasks": [...]}`` bodies of up to that
        many tasks per round trip (grouped per cell); every task still
        resolves to exactly one outcome bucket.
    """

    def __init__(self, service: ClassificationService | CellRouter | None
                 = None,
                 tasks: list[CompactedTask] | None = None,
                 labels: np.ndarray | None = None,
                 rate: float = 5000.0, duration_s: float = 5.0,
                 pattern: str = "poisson", observe_every: int = 0,
                 drain_timeout_s: float = 30.0,
                 corpora: dict[str, tuple[list[CompactedTask],
                                          np.ndarray | None]] | None = None,
                 swap_midstream: bool = False,
                 audit_per_cell: int = 250,
                 url: str | None = None,
                 http_connections: int = 4,
                 http_batch: int = 1,
                 rng: np.random.Generator | None = None):
        if http_batch < 1:
            raise ValueError("http_batch must be >= 1")
        if http_batch > 1 and url is None:
            raise ValueError("http_batch coalescing is wire-mode only; "
                             "give a url")
        if url is not None:
            # Wire mode: the target is an HttpIngress, not an object.
            if service is not None:
                raise ValueError("give either an in-process service or a "
                                 "url, not both")
            if swap_midstream:
                raise ValueError("swap_midstream needs in-process access "
                                 "to the model handles; the HTTP ingress "
                                 "deliberately does not expose publication")
            if http_connections < 1:
                raise ValueError("http_connections must be >= 1")
            if corpora is not None:
                if tasks is not None or labels is not None:
                    raise ValueError("give either tasks/labels or corpora, "
                                     "not both")
                if not corpora:
                    raise ValueError("need at least one cell corpus")
                for cell_id, (cell_tasks, cell_labels) in corpora.items():
                    if not cell_tasks:
                        raise ValueError(f"cell {cell_id!r} has an empty "
                                         f"corpus")
                    if (cell_labels is not None
                            and len(cell_labels) != len(cell_tasks)):
                        raise ValueError(f"cell {cell_id!r}: labels and "
                                         f"tasks lengths differ")
                    if observe_every > 0 and cell_labels is None:
                        raise ValueError(f"observe_every needs labels "
                                         f"(cell {cell_id!r} has none)")
            else:
                if not tasks:
                    raise ValueError("need a non-empty task corpus")
                if labels is not None and len(labels) != len(tasks):
                    raise ValueError("labels and tasks lengths differ")
                if observe_every > 0 and labels is None:
                    raise ValueError("observe_every needs labels")
        elif corpora is not None:
            if not isinstance(service, CellRouter):
                raise ValueError("corpora needs a CellRouter target")
            if tasks is not None or labels is not None:
                raise ValueError("give either tasks/labels or corpora, "
                                 "not both")
            if not corpora:
                raise ValueError("need at least one cell corpus")
            registered = set(service.cells)
            for cell_id, (cell_tasks, cell_labels) in corpora.items():
                if cell_id not in registered:
                    raise ValueError(f"cell {cell_id!r} is not registered "
                                     f"on the router")
                if not cell_tasks:
                    raise ValueError(f"cell {cell_id!r} has an empty corpus")
                if (cell_labels is not None
                        and len(cell_labels) != len(cell_tasks)):
                    raise ValueError(f"cell {cell_id!r}: labels and tasks "
                                     f"lengths differ")
                if observe_every > 0 and cell_labels is None:
                    raise ValueError(f"observe_every needs labels "
                                     f"(cell {cell_id!r} has none)")
        else:
            if service is None:
                raise ValueError("need an in-process service (or a url)")
            if isinstance(service, CellRouter):
                raise ValueError("a CellRouter target needs corpora")
            if not tasks:
                raise ValueError("need a non-empty task corpus")
            if labels is not None and len(labels) != len(tasks):
                raise ValueError("labels and tasks lengths differ")
            if observe_every > 0 and labels is None:
                raise ValueError("observe_every needs labels")
        self.service = service
        self.tasks = tasks
        self.labels = labels
        self.corpora = corpora
        self.rate = rate
        self.duration_s = duration_s
        self.pattern = pattern
        self.observe_every = observe_every
        self.drain_timeout_s = drain_timeout_s
        self.swap_midstream = swap_midstream
        self.audit_per_cell = audit_per_cell
        self.url = url
        self.http_connections = http_connections
        self.http_batch = http_batch
        self.rng = rng or np.random.default_rng()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _cell_services(self) -> list[ClassificationService]:
        if self.corpora is not None:
            return [self.service.service(cell) for cell in self.corpora]
        return [self.service]

    def _republish_all(self) -> None:
        # A behaviour-preserving hot-swap: republishing a clone of the
        # served model bumps the version (which the audit keys on)
        # without changing any prediction.
        for service in self._cell_services():
            service.publish(service.handle.snapshot().model, clone=True)

    def _audit_misroutes(self, completed: list[ClassifyRequest]
                         ) -> tuple[int, int]:
        """Re-classify a per-cell sample against audited snapshots."""

        audited = misrouted = 0
        for cell_id in self.corpora or ():
            service = self.service.service(cell_id)
            cell_requests = [r for r in completed if r.cell == cell_id]
            if not cell_requests:
                continue
            stride = max(1, len(cell_requests) // self.audit_per_cell)
            sample = cell_requests[::stride][:self.audit_per_cell]
            for request in sample:
                # The registry may still be growing (live trainer);
                # append-only growth + align() make the replay exact.
                try:
                    expected = service.audit_classify(request.task,
                                                      request.version)
                except KeyError:  # evicted from the audit history
                    continue
                audited += 1
                misrouted += request.group != expected
        return audited, misrouted

    # ------------------------------------------------------------------
    # wire mode
    # ------------------------------------------------------------------
    def _http_streams(self) -> dict[str | None, tuple[list, list, list]]:
        """Per-stream pre-encoded wire bodies.

        Maps cell id (``None`` for the single-service stream) to
        ``(classify_bodies, observe_bodies, task_jsons)``, all aligned
        with the corpus.  Encoding once up front keeps ``json.dumps``
        off the arrival schedule.
        """

        streams: dict[str | None, tuple[list, list, list]] = {}
        sources = (self.corpora.items() if self.corpora is not None
                   else [(None, (self.tasks, self.labels))])
        for cell, (tasks, labels) in sources:
            cell_json = "" if cell is None else \
                f'"cell":{json.dumps(cell)},'
            classify_bodies, observe_bodies, task_jsons = [], [], []
            for i, task in enumerate(tasks):
                task_json = json.dumps(task.to_dict(),
                                       separators=(",", ":"))
                task_jsons.append(task_json)
                classify_bodies.append(
                    f'{{{cell_json}"task":{task_json}}}'.encode())
                if labels is not None:
                    observe_bodies.append(
                        f'{{{cell_json}"task":{task_json},'
                        f'"group":{int(labels[i])}}}'.encode())
            streams[cell] = (classify_bodies, observe_bodies, task_jsons)
        return streams

    @staticmethod
    def _shed_outcome(reason) -> str:
        return reason if reason in ("evicted", "expired") else "rejected"

    def _http_observe(self, client: _HttpClient,
                      record: _HttpRecord) -> None:
        if record.observe_body is None or record.outcome != "completed":
            return
        try:
            client.request("POST", "/observe", record.observe_body)
        except Exception:
            pass  # training feedback is best-effort

    def _http_send_one(self, client: _HttpClient,
                       record: _HttpRecord) -> None:
        try:
            status, data = client.request("POST", "/classify",
                                          record.body)
        except Exception:
            record.outcome = "dropped"
            return
        now = time.perf_counter_ns()
        if status == 200:
            payload = json.loads(data)
            record.group = payload["group"]
            record.version = payload["model_version"]
            record.completed_ns = now
            record.outcome = "completed"
        elif status == 429:
            reason = "rejected"
            try:
                reason = json.loads(data).get("reason", reason)
            except Exception:
                pass
            record.outcome = self._shed_outcome(reason)
        else:
            record.outcome = "dropped"
        self._http_observe(client, record)

    def _http_send_group(self, client: _HttpClient,
                         records: list[_HttpRecord]) -> None:
        """POST one same-cell group as a batched body; map the per-entry
        results back onto the records (exactly-once, in order)."""

        cell = records[0].cell
        cell_json = "" if cell is None else f'"cell":{json.dumps(cell)},'
        body = (f'{{{cell_json}"tasks":['
                + ",".join(r.task_json for r in records)
                + "]}").encode()
        try:
            status, data = client.request("POST", "/classify", body)
        except Exception:
            for record in records:
                record.outcome = "dropped"
            return
        now = time.perf_counter_ns()
        if status == 429:
            # Whole-body shed: admission priced the batch as a unit.
            reason = "rejected"
            try:
                reason = json.loads(data).get("reason", reason)
            except Exception:
                pass
            outcome = self._shed_outcome(reason)
            for record in records:
                record.outcome = outcome
            return
        results = None
        if status == 200:
            try:
                results = json.loads(data)["results"]
            except Exception:
                results = None
        if not isinstance(results, list) or len(results) != len(records):
            for record in records:
                record.outcome = "dropped"
            return
        for record, entry in zip(records, results):
            if not isinstance(entry, dict) or "error" in entry:
                if isinstance(entry, dict) and entry.get("status") == 429:
                    record.outcome = self._shed_outcome(
                        entry.get("reason"))
                else:
                    record.outcome = "dropped"
                continue
            record.group = entry["group"]
            record.version = entry["model_version"]
            record.completed_ns = now
            record.outcome = "completed"
            self._http_observe(client, record)

    def _http_sender(self, client: _HttpClient,
                     work: "queue.Queue[_HttpRecord | None]") -> None:
        """Sender loop: drain the feed, coalescing up to ``http_batch``
        backlogged records per round trip (grouped per cell).

        The ``None`` sentinel stops the sender; sentinels are enqueued
        after every record, so one seen mid-coalesce still lets the
        already-claimed records go out first.
        """

        stop = False
        while not stop:
            first = work.get()
            if first is None:
                work.task_done()
                break
            claimed: list[_HttpRecord] = [first]
            while len(claimed) < self.http_batch:
                try:
                    extra = work.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    work.task_done()
                    stop = True
                    break
                claimed.append(extra)
            try:
                if len(claimed) == 1:
                    self._http_send_one(client, claimed[0])
                else:
                    by_cell: dict[str | None, list[_HttpRecord]] = {}
                    for record in claimed:
                        by_cell.setdefault(record.cell, []).append(record)
                    for group in by_cell.values():
                        if len(group) == 1:
                            self._http_send_one(client, group[0])
                        else:
                            self._http_send_group(client, group)
            finally:
                for _ in claimed:
                    work.task_done()
        client.close()

    def _audit_http(self, client: _HttpClient,
                    completed: list[_HttpRecord]) -> tuple[int, int]:
        """Wire-level misroute audit: replay a per-cell sample through
        ``POST /audit`` under the exact version that served it."""

        audited = misrouted = 0
        cells = (list(self.corpora) if self.corpora is not None
                 else [None])
        for cell in cells:
            cell_records = [r for r in completed if r.cell == cell]
            if not cell_records:
                continue
            stride = max(1, len(cell_records) // self.audit_per_cell)
            sample = cell_records[::stride][:self.audit_per_cell]
            cell_json = "" if cell is None else \
                f'"cell":{json.dumps(cell)},'
            for record in sample:
                body = (f'{{{cell_json}"task":{record.task_json},'
                        f'"version":{record.version}}}'.encode())
                try:
                    status, data = client.request("POST", "/audit", body)
                except Exception:
                    continue
                if status == 410:
                    continue  # version evicted from the audit history
                if status != 200:
                    continue
                audited += 1
                misrouted += json.loads(data)["group"] != record.group
        return audited, misrouted

    def _http_final_stats(self, client: _HttpClient) -> dict:
        """Aggregate the ingress's per-cell ``/stats`` into the report's
        freshness/batching fields."""

        totals = {"versions_served": {}, "swaps": 0, "trainer_updates": 0,
                  "model_staleness_s": 0.0, "last_train_seconds": 0.0,
                  "batches": 0, "largest_batch": 0}
        try:
            payload = client.get_json("/stats")
        except Exception:
            return totals
        for cell_payload in payload.get("cells", {}).values():
            stats = cell_payload.get("stats", {})
            for version, count in stats.get("versions_served",
                                            {}).items():
                key = int(version)
                totals["versions_served"][key] = \
                    totals["versions_served"].get(key, 0) + count
            totals["swaps"] += stats.get("swaps", 0)
            totals["trainer_updates"] += stats.get("trainer_updates", 0)
            totals["batches"] += stats.get("batches", 0)
            totals["largest_batch"] = max(totals["largest_batch"],
                                          stats.get("largest_batch", 0))
            totals["model_staleness_s"] = max(
                totals["model_staleness_s"],
                stats.get("model_staleness_s", 0.0))
            totals["last_train_seconds"] = max(
                totals["last_train_seconds"],
                stats.get("last_train_seconds", 0.0))
        return totals

    def _run_http(self) -> LoadTestReport:
        split = urlsplit(self.url)
        if split.hostname is None:
            raise ValueError(f"url {self.url!r} has no host")
        host, port = split.hostname, split.port or 80
        control = _HttpClient(host, port)
        if self.corpora is not None:
            served = set(control.get_json("/cells")["cells"])
            missing = set(self.corpora) - served
            if missing:
                raise ValueError(f"cells {sorted(missing)} are not served "
                                 f"at {self.url} (cells: {sorted(served)})")
        streams = self._http_streams()
        stream_keys = list(streams)
        observe_every = self.observe_every

        work: queue.Queue[_HttpRecord | None] = queue.Queue()
        senders = []
        for i in range(self.http_connections):
            client = _HttpClient(host, port)
            thread = threading.Thread(target=self._http_sender,
                                      args=(client, work),
                                      name=f"repro-loadgen-http-{i}",
                                      daemon=True)
            thread.start()
            senders.append(thread)

        offsets = arrival_offsets(self.rate, self.duration_s, self.rng,
                                  pattern=self.pattern)
        records: list[_HttpRecord] = []
        cursor = dict.fromkeys(stream_keys, 0)
        start = time.perf_counter()
        for i, offset in enumerate(offsets):
            while True:
                lag = offset - (time.perf_counter() - start)
                if lag <= 0:
                    break
                time.sleep(min(lag, 2e-4))
            cell = stream_keys[i % len(stream_keys)]
            classify_bodies, observe_bodies, task_jsons = streams[cell]
            j = cursor[cell]
            cursor[cell] = j + 1
            k = j % len(classify_bodies)
            observe_body = None
            if observe_every and j % observe_every == 0 and observe_bodies:
                observe_body = observe_bodies[k]
            record = _HttpRecord(cell, classify_bodies[k], observe_body,
                                 task_jsons[k])
            records.append(record)
            work.put(record)

        # Drain: stop-feed sentinels, then give the senders the shared
        # deadline to finish the backlog; unresolved records count as
        # dropped (the zero criterion).
        for _ in senders:
            work.put(None)
        deadline = time.monotonic() + self.drain_timeout_s
        for thread in senders:
            thread.join(max(0.0, deadline - time.monotonic()))

        completed = [r for r in records if r.outcome == "completed"]
        rejected = sum(r.outcome == "rejected" for r in records)
        evicted = sum(r.outcome == "evicted" for r in records)
        expired = sum(r.outcome == "expired" for r in records)
        dropped = len(records) - len(completed) - rejected \
            - evicted - expired

        if completed:
            start_ns = min(r.enqueued_ns for r in completed)
            end_ns = max(r.completed_ns for r in completed)
            throughput = len(completed) / max((end_ns - start_ns) / 1e9,
                                              1e-9)
        else:
            throughput = 0.0

        per_cell: dict[str, int] = {}
        per_cell_shed: dict[str, int] = {}
        if self.corpora is not None:
            per_cell = dict.fromkeys(self.corpora, 0)
            per_cell_shed = dict.fromkeys(self.corpora, 0)
            for record in records:
                if record.outcome == "completed":
                    per_cell[record.cell] += 1
                elif record.outcome in ("rejected", "evicted", "expired"):
                    per_cell_shed[record.cell] += 1
        audited, misrouted = self._audit_http(control, completed)
        totals = self._http_final_stats(control)
        control.close()

        return LoadTestReport(
            pattern=self.pattern, offered_rate=self.rate,
            duration_s=self.duration_s,
            n_requests=len(records),
            n_accepted=len(records) - rejected, n_shed=rejected,
            n_evicted=evicted, n_expired=expired,
            n_completed=len(completed), n_dropped=dropped,
            throughput_rps=throughput,
            goodput_rps=len(completed) / self.duration_s,
            latency=LatencyStats.from_ns(
                np.fromiter((r.latency_ns for r in completed),
                            dtype=np.float64, count=len(completed))),
            versions_served=totals["versions_served"],
            swaps=totals["swaps"],
            trainer_updates=totals["trainer_updates"],
            model_staleness_s=totals["model_staleness_s"],
            last_train_seconds=totals["last_train_seconds"],
            batches=totals["batches"],
            largest_batch=totals["largest_batch"],
            per_cell=per_cell, per_cell_shed=per_cell_shed,
            n_audited=audited, n_misrouted=misrouted)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> LoadTestReport:
        if self.url is not None:
            return self._run_http()
        offsets = arrival_offsets(self.rate, self.duration_s, self.rng,
                                  pattern=self.pattern)
        multi = self.corpora is not None
        observe_every = self.observe_every
        swap_at = len(offsets) // 2 if self.swap_midstream else -1
        if multi:
            cell_ids = list(self.corpora)
            cell_cursor = dict.fromkeys(cell_ids, 0)
            submit = self.service.submit
            observe = self.service.observe
        else:
            tasks, labels = self.tasks, self.labels
            n_tasks = len(tasks)
            submit = self.service.submit
            observe = self.service.observe

        requests: list[ClassifyRequest] = []
        n_shed = 0
        per_cell_shed: dict[str, int] = (dict.fromkeys(self.corpora, 0)
                                         if multi else {})
        swapper: threading.Thread | None = None
        start = time.perf_counter()
        for i, offset in enumerate(offsets):
            # Open loop: sleep only when ahead of schedule, never to
            # catch up — a backlog is the service's problem to absorb.
            while True:
                lag = offset - (time.perf_counter() - start)
                if lag <= 0:
                    break
                time.sleep(min(lag, 2e-4))
            if i == swap_at:
                # Off-thread: the checkpoint clone per cell would stall
                # the arrival schedule right where the audit looks.
                swapper = threading.Thread(target=self._republish_all,
                                           name="repro-loadgen-swapper",
                                           daemon=True)
                swapper.start()
            if multi:
                cell = cell_ids[i % len(cell_ids)]
                cell_tasks, cell_labels = self.corpora[cell]
                j = cell_cursor[cell]
                cell_cursor[cell] = j + 1
                task = cell_tasks[j % len(cell_tasks)]
                try:
                    requests.append(submit(cell, task))
                except OverloadedError:
                    # Shed at the gate: an open-loop source drops the
                    # task and stays on schedule (no observe either —
                    # the cell declined the work entirely).
                    n_shed += 1
                    per_cell_shed[cell] += 1
                    continue
                # Cadence on the per-cell cursor, not the global arrival
                # index: the global one aliases with the round-robin
                # (observe_every=2 over 2 cells would starve one cell's
                # trainer entirely).
                if observe_every and j % observe_every == 0:
                    observe(cell, task,
                            int(cell_labels[j % len(cell_tasks)]))
            else:
                task = tasks[i % n_tasks]
                try:
                    requests.append(submit(task))
                except OverloadedError:
                    n_shed += 1
                    continue
                if observe_every and i % observe_every == 0:
                    observe(task, int(labels[i % n_tasks]))

        if swapper is not None:
            swapper.join(self.drain_timeout_s)

        # Drain: every accepted request must finish.  Drop-oldest
        # eviction and dequeue-time budget expiry are *shed* outcomes;
        # anything else that never classified counts as dropped (must
        # be zero).
        deadline = time.monotonic() + self.drain_timeout_s
        for request in requests:
            request.wait(max(0.0, deadline - time.monotonic()))
        completed = [r for r in requests if r.ok]
        overloaded = [r for r in requests
                      if r.done and isinstance(r.error, OverloadedError)]
        evicted = [r for r in overloaded if r.error.reason == "evicted"]
        expired = [r for r in overloaded if r.error.reason == "expired"]
        dropped = len(requests) - len(completed) - len(overloaded)

        latencies = [r.latency_ns for r in completed]
        if completed:
            start_ns = min(r.enqueued_ns for r in completed)
            end_ns = max(r.completed_ns for r in completed)
            wall_s = max((end_ns - start_ns) / 1e9, 1e-9)
            throughput = len(completed) / wall_s
        else:
            throughput = 0.0
        # Goodput normalizes useful completions to the *offered* window,
        # so shedding (unlike unbounded queueing) shows up directly.
        goodput = len(completed) / self.duration_s

        per_cell: dict[str, int] = {}
        audited = misrouted = 0
        if multi:
            for cell_id in self.corpora:
                per_cell[cell_id] = 0
            for request in completed:
                per_cell[request.cell] += 1
            # Gate sheds were attributed as they happened; admitted-
            # then-shed outcomes join them so per_cell_shed covers
            # every shed bucket.
            for request in overloaded:
                per_cell_shed[request.cell] += 1
            audited, misrouted = self._audit_misroutes(completed)

        stats = self.service.stats()
        return LoadTestReport(
            pattern=self.pattern, offered_rate=self.rate,
            duration_s=self.duration_s,
            n_requests=len(requests) + n_shed,
            n_accepted=len(requests), n_shed=n_shed,
            n_evicted=len(evicted), n_expired=len(expired),
            n_completed=len(completed), n_dropped=dropped,
            throughput_rps=throughput, goodput_rps=goodput,
            latency=LatencyStats.from_ns(latencies),
            versions_served=stats.versions_served,
            swaps=stats.swaps, trainer_updates=stats.trainer_updates,
            model_staleness_s=stats.model_staleness_s,
            last_train_seconds=stats.last_train_seconds,
            batches=stats.batches, largest_batch=stats.largest_batch,
            per_cell=per_cell, per_cell_shed=per_cell_shed,
            n_audited=audited, n_misrouted=misrouted)
