"""Serving-side measurement: latency percentiles and service counters.

The simulator's :class:`~repro.sim.LatencyRecorder` measures *scheduling*
latency in simulated seconds; the serving layer measures *classification*
latency in real microseconds, tail-first (p50/p95/p99) because the Task
CO Analyzer sits on the task-arrival path and its tail is what the main
scheduler would ever wait on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyStats", "ServiceStats"]


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Percentile summary of a latency population, in microseconds."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_ns(cls, latencies_ns) -> "LatencyStats":
        arr = np.asarray(list(latencies_ns), dtype=np.float64)
        if arr.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr_us = arr / 1e3
        p50, p95, p99 = np.percentile(arr_us, (50, 95, 99))
        return cls(int(arr.size), float(arr_us.mean()), float(p50),
                   float(p95), float(p99), float(arr_us.max()))

    def to_dict(self) -> dict:
        return {"count": self.count, "mean_us": self.mean_us,
                "p50_us": self.p50_us, "p95_us": self.p95_us,
                "p99_us": self.p99_us, "max_us": self.max_us}

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean_us:.0f}µs "
                f"p50={self.p50_us:.0f}µs p95={self.p95_us:.0f}µs "
                f"p99={self.p99_us:.0f}µs max={self.max_us:.0f}µs")


@dataclass
class ServiceStats:
    """A point-in-time view of one classification service's counters."""

    requests: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    failed: int = 0
    pending: int = 0
    batches: int = 0
    largest_batch: int = 0
    versions_served: dict[int, int] = field(default_factory=dict)
    model_version: int = 0
    swaps: int = 0
    trainer_updates: int = 0
    trainer_failures: int = 0
    observations: int = 0

    @property
    def mean_batch(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests, "completed": self.completed,
            "rejected": self.rejected, "cancelled": self.cancelled,
            "failed": self.failed, "pending": self.pending,
            "batches": self.batches, "largest_batch": self.largest_batch,
            "mean_batch": self.mean_batch,
            "versions_served": dict(self.versions_served),
            "model_version": self.model_version, "swaps": self.swaps,
            "trainer_updates": self.trainer_updates,
            "trainer_failures": self.trainer_failures,
            "observations": self.observations,
        }
