"""Serving-side measurement: latency percentiles and service counters.

The simulator's :class:`~repro.sim.LatencyRecorder` measures *scheduling*
latency in simulated seconds; the serving layer measures *classification*
latency in real microseconds, tail-first (p50/p95/p99) because the Task
CO Analyzer sits on the task-arrival path and its tail is what the main
scheduler would ever wait on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyStats", "ServiceStats", "RouterStats"]


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Percentile summary of a latency population, in microseconds."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_ns(cls, latencies_ns) -> "LatencyStats":
        if isinstance(latencies_ns, np.ndarray):
            arr = latencies_ns.astype(np.float64, copy=False).ravel()
        else:
            # Deques (the load generator's recorder) and other sized
            # iterables stream straight into the output buffer — no
            # intermediate list materialization.
            try:
                count = len(latencies_ns)
            except TypeError:
                count = -1
            arr = np.fromiter(latencies_ns, dtype=np.float64, count=count)
        if arr.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr_us = arr / 1e3
        p50, p95, p99 = np.percentile(arr_us, (50, 95, 99))
        return cls(int(arr.size), float(arr_us.mean()), float(p50),
                   float(p95), float(p99), float(arr_us.max()))

    def to_dict(self) -> dict:
        return {"count": self.count, "mean_us": self.mean_us,
                "p50_us": self.p50_us, "p95_us": self.p95_us,
                "p99_us": self.p99_us, "max_us": self.max_us}

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean_us:.0f}µs "
                f"p50={self.p50_us:.0f}µs p95={self.p95_us:.0f}µs "
                f"p99={self.p99_us:.0f}µs max={self.max_us:.0f}µs")


@dataclass
class ServiceStats:
    """A point-in-time view of one classification service's counters."""

    requests: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    failed: int = 0
    shed_rejected: int = 0
    shed_evicted: int = 0
    shed_expired: int = 0
    batch_limit: int = 0
    wait_limit_us: int = 0
    pending: int = 0
    batches: int = 0
    compiled_batches: int = 0
    largest_batch: int = 0
    versions_served: dict[int, int] = field(default_factory=dict)
    model_version: int = 0
    swaps: int = 0
    trainer_updates: int = 0
    trainer_failures: int = 0
    observations: int = 0
    workers: int = 1
    shard_completed: tuple[int, ...] = ()
    #: Freshness gauge: seconds since the active snapshot published
    #: (now − last publish).  What the continuous-retraining loop is
    #: minimizing; 0.0 when nothing is served yet — check
    #: :attr:`has_published` to tell "idle, never published" apart from
    #: "just published".
    model_staleness_s: float = 0.0
    #: True once at least one model version has been published; guards
    #: against reading an idle service's 0.0 staleness as "fresh".
    has_published: bool = False
    #: Wall-clock (``time.time()``) of the most recent publication, 0.0
    #: before the first one — lets dashboards plot absolute freshness.
    last_publish_unix: float = 0.0
    #: Trigger→publish latency of the most recent background retrain
    #: (0.0 until one completes).
    last_train_seconds: float = 0.0
    #: Staged-rollout counters (all 0 when no rollout controller is
    #: configured): candidates staged for canary traffic, promoted to
    #: active, auto-rolled-back on a regression window, rejected by the
    #: shadow gate; plus requests the candidate actually served.
    rollouts_staged: int = 0
    rollouts_promoted: int = 0
    rollouts_rolled_back: int = 0
    rollouts_shadow_rejected: int = 0
    canary_served: int = 0
    #: Gauges of the live canary state: traffic fraction routed to the
    #: staged candidate (0.0 when none), its version (0 when none), and
    #: how many recent live tasks the replay ring retains.
    canary_fraction: float = 0.0
    candidate_version: int = 0
    replay_window: int = 0
    #: Label-distribution drift of the trainer's live observation
    #: window vs the last publish (total-variation distance, 0..1).
    drift: float = 0.0
    #: Consecutive crashed retrain attempts (health gauge; resets on a
    #: clean cycle).
    trainer_consecutive_failures: int = 0
    #: Durability counters (0 without a ``--state-dir``): checkpoints
    #: written to the cell's store, and failures (failed writes plus
    #: corrupt files quarantined during recovery).
    checkpoints: int = 0
    checkpoint_failures: int = 0
    #: Gauge: the model version restored from disk at boot (0 on a cold
    #: start) — the crash-drill's "no cold retrain" witness.
    restored_version: int = 0
    #: Self-healing plane: breaker state gauge (0 closed / 1 half-open /
    #: 2 open), trip and fast-fail counters, supervised component
    #: restarts, and the degraded-mode gauge (serving from the last-good
    #: snapshot with training suspended).
    breaker_state: int = 0
    breaker_trips: int = 0
    breaker_rejected: int = 0
    supervisor_restarts: int = 0
    degraded: bool = False

    @property
    def mean_batch(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    @property
    def shed(self) -> int:
        """Work shed by admission control: gate rejections, drop-oldest
        evictions, and dequeue-time budget expiries."""

        return self.shed_rejected + self.shed_evicted + self.shed_expired

    def to_dict(self) -> dict:
        return {
            "requests": self.requests, "completed": self.completed,
            "rejected": self.rejected, "cancelled": self.cancelled,
            "failed": self.failed, "shed_rejected": self.shed_rejected,
            "shed_evicted": self.shed_evicted,
            "shed_expired": self.shed_expired, "shed": self.shed,
            "batch_limit": self.batch_limit,
            "wait_limit_us": self.wait_limit_us,
            "pending": self.pending,
            "batches": self.batches, "largest_batch": self.largest_batch,
            "compiled_batches": self.compiled_batches,
            "mean_batch": self.mean_batch,
            "versions_served": dict(self.versions_served),
            "model_version": self.model_version, "swaps": self.swaps,
            "trainer_updates": self.trainer_updates,
            "trainer_failures": self.trainer_failures,
            "observations": self.observations,
            "workers": self.workers,
            "shard_completed": list(self.shard_completed),
            "model_staleness_s": self.model_staleness_s,
            "has_published": self.has_published,
            "last_publish_unix": self.last_publish_unix,
            "last_train_seconds": self.last_train_seconds,
            "rollouts_staged": self.rollouts_staged,
            "rollouts_promoted": self.rollouts_promoted,
            "rollouts_rolled_back": self.rollouts_rolled_back,
            "rollouts_shadow_rejected": self.rollouts_shadow_rejected,
            "canary_served": self.canary_served,
            "canary_fraction": self.canary_fraction,
            "candidate_version": self.candidate_version,
            "replay_window": self.replay_window,
            "drift": self.drift,
            "trainer_consecutive_failures":
                self.trainer_consecutive_failures,
            "checkpoints": self.checkpoints,
            "checkpoint_failures": self.checkpoint_failures,
            "restored_version": self.restored_version,
            "breaker_state": self.breaker_state,
            "breaker_trips": self.breaker_trips,
            "breaker_rejected": self.breaker_rejected,
            "supervisor_restarts": self.supervisor_restarts,
            "degraded": self.degraded,
        }


@dataclass
class RouterStats:
    """Merged point-in-time view over a router's per-cell services.

    ``cells`` maps cell id to that cell's :class:`ServiceStats`; the
    aggregate properties sum (or max, for ``largest_batch``) across
    cells.  Model versions are per-cell counters, so the merged
    ``versions_served`` sums counts of the *same version number* across
    different cells — use ``cells`` when per-cell attribution matters.
    """

    cells: dict[str, "ServiceStats"] = field(default_factory=dict)

    def _sum(self, attr: str) -> int:
        return sum(getattr(s, attr) for s in self.cells.values())

    @property
    def requests(self) -> int:
        return self._sum("requests")

    @property
    def completed(self) -> int:
        return self._sum("completed")

    @property
    def rejected(self) -> int:
        return self._sum("rejected")

    @property
    def cancelled(self) -> int:
        return self._sum("cancelled")

    @property
    def failed(self) -> int:
        return self._sum("failed")

    @property
    def shed_rejected(self) -> int:
        return self._sum("shed_rejected")

    @property
    def shed_evicted(self) -> int:
        return self._sum("shed_evicted")

    @property
    def shed_expired(self) -> int:
        return self._sum("shed_expired")

    @property
    def shed(self) -> int:
        return self.shed_rejected + self.shed_evicted + self.shed_expired

    @property
    def pending(self) -> int:
        return self._sum("pending")

    @property
    def batches(self) -> int:
        return self._sum("batches")

    @property
    def compiled_batches(self) -> int:
        return self._sum("compiled_batches")

    @property
    def largest_batch(self) -> int:
        return max((s.largest_batch for s in self.cells.values()), default=0)

    @property
    def swaps(self) -> int:
        return self._sum("swaps")

    @property
    def trainer_updates(self) -> int:
        return self._sum("trainer_updates")

    @property
    def trainer_failures(self) -> int:
        return self._sum("trainer_failures")

    @property
    def observations(self) -> int:
        return self._sum("observations")

    @property
    def rollouts_staged(self) -> int:
        return self._sum("rollouts_staged")

    @property
    def rollouts_promoted(self) -> int:
        return self._sum("rollouts_promoted")

    @property
    def rollouts_rolled_back(self) -> int:
        return self._sum("rollouts_rolled_back")

    @property
    def rollouts_shadow_rejected(self) -> int:
        return self._sum("rollouts_shadow_rejected")

    @property
    def canary_served(self) -> int:
        return self._sum("canary_served")

    @property
    def drift(self) -> float:
        """Worst (largest) per-cell label-drift signal."""

        return max((s.drift for s in self.cells.values()), default=0.0)

    @property
    def trainer_consecutive_failures(self) -> int:
        """Worst per-cell crashed-retrain streak."""

        return max((s.trainer_consecutive_failures
                    for s in self.cells.values()), default=0)

    @property
    def checkpoints(self) -> int:
        return self._sum("checkpoints")

    @property
    def checkpoint_failures(self) -> int:
        return self._sum("checkpoint_failures")

    @property
    def restored_version(self) -> int:
        """Highest version any cell warm-restored from disk (0 when
        every cell cold-started)."""

        return max((s.restored_version for s in self.cells.values()),
                   default=0)

    @property
    def breaker_state(self) -> int:
        """Worst (most-open) per-cell breaker state."""

        return max((s.breaker_state for s in self.cells.values()),
                   default=0)

    @property
    def breaker_trips(self) -> int:
        return self._sum("breaker_trips")

    @property
    def breaker_rejected(self) -> int:
        return self._sum("breaker_rejected")

    @property
    def supervisor_restarts(self) -> int:
        return self._sum("supervisor_restarts")

    @property
    def degraded(self) -> bool:
        """True when *any* cell is serving in degraded mode."""

        return any(s.degraded for s in self.cells.values())

    @property
    def model_staleness_s(self) -> float:
        """Worst-case freshness across cells (max of the per-cell
        now − last publish gauges)."""

        return max((s.model_staleness_s for s in self.cells.values()),
                   default=0.0)

    @property
    def last_train_seconds(self) -> float:
        """Slowest most-recent retrain→publish across cells."""

        return max((s.last_train_seconds for s in self.cells.values()),
                   default=0.0)

    @property
    def has_published(self) -> bool:
        """True only when *every* cell has published at least once
        (worst-case semantics, matching the staleness max)."""

        return bool(self.cells) and all(s.has_published
                                        for s in self.cells.values())

    @property
    def last_publish_unix(self) -> float:
        """Oldest per-cell last-publish wall clock (worst case); 0.0
        when any cell has yet to publish."""

        if not self.has_published:
            return 0.0
        return min(s.last_publish_unix for s in self.cells.values())

    @property
    def versions_served(self) -> dict[int, int]:
        merged: dict[int, int] = {}
        for stats in self.cells.values():
            for version, count in stats.versions_served.items():
                merged[version] = merged.get(version, 0) + count
        return merged

    def to_dict(self) -> dict:
        return {
            "cells": {cell: stats.to_dict()
                      for cell, stats in self.cells.items()},
            "requests": self.requests, "completed": self.completed,
            "rejected": self.rejected, "cancelled": self.cancelled,
            "failed": self.failed, "shed_rejected": self.shed_rejected,
            "shed_evicted": self.shed_evicted,
            "shed_expired": self.shed_expired, "shed": self.shed,
            "pending": self.pending,
            "batches": self.batches, "largest_batch": self.largest_batch,
            "compiled_batches": self.compiled_batches,
            "swaps": self.swaps, "trainer_updates": self.trainer_updates,
            "trainer_failures": self.trainer_failures,
            "observations": self.observations,
            "model_staleness_s": self.model_staleness_s,
            "has_published": self.has_published,
            "last_publish_unix": self.last_publish_unix,
            "last_train_seconds": self.last_train_seconds,
            "rollouts_staged": self.rollouts_staged,
            "rollouts_promoted": self.rollouts_promoted,
            "rollouts_rolled_back": self.rollouts_rolled_back,
            "rollouts_shadow_rejected": self.rollouts_shadow_rejected,
            "canary_served": self.canary_served,
            "drift": self.drift,
            "trainer_consecutive_failures":
                self.trainer_consecutive_failures,
            "checkpoints": self.checkpoints,
            "checkpoint_failures": self.checkpoint_failures,
            "restored_version": self.restored_version,
            "breaker_state": self.breaker_state,
            "breaker_trips": self.breaker_trips,
            "breaker_rejected": self.breaker_rejected,
            "supervisor_restarts": self.supervisor_restarts,
            "degraded": self.degraded,
        }
