"""Microbatching request queue for the online Task CO Analyzer.

Single-row inference wastes the model's vectorization: a two-layer
matmul over one row costs nearly the same as over sixty-four.  The
batcher therefore collects concurrent arrivals for at most
``max_wait_us`` microseconds (or until ``max_batch`` requests are
queued), encodes them as one CO-VV block, and classifies the block with
a single ``predict`` call — the standard dynamic-batching strategy of
model servers, tuned here for the analyzer's sub-millisecond budget.

Hot-swap atomicity: a worker takes **one** model snapshot per batch
and aligns the encoded block to that snapshot's input width, so every
request in a batch is classified by exactly one published version — a
publication landing mid-batch only affects the *next* batch.

Sharding: ``n_workers`` worker threads drain the same queue.  Each
shard owns a private :class:`~repro.datasets.COVVEncoder` (the per-spec
memo is never shared, so the registry lock is held only for the encode
itself, not across shards), takes whole batches, and keeps per-shard
counters that :meth:`MicroBatcher.counters` merges under ``stats_lock``
with the aggregate view.

Compiled fast path: with ``compile=True`` (default) a worker serves
each batch through its snapshot's fused
:class:`~repro.core.InferencePlan` — the CO-VV block stays CSR into
the first GEMM (no ``toarray()``, no dense ``align`` copy) and the
dense layers run ``np.dot(..., out=)`` into a per-shard
:class:`~repro.core.PlanScratch` rebuilt only when a hot-swap installs
a new plan.  Snapshots without a plan (duck-typed doubles, or
``compile=False``) fall back to the eager ``align`` + ``predict``
path, which doubles as the fast path's equivalence oracle.

Overload: an optional :class:`~repro.serve.AdmissionController` gates
:meth:`MicroBatcher.submit` — arrivals that would blow the cell's
latency budget (or hard queue cap) are shed with a typed
:class:`~repro.errors.OverloadedError` (policy ``"reject"``) or admitted
at the cost of evicting the oldest queued request (``"drop-oldest"``).
An optional :class:`~repro.serve.AutoTuner` continuously re-fits
``max_batch`` / ``max_wait_us`` to the observed arrival rate.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..analysis.concur.runtime import new_condition, new_lock
from ..constraints.compaction import CompactedTask
from ..core.inference_plan import PlanScratch
from ..datasets.co_vv import COVVEncoder
from ..datasets.registry import FeatureRegistry
from ..errors import OverloadedError, ServiceClosedError, ServiceError
from .admission import AdmissionController, AutoTuner
from .handle import ModelHandle

__all__ = ["ClassifyRequest", "MicroBatcher"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class _CanaryResult:
    """Outcome of serving one batch's canary slice with the candidate."""

    idx: list[int]
    groups: np.ndarray
    version: int
    agree: int
    cand_conf: float
    inc_conf: float
    conf_n: int


class ClassifyRequest:
    """One in-flight classification; completed by a batch worker.

    ``cell`` stays ``None`` for a directly-submitted request; the
    multi-cell :class:`~repro.serve.CellRouter` annotates it with the
    cell id the request was dispatched to, which is what the load
    generator's misroute audit keys on.
    """

    __slots__ = ("task", "enqueued_ns", "completed_ns", "group", "version",
                 "cell", "error", "_event")

    def __init__(self, task: CompactedTask):
        self.task = task
        self.enqueued_ns = time.perf_counter_ns()
        self.completed_ns: int | None = None
        self.group: int | None = None
        self.version: int | None = None
        self.cell: str | None = None
        self.error: Exception | None = None
        self._event = threading.Event()

    def _complete(self, group: int, version: int, now_ns: int) -> None:
        self.group = group
        self.version = version
        self.completed_ns = now_ns
        self._event.set()

    def _fail(self, error: Exception) -> None:
        self.error = error
        self._event.set()

    @property
    def done(self) -> bool:
        """The request finished — successfully (:attr:`ok`) or not."""

        return self._event.is_set()

    @property
    def ok(self) -> bool:
        return self._event.is_set() and self.error is None

    def wait(self, timeout: float | None = None) -> bool:
        """Block until finished (either way); False on timeout."""

        return self._event.wait(timeout)

    @property
    def latency_ns(self) -> int:
        if self.completed_ns is None:
            raise RuntimeError("request not completed yet")
        return self.completed_ns - self.enqueued_ns

    @property
    def latency_us(self) -> float:
        return self.latency_ns / 1e3

    def result(self, timeout: float | None = None) -> int:
        """The predicted group, blocking until available.

        Raises the failure (wrapped in :class:`~repro.errors.ServiceError`
        if needed) when the serving batch errored or was cancelled.
        """

        if not self.wait(timeout):
            raise TimeoutError("classification did not complete in time")
        if self.error is not None:
            if isinstance(self.error, ServiceError):
                raise self.error
            raise ServiceError("classification failed") from self.error
        assert self.group is not None
        return self.group


class MicroBatcher:
    """Collect requests for ≤``max_wait_us`` µs or ≤``max_batch`` tasks.

    ``n_workers`` daemon workers drain the queue; :meth:`stop` with the
    default ``drain=True`` processes everything already accepted before
    exiting, so accepted requests are never dropped — submissions after
    the batcher closed raise :class:`~repro.errors.ServiceClosedError`
    instead of silently vanishing.
    """

    def __init__(self, handle: ModelHandle, registry: FeatureRegistry,
                 max_batch: int = 64, max_wait_us: int = 500,
                 encoder: COVVEncoder | None = None,
                 registry_lock: threading.Lock | None = None,
                 n_workers: int = 1,
                 admission: AdmissionController | None = None,
                 autotuner: AutoTuner | None = None,
                 compile: bool = True,
                 telemetry=None,
                 rollout=None):
        """``registry_lock`` must be shared with whatever grows the
        registry concurrently (the service wires the trainer's lock in):
        the CO-VV append-only invariant makes *grown* registries safe to
        serve, but an append landing mid-``encode_rows`` would emit
        column indices beyond the matrix width scipy silently drops.
        A passed ``encoder`` becomes shard 0's; further shards always
        get private encoders.

        ``admission`` gates every submit (see the module docstring);
        ``autotuner`` takes ownership of ``max_batch`` / ``max_wait_us``
        — the constructor values then only seed the pre-first-arrival
        state, and workers re-read both attributes every wakeup.

        ``compile=False`` forces every batch down the eager
        ``align`` + ``predict`` path even when snapshots carry a
        compiled plan (the equivalence-oracle mode).

        ``telemetry`` (a :class:`~repro.serve.telemetry.Telemetry` with
        at least ``n_workers`` shards) turns on stage timing: producers
        record the submit→enqueue stage, each worker writes queue-wait /
        assembly / inference / total into its private shard histograms,
        and shed-episode transitions and autotuner re-fits land in the
        structural event log.

        ``rollout`` (a :class:`~repro.serve.rollout.RolloutController`)
        turns on staged rollout on the serving path: every completed
        batch feeds its replay ring, and while the handle holds a
        staged candidate the canary slice of each batch is served by it
        (deterministic per-task hash split) with the outcome reported
        to the controller."""

        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us cannot be negative")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.handle = handle
        self.registry = registry
        self.max_batch = max_batch  # guarded-by: _cond
        self.max_wait_us = max_wait_us  # guarded-by: _cond
        self.n_workers = n_workers
        self.admission = admission
        self.autotuner = autotuner
        self.compile = compile
        if telemetry is not None and telemetry.n_shards < n_workers:
            raise ValueError(
                f"telemetry has {telemetry.n_shards} shard timing slots "
                f"for {n_workers} workers")
        self.telemetry = telemetry
        self.rollout = rollout
        # Shed-episode edge detection for the event log: log the first
        # shed of an episode and the first clean admit after it, not
        # every shed decision (a sustained flood would flush the ring).
        self._shed_episode = False  # guarded-by: stats_lock
        self.registry_lock = (registry_lock
                              or new_lock("MicroBatcher.registry_lock"))
        self._encoders = [encoder or COVVEncoder(registry)]
        self._encoders += [COVVEncoder(registry)
                           for _ in range(n_workers - 1)]
        # Per-shard scratch for the compiled fast path; workers rebuild
        # their slot whenever the snapshot's plan changes (hot-swap).
        # Only the owning shard touches its slot, so no lock is needed.
        self._scratches: list[PlanScratch | None] = [None] * n_workers
        # Candidate-side scratch for canary slices, same ownership rule.
        self._cand_scratches: list[PlanScratch | None] = [None] * n_workers
        # Wedge heartbeats: monotonic start of the batch a shard is
        # currently processing, 0.0 while idle/waiting.  Written only by
        # the owning shard; the supervisor reads them to detect a worker
        # stuck inside one batch (idle shards never false-positive).
        self._shard_busy_since = [0.0] * n_workers  # unguarded-ok: single-writer per slot (owning shard); float reference stores are atomic under the GIL

        self._queue: deque[ClassifyRequest] = deque()  # guarded-by: _cond
        self._cond = new_condition("MicroBatcher._cond")
        self._threads: list[threading.Thread] = []
        self._closing = False  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond

        # stats_lock guards every counter below (and versions_served —
        # an unguarded copy while a worker inserts a fresh version key
        # can raise "dictionary changed size during iteration").
        # Lock order where both are held: _cond, then stats_lock.
        self.stats_lock = new_lock("MicroBatcher.stats_lock")
        self.requests_total = 0  # guarded-by: stats_lock
        self.completed_total = 0  # guarded-by: stats_lock
        self.rejected_total = 0  # guarded-by: stats_lock
        self.cancelled_total = 0  # guarded-by: stats_lock
        self.failed_total = 0  # guarded-by: stats_lock
        self.shed_rejected_total = 0  # guarded-by: stats_lock
        self.shed_evicted_total = 0  # guarded-by: stats_lock
        self.shed_expired_total = 0  # guarded-by: stats_lock
        self.batches_total = 0  # guarded-by: stats_lock
        self.compiled_batches_total = 0  # guarded-by: stats_lock
        self.largest_batch = 0  # guarded-by: stats_lock
        self.canary_served_total = 0  # guarded-by: stats_lock
        self.versions_served: dict[int, int] = {}  # guarded-by: stats_lock
        self.shard_completed = [0] * n_workers  # guarded-by: stats_lock
        self.shard_batches = [0] * n_workers  # guarded-by: stats_lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._closed:  # unguarded-ok: start() is a control-plane call; no worker exists yet to race with
            raise RuntimeError("batcher is stopped and cannot restart; "
                               "build a new one")
        if self._threads:
            raise RuntimeError("batcher already started")
        for shard in range(self.n_workers):
            thread = threading.Thread(target=self._worker, args=(shard,),
                                      name=f"repro-serve-batcher-{shard}",
                                      daemon=True)
            self._threads.append(thread)
            thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Shut the workers down; with ``drain`` the queue empties first.

        Without ``drain``, queued requests are cancelled: their waiters
        wake immediately with a :class:`~repro.errors.ServiceClosedError`
        rather than blocking out their timeout.
        """

        with self._cond:
            if not drain:
                cancelled = ServiceClosedError("request cancelled: "
                                               "batcher stopped")
                n_cancelled = 0
                while self._queue:
                    self._queue.popleft()._fail(cancelled)
                    n_cancelled += 1
                with self.stats_lock:
                    self.cancelled_total += n_cancelled
            self._closing = True
            self._closed = True
            self._cond.notify_all()
        if timeout is None:
            for thread in self._threads:
                thread.join()
        else:
            # One shared deadline: sequential full-timeout joins would
            # stretch a wedged shutdown to n_workers × timeout.
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                thread.join(max(0.0, deadline - time.monotonic()))
        self._threads = []

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, task: CompactedTask) -> ClassifyRequest:
        """Enqueue one task; returns immediately with the request handle.

        Raises :class:`~repro.errors.OverloadedError` when admission
        control sheds the arrival (policy ``"reject"``); under
        ``"drop-oldest"`` the arrival is admitted and the stalest queued
        request fails with the overload error instead.
        """

        request = ClassifyRequest(task)
        shed_now = False
        with self._cond:
            if self._closed:
                with self.stats_lock:
                    self.rejected_total += 1
                raise ServiceClosedError("batcher is stopped")
            if self.autotuner is not None:
                self.autotuner.observe_arrival()
                new_batch, new_wait = self.autotuner.update()
                if (self.telemetry is not None
                        and (new_batch != self.max_batch
                             or new_wait != self.max_wait_us)):
                    self.telemetry.events.append(
                        "autotune", batch_limit=new_batch,
                        wait_limit_us=new_wait,
                        prev_batch_limit=self.max_batch,
                        prev_wait_limit_us=self.max_wait_us)
                self.max_batch, self.max_wait_us = new_batch, new_wait
            if self.admission is not None:
                # Skip the duplicate fold when the controller shares the
                # tuner's estimator (observed just above).
                if (self.autotuner is None
                        or self.admission.arrivals
                        is not self.autotuner.arrivals):
                    self.admission.note_arrival()
                retry_after = self.admission.evaluate(
                    len(self._queue), self.max_wait_us,
                    batch_limit=self.max_batch, workers=self.n_workers)
                if retry_after is not None:
                    shed_now = True
                    self._note_shed(
                        "evicted" if (self.admission.policy == "drop-oldest"
                                      and self._queue) else "rejected",
                        retry_after, len(self._queue))
                    if (self.admission.policy == "drop-oldest"
                            and self._queue):
                        victim = self._queue.popleft()
                        with self.stats_lock:
                            self.shed_evicted_total += 1
                            self.admission.shed_total += 1
                        victim._fail(OverloadedError(
                            f"request evicted: a newer arrival displaced "
                            f"it from an overloaded queue; retry in "
                            f"{retry_after:.3f}s",
                            retry_after_s=retry_after, reason="evicted",
                            cell=victim.cell))
                    else:
                        with self.stats_lock:
                            self.shed_rejected_total += 1
                            self.admission.shed_total += 1
                        raise OverloadedError(
                            f"cell overloaded: queue depth "
                            f"{len(self._queue)} would exceed the latency "
                            f"budget; retry in {retry_after:.3f}s",
                            retry_after_s=retry_after)
            self._queue.append(request)
            with self.stats_lock:
                self.requests_total += 1
                if self.admission is not None:
                    self.admission.admitted_total += 1
                if self._shed_episode and not shed_now:
                    # First clean admit (no shed in the same call, so a
                    # drop-oldest storm can't flap) ends the episode.
                    self._shed_episode = False
                    if self.telemetry is not None:
                        self.telemetry.events.append(
                            "shed_cleared", pending=len(self._queue))
            self._cond.notify()
        if self.telemetry is not None:
            self.telemetry.observe(
                "submit",
                (time.perf_counter_ns() - request.enqueued_ns) / 1e3)
        return request

    def submit_many(self, tasks: list[CompactedTask]
                    ) -> list[ClassifyRequest]:
        """Enqueue a whole batch under one lock acquisition.

        The wire-format amortization primitive: a batched ``/classify``
        body becomes one condvar round trip instead of ``len(tasks)``
        of them, and the admission gate prices the batch as a unit —
        evaluated against the queue depth its *last* member would join
        behind.  A shed decision rejects the whole batch (even under
        ``drop-oldest``: partially admitting a wire body would break
        its per-body 429 contract), raising one
        :class:`~repro.errors.OverloadedError` that accounts every
        task in the shed buckets.  Requests are queued in task order,
        so completions preserve the body's ordering guarantee.
        """

        if not tasks:
            return []
        requests = [ClassifyRequest(task) for task in tasks]
        with self._cond:
            if self._closed:
                with self.stats_lock:
                    self.rejected_total += len(requests)
                raise ServiceClosedError("batcher is stopped")
            if self.autotuner is not None:
                # Fold each arrival: a burst of n near-simultaneous
                # tasks is exactly what n back-to-back submits would
                # have shown the rate estimator.
                for _ in requests:
                    self.autotuner.observe_arrival()
                new_batch, new_wait = self.autotuner.update()
                if (self.telemetry is not None
                        and (new_batch != self.max_batch
                             or new_wait != self.max_wait_us)):
                    self.telemetry.events.append(
                        "autotune", batch_limit=new_batch,
                        wait_limit_us=new_wait,
                        prev_batch_limit=self.max_batch,
                        prev_wait_limit_us=self.max_wait_us)
                self.max_batch, self.max_wait_us = new_batch, new_wait
            if self.admission is not None:
                if (self.autotuner is None
                        or self.admission.arrivals
                        is not self.autotuner.arrivals):
                    for _ in requests:
                        self.admission.note_arrival()
                retry_after = self.admission.evaluate(
                    len(self._queue) + len(requests) - 1, self.max_wait_us,
                    batch_limit=self.max_batch, workers=self.n_workers)
                if retry_after is not None:
                    self._note_shed("rejected", retry_after,
                                    len(self._queue))
                    with self.stats_lock:
                        self.shed_rejected_total += len(requests)
                        self.admission.shed_total += len(requests)
                    raise OverloadedError(
                        f"cell overloaded: a batch of {len(requests)} "
                        f"would exceed the latency budget at queue depth "
                        f"{len(self._queue)}; retry in {retry_after:.3f}s",
                        retry_after_s=retry_after, reason="rejected")
            self._queue.extend(requests)
            with self.stats_lock:
                self.requests_total += len(requests)
                if self.admission is not None:
                    self.admission.admitted_total += len(requests)
                if self._shed_episode:
                    # A whole-batch admit is a clean admit: the shed
                    # episode (if any) ends here, as in submit().
                    self._shed_episode = False
                    if self.telemetry is not None:
                        self.telemetry.events.append(
                            "shed_cleared", pending=len(self._queue))
            if len(requests) > 1 and self.n_workers > 1:
                self._cond.notify_all()
            else:
                self._cond.notify()
        if self.telemetry is not None:
            now_ns = time.perf_counter_ns()
            self.telemetry.ingress.observe_many(
                "submit",
                [(now_ns - r.enqueued_ns) / 1e3 for r in requests])
        return requests

    def cancel(self, request: ClassifyRequest) -> bool:
        """Withdraw a still-queued request whose client stopped waiting.

        Returns ``True`` when the request was still queued: it is
        removed, failed with :class:`~repro.errors.ServiceError` (any
        residual waiter wakes immediately), and counted in
        ``cancelled_total`` — so a ``/classify`` timeout cannot leave a
        zombie in the queue whose later completion no client receives.
        Returns ``False`` when a worker already took it (its batch is
        in flight; it will complete normally moments later).
        """

        with self._cond:
            try:
                self._queue.remove(request)
            except ValueError:
                return False
            with self.stats_lock:
                self.cancelled_total += 1
        request._fail(ServiceError(
            "request cancelled: client stopped waiting"))
        return True

    def _note_shed(self, reason: str, retry_after_s: float,
                   pending: int) -> None:
        """Log the opening of a shed episode (edge-triggered).

        ``pending`` is the caller's view of the queue depth: submit()
        reads it under ``_cond``, the dequeue-side expiry path passes
        the advisory :attr:`pending` snapshot — this helper itself
        never touches ``_queue`` (it is called both with and without
        ``_cond``, so reading it here raced on the lock-free path).
        Takes ``stats_lock`` for the episode flag (lock order
        ``_cond`` → ``stats_lock``, as everywhere).
        """

        if self.telemetry is None:
            return
        with self.stats_lock:
            if self._shed_episode:
                return
            self._shed_episode = True
        policy = self.admission.policy if self.admission else "reject"
        self.telemetry.events.append(
            "shed_activated", reason=reason, policy=policy,
            pending=pending,
            retry_after_s=round(retry_after_s, 6))

    @property
    def pending(self) -> int:
        return len(self._queue)  # unguarded-ok: advisory depth for monitoring; len() is atomic under the GIL

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """One consistent copy of every counter (single lock hold)."""

        with self.stats_lock:
            return {
                "requests": self.requests_total,
                "completed": self.completed_total,
                "rejected": self.rejected_total,
                "cancelled": self.cancelled_total,
                "failed": self.failed_total,
                "shed_rejected": self.shed_rejected_total,
                "shed_evicted": self.shed_evicted_total,
                "shed_expired": self.shed_expired_total,
                # unguarded-ok: tuner-owned knobs; a stale limit in a stats copy is benign
                "batch_limit": self.max_batch,
                "wait_limit_us": self.max_wait_us,
                "batches": self.batches_total,
                "compiled_batches": self.compiled_batches_total,
                "largest_batch": self.largest_batch,
                "canary_served": self.canary_served_total,
                "versions_served": dict(self.versions_served),
                "shard_completed": tuple(self.shard_completed),
                "shard_batches": tuple(self.shard_batches),
            }

    def wedged_shards(self, timeout_s: float) -> tuple[int, ...]:
        """Shards stuck processing a single batch for ≥ ``timeout_s``.

        The supervisor's wedge probe: idle shards report 0.0 heartbeats
        and never match, so only a worker genuinely wedged inside model
        code (or an encoder) trips it.
        """

        now = time.monotonic()
        return tuple(
            shard for shard, since
            in enumerate(self._shard_busy_since)  # unguarded-ok: advisory read of owner-written heartbeat slots
            if since and now - since >= timeout_s)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker(self, shard: int) -> None:
        encoder = self._encoders[shard]
        # End of this shard's previous batch; None right after an idle
        # wait.  Back-to-back batches report their full cycle (queue
        # re-acquisition and scheduler contention count against drain
        # capacity); the first batch after idle reports processing only,
        # so idle time never deflates the estimate.
        prev_end: float | None = None
        while True:
            with self._cond:
                # Re-read per wakeup: the autotuner retargets both
                # knobs while workers run.
                max_wait_ns = self.max_wait_us * 1_000
                # Idle: wait untimed — submit() and stop() both notify,
                # so a timed poll would only burn CPU (20 wakeups/s per
                # shard at the old 50 ms tick).
                while not self._queue and not self._closing:
                    prev_end = None
                    self._cond.wait()
                if not self._queue and self._closing:
                    return
                # The batching window opens when the oldest request
                # arrived: fill up to max_batch or until its deadline.
                # Recomputed per wakeup — another shard may have taken
                # the previous head, and holding its stale (possibly
                # expired) deadline would close the new head's window
                # early, shrinking batches.
                while (len(self._queue) < self.max_batch
                       and not self._closing):
                    deadline = self._queue[0].enqueued_ns + max_wait_ns
                    remaining = deadline - time.perf_counter_ns()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining / 1e9)
                    if not self._queue:
                        break  # another shard drained the window
                if not self._queue:
                    continue
                take = min(self.max_batch, len(self._queue))
                batch = [self._queue.popleft() for _ in range(take)]
            batch = self._cull_expired(batch)
            if not batch:
                continue
            taken = time.perf_counter()
            self._shard_busy_since[shard] = time.monotonic()  # unguarded-ok: owner-shard slot write (wedge heartbeat)
            try:
                ok = self._process(batch, shard, encoder)
            finally:
                self._shard_busy_since[shard] = 0.0  # unguarded-ok: owner-shard slot write (wedge heartbeat)
            end = time.perf_counter()
            if ok and self.admission is not None:
                # Only successful batches inform the drain estimate — a
                # fast-failing batch would inflate it and over-admit.
                start = taken if prev_end is None else prev_end
                self.admission.note_batch(len(batch), end - start)
            prev_end = end

    def _cull_expired(self, batch: list[ClassifyRequest]
                      ) -> list[ClassifyRequest]:
        """Shed dequeued requests that already outlived the budget.

        The admission gate projects from EWMA estimates; when the drain
        rate collapses after requests were admitted, serving them would
        deliver answers that blew the budget anyway *and* steal capacity
        from requests that can still make it.  Requests older than the
        controller's expiry cutoff fail with
        :class:`~repro.errors.OverloadedError`; fresh ones are served.
        """

        if self.admission is None:
            return batch
        expiry_ns = self.admission.expiry_ns
        if expiry_ns is None:
            return batch
        now_ns = time.perf_counter_ns()
        fresh = [r for r in batch if now_ns - r.enqueued_ns <= expiry_ns]
        expired = len(batch) - len(fresh)
        if expired:
            budget_s = self.admission.latency_budget_ms / 1e3
            for request in batch:
                if now_ns - request.enqueued_ns > expiry_ns:
                    request._fail(OverloadedError(
                        "shed at dequeue: request outlived the cell's "
                        "latency budget while queued",
                        retry_after_s=budget_s, reason="expired",
                        cell=request.cell))
            with self.stats_lock:
                self.shed_expired_total += expired
                self.admission.shed_total += expired
            self._note_shed("expired", budget_s, self.pending)
        return fresh

    def _process(self, batch: list[ClassifyRequest], shard: int,
                 encoder: COVVEncoder) -> bool:
        # Stage timing goes to this shard's private histograms — only
        # the snapshot reader ever contends with the owning worker.
        timings = (self.telemetry.shard(shard)
                   if self.telemetry is not None else None)
        taken_ns = time.perf_counter_ns()
        if timings is not None:
            timings.observe_many(
                "queue_wait",
                [(taken_ns - r.enqueued_ns) / 1e3 for r in batch])
        # A worker must survive any per-batch failure: an escaped
        # exception would kill the thread while submit() keeps
        # accepting requests that could then never complete.
        rollout = self.rollout
        canary = None
        try:
            snapshot = self.handle.snapshot()
            # One route read per batch: the frozen CandidateRoute keeps
            # the split decision and the reported canary version
            # consistent even across a concurrent promote/demote.
            route = (self.handle.candidate_route()
                     if rollout is not None else None)
            with self.registry_lock:
                X = encoder.encode_rows([r.task for r in batch])
            assembled_ns = time.perf_counter_ns()
            plan = snapshot.plan if self.compile else None
            if plan is not None:
                # Fast path: CSR straight into the fused plan.  The
                # scratch is rebuilt when the plan changed — comparing
                # plan identity (not version) also covers a rebuilt
                # handle — so a worker can never pair a stale plan's
                # buffers with a newer model.
                scratch = self._scratches[shard]
                if scratch is None or scratch.plan is not plan:
                    scratch = plan.scratch(
                        max(len(batch),
                            self.max_batch))  # unguarded-ok: stale batch limit only sizes the scratch
                    self._scratches[shard] = scratch
                groups = plan.predict(X, scratch)
            else:
                rows = snapshot.align(X.toarray())
                groups = snapshot.predict(rows)
            if route is not None:
                canary = self._serve_canary(batch, X, route, groups,
                                            shard, plan)
        except Exception as exc:  # noqa: BLE001 — isolate the batch
            logger.exception("classification batch of %d failed",
                             len(batch))
            for request in batch:
                request._fail(exc)
            with self.stats_lock:
                self.batches_total += 1
                self.shard_batches[shard] += 1
                self.failed_total += len(batch)
            return False
        now = time.perf_counter_ns()
        versions = [snapshot.version] * len(batch)
        if canary is not None:
            # Merge the candidate's answers over the canary slice; each
            # canary request completes with the candidate's version, so
            # the misroute/version audit reports who really served it.
            idx, cand_groups, cand_version = \
                canary.idx, canary.groups, canary.version
            groups = np.array(groups)
            for k, i in enumerate(idx):
                groups[i] = cand_groups[k]
                versions[i] = cand_version
        n_canary = 0 if canary is None else len(canary.idx)
        # Counters land before any waiter is released: a caller whose
        # classify() just returned must already see itself in
        # completed_total (stats() right after a blocking classify).
        with self.stats_lock:
            self.batches_total += 1
            if plan is not None:
                self.compiled_batches_total += 1
            self.completed_total += len(batch)
            self.largest_batch = max(self.largest_batch, len(batch))
            self.shard_batches[shard] += 1
            self.shard_completed[shard] += len(batch)
            if len(batch) > n_canary:
                self.versions_served[snapshot.version] = \
                    self.versions_served.get(snapshot.version, 0) \
                    + len(batch) - n_canary
            if n_canary:
                self.canary_served_total += n_canary
                self.versions_served[canary.version] = \
                    self.versions_served.get(canary.version, 0) + n_canary
        if timings is not None:
            # Timings land before waiters too: a stage_snapshots() right
            # after a blocking classify() must include that request.
            timings.observe("assembly", (assembled_ns - taken_ns) / 1e3)
            timings.observe("inference", (now - assembled_ns) / 1e3)
            timings.observe_many(
                "total", [(now - r.enqueued_ns) / 1e3 for r in batch])
        for request, group, version in zip(batch, groups, versions):
            request._complete(int(group), version, now)
        # Rollout bookkeeping runs after the waiters are released — the
        # once-per-window promote/rollback decision must not sit on the
        # response path.  Isolated like the batch itself: a controller
        # bug must not kill the worker.
        if rollout is not None:
            try:
                rollout.ring.extend([r.task for r in batch])
                if canary is not None:
                    rollout.note_canary(
                        canary.version, n_canary, canary.agree,
                        canary.cand_conf, canary.inc_conf, canary.conf_n)
            except Exception:  # noqa: BLE001 — isolate the controller
                logger.exception("rollout bookkeeping failed")
        return True

    def _serve_canary(self, batch: list[ClassifyRequest], X,
                      route, inc_groups, shard: int,
                      inc_plan) -> "_CanaryResult | None":
        """Serve the canary slice of one batch with the staged candidate.

        Returns ``None`` when the hash split routed no row to the
        candidate.  The incumbent has already scored the *whole* batch
        (including the canary rows), so candidate/incumbent agreement —
        the live error-rate proxy — comes for free; when both sides run
        compiled plans the max-probability confidences are compared on
        the same rows too.
        """

        idx = [i for i, r in enumerate(batch) if route.takes(r.task)]
        if not idx:
            return None
        candidate = route.snapshot
        Xc = X[idx]
        cand_plan = candidate.plan if self.compile else None
        cand_conf = inc_conf = 0.0
        conf_n = 0
        if cand_plan is not None:
            scratch = self._cand_scratches[shard]
            if scratch is None or scratch.plan is not cand_plan:
                scratch = cand_plan.scratch(
                    max(len(idx),
                        self.max_batch))  # unguarded-ok: stale batch limit only sizes the scratch
                self._cand_scratches[shard] = scratch
            proba_c = cand_plan.predict_proba(Xc, scratch)
            # argmax after in-place softmax is safe: softmax is
            # monotone per row, so the argmax is the logits' argmax.
            cand_groups = proba_c.argmax(axis=1)
            if inc_plan is not None:
                # Re-score just the canary rows with the incumbent for
                # same-row confidences; its shard scratch already
                # served the full batch and is free for reuse.
                proba_i = inc_plan.predict_proba(
                    Xc, self._scratches[shard])
                cand_conf = float(proba_c.max(axis=1).sum())
                inc_conf = float(proba_i.max(axis=1).sum())
                conf_n = len(idx)
        else:
            rows = candidate.align(Xc.toarray())
            cand_groups = np.asarray(candidate.predict(rows))
        agree = int(np.sum(cand_groups == np.asarray(inc_groups)[idx]))
        return _CanaryResult(idx=idx, groups=cand_groups,
                             version=candidate.version, agree=agree,
                             cand_conf=cand_conf, inc_conf=inc_conf,
                             conf_n=conf_n)
