"""Durable cell state: atomic checkpoints + warm-restart recovery.

The paper's continuous-transfer-learning loop is only worth running if
the learned state outlives the process: without persistence a restart
discards every retrained model, the warm-start Adam moments, the drift
reference histogram, and the rollout replay ring — forcing a cold
retrain while serving nothing.  This module is the durability layer:

* :class:`CellCheckpoint` bundles everything one cell needs to resume —
  model bytes (the :mod:`repro.nn.serialize` codec), the
  :class:`~repro.core.TrainPlan` optimizer state, the feature-registry
  snapshot (column identity of the CO-VV encoding), the trainer's drift
  reference histogram, and a bounded tail of the
  :class:`~repro.serve.rollout.ReplayRing`.
* :class:`CheckpointStore` writes atomic, versioned checkpoint files
  (same-directory tmp file + fsync + rename, a CRC-carrying header, a
  store manifest) with a retention policy; recovery walks history
  newest-first, quarantining corrupt files and falling back to the
  newest valid one.
* :class:`AsyncCheckpointer` takes checkpointing off the serving and
  training paths: ``ModelHandle.publish`` merely marks the state dirty,
  and a background thread collects + writes outside every lock.  A
  synchronous :meth:`~AsyncCheckpointer.flush` covers the final
  checkpoint on graceful shutdown.

File layout under a store root (the CLI's ``--state-dir``, one
subdirectory per cell behind a router)::

    ckpt-00000003-v7.ckpt   newest checkpoint (seq 3, model version 7)
    ckpt-00000002-v6.ckpt   retained history
    MANIFEST.json           advisory index {file, version, crc, ...}
    quarantine/             corrupt checkpoints moved aside, never deleted
"""

from __future__ import annotations

import json
import logging
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..analysis.concur.runtime import new_condition, new_lock
from ..constraints.compaction import CompactedTask
from ..core.train_plan import pack_optimizer_state, unpack_optimizer_state
from ..errors import ReproError
from ..nn import serialize

__all__ = ["CellCheckpoint", "CheckpointStore", "AsyncCheckpointer",
           "CorruptCheckpointError", "encode_checkpoint",
           "decode_checkpoint"]

logger = logging.getLogger(__name__)

#: Container preamble: magic + format byte.  Bump the digit on any
#: incompatible framing change; old files then quarantine cleanly
#: instead of half-parsing.
_MAGIC = b"RPROCKPT1\n"
_HEADER_LEN = struct.Struct(">I")
_FORMAT = 1


class CorruptCheckpointError(ReproError):
    """A checkpoint file failed framing, CRC, or payload validation."""


@dataclass(frozen=True, slots=True)
class CellCheckpoint:
    """Everything one cell needs to warm-restart (one durable unit).

    ``version`` is the model version being served when the checkpoint
    was cut — a restarted cell republishes at exactly this version, so
    version numbers stay monotone across process restarts.
    ``model_bytes`` is ``None`` for models that expose no
    ``state_bytes`` (duck-typed doubles); such checkpoints are not
    written by the service collector, but the codec round-trips them.
    """

    version: int
    features_count: int
    model_bytes: bytes | None
    registry_features: tuple[tuple[str, str | None], ...] = ()
    optimizer_state: dict | None = None
    ref_label_counts: dict[int, int] | None = None
    replay_tasks: tuple[CompactedTask, ...] = ()
    replay_labeled: tuple[tuple[CompactedTask, int], ...] = ()
    created_unix: float = field(default_factory=time.time)


def encode_checkpoint(checkpoint: CellCheckpoint) -> bytes:
    """Serialize a checkpoint to its self-validating container bytes.

    The payload is one :mod:`repro.nn.serialize` state dict (JSON meta
    entry + raw model bytes + packed Adam arrays); the fixed-size
    header carries its length and CRC32, so a torn or bit-flipped file
    fails loudly in :func:`decode_checkpoint` instead of restoring
    garbage weights.
    """

    meta = {
        "format": _FORMAT,
        "version": int(checkpoint.version),
        "features_count": int(checkpoint.features_count),
        "created_unix": float(checkpoint.created_unix),
        "registry": [[attribute, value]
                     for attribute, value in checkpoint.registry_features],
        "ref_label_counts": (
            None if checkpoint.ref_label_counts is None
            else {str(k): int(v)
                  for k, v in checkpoint.ref_label_counts.items()}),
        "replay_tasks": [task.to_dict() for task in checkpoint.replay_tasks],
        "replay_labeled": [[task.to_dict(), int(label)]
                           for task, label in checkpoint.replay_labeled],
        "has_model": checkpoint.model_bytes is not None,
        "has_optimizer": checkpoint.optimizer_state is not None,
    }
    state: dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"),
                              dtype=np.uint8)}
    if checkpoint.model_bytes is not None:
        state["model_bytes"] = np.frombuffer(checkpoint.model_bytes,
                                             dtype=np.uint8)
    if checkpoint.optimizer_state is not None:
        for key, array in pack_optimizer_state(
                checkpoint.optimizer_state).items():
            state[f"opt.{key}"] = array
    payload = serialize.dumps(state)
    header = json.dumps({
        "format": _FORMAT,
        "version": int(checkpoint.version),
        "created_unix": float(checkpoint.created_unix),
        "payload_len": len(payload),
        "payload_crc32": zlib.crc32(payload),
    }).encode("utf-8")
    return b"".join((_MAGIC, _HEADER_LEN.pack(len(header)), header, payload))


def read_header(data: bytes) -> dict:
    """Parse + validate the container header (not the payload CRC)."""

    if not data.startswith(_MAGIC):
        raise CorruptCheckpointError("bad checkpoint magic")
    offset = len(_MAGIC)
    if len(data) < offset + _HEADER_LEN.size:
        raise CorruptCheckpointError("truncated checkpoint header length")
    (header_len,) = _HEADER_LEN.unpack_from(data, offset)
    offset += _HEADER_LEN.size
    if len(data) < offset + header_len:
        raise CorruptCheckpointError("truncated checkpoint header")
    try:
        header = json.loads(data[offset:offset + header_len])
    except ValueError as exc:
        raise CorruptCheckpointError(f"unparseable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != _FORMAT:
        raise CorruptCheckpointError(
            f"unsupported checkpoint format {header!r:.80}")
    header["_payload_offset"] = offset + header_len
    return header


def decode_checkpoint(data: bytes) -> CellCheckpoint:
    """Inverse of :func:`encode_checkpoint`; CRC-validates the payload."""

    header = read_header(data)
    offset = header["_payload_offset"]
    payload = data[offset:offset + int(header["payload_len"])]
    if len(payload) != int(header["payload_len"]):
        raise CorruptCheckpointError("truncated checkpoint payload")
    if zlib.crc32(payload) != int(header["payload_crc32"]):
        raise CorruptCheckpointError("checkpoint payload CRC mismatch")
    try:
        state = serialize.loads(payload)
        meta = json.loads(bytes(np.asarray(state["meta"],
                                           dtype=np.uint8)).decode("utf-8"))
        model_bytes = (bytes(np.asarray(state["model_bytes"],
                                        dtype=np.uint8))
                       if meta["has_model"] else None)
        optimizer_state = None
        if meta["has_optimizer"]:
            packed = {key[len("opt."):]: value
                      for key, value in state.items()
                      if key.startswith("opt.")}
            optimizer_state = unpack_optimizer_state(packed)
        ref = meta["ref_label_counts"]
        return CellCheckpoint(
            version=int(meta["version"]),
            features_count=int(meta["features_count"]),
            model_bytes=model_bytes,
            registry_features=tuple(
                (attribute, value) for attribute, value in meta["registry"]),
            optimizer_state=optimizer_state,
            ref_label_counts=(
                None if ref is None
                else {int(k): int(v) for k, v in ref.items()}),
            replay_tasks=tuple(CompactedTask.from_dict(task)
                               for task in meta["replay_tasks"]),
            replay_labeled=tuple(
                (CompactedTask.from_dict(task), int(label))
                for task, label in meta["replay_labeled"]),
            created_unix=float(meta["created_unix"]))
    except CorruptCheckpointError:
        raise
    except Exception as exc:  # noqa: BLE001 — any payload defect is corruption
        raise CorruptCheckpointError(
            f"unreadable checkpoint payload: {exc}") from exc


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync (durability of the rename itself)."""

    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


class CheckpointStore:
    """Atomic, versioned, self-healing checkpoint directory.

    Writes are crash-safe (tmp + fsync + rename: readers only ever see
    complete files under final names) and concurrent-safe (sequence
    numbers are allocated under a lock; tmp names are unique per
    pid/sequence, so a publish storm cannot interleave torn bytes).
    Reads fall back through history: a corrupt newest file is moved to
    ``quarantine/`` and the next-newest valid checkpoint wins.
    """

    def __init__(self, root: str | os.PathLike, retain: int = 5):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.root = Path(root)
        self.retain = retain
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = new_lock("CheckpointStore._lock")
        self._seq = self._initial_seq()  # guarded-by: _lock
        self.written_total = 0  # guarded-by: _lock
        self.quarantined_total = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def save(self, checkpoint: CellCheckpoint) -> Path:
        """Durably write one checkpoint; returns its final path.

        All file I/O happens outside the store lock (the lock only
        allocates the sequence number and bumps counters), so a slow
        disk never serializes concurrent writers behind it.
        """

        data = encode_checkpoint(checkpoint)
        with self._lock:
            seq = self._seq
            self._seq += 1
        name = f"ckpt-{seq:08d}-v{int(checkpoint.version)}.ckpt"
        final = self.root / name
        tmp = self.root / f".{name}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        finally:
            tmp.unlink(missing_ok=True)
        _fsync_dir(self.root)
        with self._lock:
            self.written_total += 1
        self._apply_retention()
        self._write_manifest()
        return final

    def _apply_retention(self) -> None:
        """Delete all but the newest ``retain`` checkpoints."""

        paths = self.checkpoint_paths()
        for path in paths[:-self.retain]:
            # Concurrent savers may race the same victim; losing that
            # race is success.
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - fs-specific failure
                logger.warning("could not prune %s", path, exc_info=True)

    def _write_manifest(self) -> None:
        """Rewrite ``MANIFEST.json`` atomically from the live headers.

        The manifest is an advisory index for humans and drills — the
        checkpoint files are self-validating, so recovery never trusts
        it — but it records each file's CRC so external tooling can
        audit the store without parsing payloads.
        """

        entries = []
        for path in self.checkpoint_paths():
            try:
                with open(path, "rb") as handle:
                    head = handle.read(64 * 1024)
                header = read_header(head)
            except (OSError, CorruptCheckpointError):
                continue
            entries.append({
                "file": path.name,
                "version": int(header["version"]),
                "payload_crc32": int(header["payload_crc32"]),
                "payload_len": int(header["payload_len"]),
                "created_unix": float(header["created_unix"]),
            })
        body = json.dumps({"format": _FORMAT, "checkpoints": entries},
                          indent=2).encode("utf-8")
        tmp = self.root / f".MANIFEST.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            tmp.write_bytes(body)
            os.replace(tmp, self.root / "MANIFEST.json")
        except OSError:  # pragma: no cover - advisory only
            logger.warning("could not write manifest", exc_info=True)
        finally:
            tmp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # read side / recovery
    # ------------------------------------------------------------------
    def checkpoint_paths(self) -> list[Path]:
        """Completed checkpoint files, oldest first (tmp files excluded)."""

        return sorted(p for p in self.root.glob("ckpt-*.ckpt")
                      if not p.name.startswith("."))

    def load_latest(self) -> CellCheckpoint | None:
        """The newest valid checkpoint, or ``None`` on an empty store.

        Corrupt files (torn payloads, CRC mismatches, unparseable
        headers) are quarantined — moved aside, never deleted, so a
        post-mortem can inspect them — and recovery falls back through
        history to the newest file that validates.
        """

        for path in reversed(self.checkpoint_paths()):
            try:
                return decode_checkpoint(path.read_bytes())
            except (OSError, CorruptCheckpointError) as exc:
                logger.warning("quarantining corrupt checkpoint %s: %s",
                               path.name, exc)
                self._quarantine(path)
        return None

    def _quarantine(self, path: Path) -> None:
        quarantine = self.root / "quarantine"
        try:
            quarantine.mkdir(exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:  # pragma: no cover - fs-specific failure
            logger.warning("could not quarantine %s", path, exc_info=True)
            return
        with self._lock:
            self.quarantined_total += 1

    def _initial_seq(self) -> int:
        """Resume sequence numbering past every file already on disk."""

        newest = -1
        for path in self.root.glob("ckpt-*.ckpt"):
            try:
                newest = max(newest, int(path.name.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return newest + 1


class AsyncCheckpointer:
    """Off-path checkpoint writer with publish-coalescing.

    ``request()`` (wired to ``ModelHandle.publish``) just flips a dirty
    flag and signals — constant-time, lock-bounded, safe on the publish
    path.  The worker thread then collects a fresh
    :class:`CellCheckpoint` via the ``collect`` callable and writes it
    through the store, both outside any service lock.  Back-to-back
    publishes coalesce into one write of the newest state.
    """

    def __init__(self, store: CheckpointStore, collect,
                 telemetry=None):
        self.store = store
        self.collect = collect
        self.telemetry = telemetry
        self._cond = new_condition("AsyncCheckpointer._cond")
        self._dirty = False  # guarded-by: _cond
        self._stopping = False  # guarded-by: _cond
        self.failures_total = 0  # guarded-by: _cond
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "AsyncCheckpointer":
        if self._thread is not None:
            raise RuntimeError("checkpointer already started")
        with self._cond:
            self._stopping = False
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-checkpointer",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def request(self) -> None:
        """Mark the cell state dirty (called from the publish hook)."""

        with self._cond:
            self._dirty = True
            self._cond.notify()

    def flush(self) -> Path | None:
        """Collect + write one checkpoint synchronously (shutdown path).

        Returns the written path, or ``None`` when there is nothing to
        persist (no published model with durable bytes).  Exceptions
        propagate to the caller — a failed *final* checkpoint should be
        loud, unlike the background writer's logged-and-counted ones.
        """

        with self._cond:
            self._dirty = False
        checkpoint = self.collect()
        if checkpoint is None:
            return None
        return self.store.save(checkpoint)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._dirty and not self._stopping:
                    self._cond.wait()
                if self._stopping:
                    return
                self._dirty = False
            try:
                checkpoint = self.collect()
                if checkpoint is None:
                    continue
                path = self.store.save(checkpoint)
            except Exception:  # noqa: BLE001 — checkpointing must not die
                logger.exception("async checkpoint failed; will retry on "
                                 "next publish")
                with self._cond:
                    self.failures_total += 1
                continue
            if self.telemetry is not None:
                self.telemetry.events.append(
                    "checkpoint", file=path.name,
                    bytes=path.stat().st_size)
