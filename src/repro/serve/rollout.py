"""Staged model rollout: shadow scoring, canary traffic, auto-rollback.

:meth:`~repro.serve.ModelHandle.publish` is a blind swap: whatever the
background trainer produced becomes the serving model for the whole
cell.  At production scale one bad publish (a drift spike mid-window, a
degenerate retrain, a corrupted growth step) poisons every request
until the next trigger.  This module turns publication into a staged
rollout driven by live traffic:

* **Shadow** — before a candidate may touch traffic it re-scores recent
  live microbatches off-path (a bounded :class:`ReplayRing` fed by the
  batcher) and is compared against the incumbent on agreement,
  confidence, and a labelled accuracy proxy.  A candidate that cannot
  match the incumbent on traffic it has *already seen the answers to*
  is rejected without ever serving a request.
* **Canary** — a candidate that passes shadow is *staged* into the
  :class:`~repro.serve.ModelHandle` as an ``(incumbent, candidate)``
  pair: a configurable fraction of each cell's traffic routes to the
  candidate via a deterministic per-request hash split
  (:meth:`~repro.serve.CandidateRoute.takes`), so the same task always
  lands on the same side and the misroute audit stays exact — every
  canary-served request reports the candidate's real, retained version.
* **Auto-rollback / promote** — batcher workers feed per-batch canary
  outcomes (agreement with the incumbent on the *same rows*, confidence
  sums) into the controller; each full evaluation window is judged on
  the configured regression signals.  A regression demotes the
  candidate and restores the incumbent atomically, with the episode in
  the :class:`~repro.serve.EventLog` (``rollback``) and the Prometheus
  exposition; clean windows promote it (``promote`` + the handle's
  ``publish`` event).

The drift half of the continuous-learning control plane lives in
:class:`~repro.sim.RetrainPolicy` (``drift_threshold``) and
:meth:`~repro.serve.BackgroundTrainer.drift`: retraining fires on a
measured label-distribution shift over the observation window, not just
observation counts.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..analysis.concur.runtime import new_lock
from ..constraints.compaction import CompactedTask
from ..datasets.co_vv import COVVEncoder
from .handle import ModelHandle, ModelSnapshot

__all__ = ["ROLLBACK_SIGNALS", "RolloutPolicy", "ReplayRing",
           "ShadowVerdict", "OfferOutcome", "RolloutController"]

logger = logging.getLogger(__name__)

#: Regression signals a rollout gate may act on: candidate/incumbent
#: disagreement rate (the error-rate proxy on unlabelled traffic), mean
#: max-probability confidence drop, and accuracy delta on the labelled
#: replay subset.
ROLLBACK_SIGNALS = ("accuracy", "confidence", "agreement")


@dataclass(frozen=True, slots=True)
class RolloutPolicy:
    """Knobs for the staged-rollout state machine.

    ``canary_fraction`` is the share of traffic routed to a staged
    candidate (0 publishes directly after the shadow gate — shadow-only
    mode).  ``shadow_window`` bounds the replay ring the batcher feeds;
    the shadow gate needs ``min_shadow`` recent tasks before its
    comparisons bind (a cold cell with no traffic publishes
    unguarded rather than deadlocking the trainer).  A canary window
    closes after ``canary_window`` candidate-served requests;
    ``promote_after`` consecutive clean windows promote.  The three
    thresholds gate both shadow and canary via ``rollback_on``, with
    one asymmetry: agreement and confidence are unlabelled *proxies*
    for correctness, so whenever at least ``min_labeled`` labelled
    replay rows are available and the candidate holds accuracy within
    ``max_accuracy_drop``, a tripped proxy is recorded
    (``labeled_override`` in the event details) but does not reject —
    a retrain that genuinely improved must disagree with the incumbent
    it outgrew.
    """

    canary_fraction: float = 0.1
    shadow_window: int = 512
    min_shadow: int = 64
    canary_window: int = 200
    promote_after: int = 1
    min_agreement: float = 0.95
    max_confidence_drop: float = 0.10
    max_accuracy_drop: float = 0.05
    min_labeled: int = 16
    rollback_on: tuple[str, ...] = ROLLBACK_SIGNALS

    def __post_init__(self) -> None:
        if not 0.0 <= self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in [0, 1]")
        if self.shadow_window < 1:
            raise ValueError("shadow_window must be >= 1")
        if self.min_shadow < 0:
            raise ValueError("min_shadow cannot be negative")
        if self.canary_window < 1:
            raise ValueError("canary_window must be >= 1")
        if self.promote_after < 1:
            raise ValueError("promote_after must be >= 1")
        if not 0.0 <= self.min_agreement <= 1.0:
            raise ValueError("min_agreement must be in [0, 1]")
        if self.min_labeled < 1:
            raise ValueError("min_labeled must be >= 1")
        unknown = set(self.rollback_on) - set(ROLLBACK_SIGNALS)
        if unknown:
            raise ValueError(f"unknown rollback signals {sorted(unknown)}; "
                             f"choose from {ROLLBACK_SIGNALS}")

    @staticmethod
    def parse_rollback_on(spec: str) -> tuple[str, ...]:
        """``--rollback-on`` parser: a comma list of signal names."""

        signals = tuple(name for name in spec.replace(" ", "").split(",")
                        if name)
        if not signals:
            raise ValueError("--rollback-on needs at least one signal")
        unknown = set(signals) - set(ROLLBACK_SIGNALS)
        if unknown:
            raise ValueError(f"unknown rollback signals {sorted(unknown)}; "
                             f"choose from {ROLLBACK_SIGNALS}")
        return signals


class ReplayRing:
    """Bounded ring of recently-served tasks, plus a labelled subset.

    The batcher appends every completed batch's tasks (:meth:`extend`,
    O(batch) deque appends off the completion path); the service's
    observe path contributes ``(task, label)`` pairs.  The shadow gate
    replays the unlabelled ring through candidate and incumbent; the
    accuracy-proxy gates score both against the labelled ring.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = new_lock("ReplayRing._lock")
        self._tasks: deque[CompactedTask] = deque(maxlen=capacity)  # guarded-by: _lock
        self._labeled: deque[tuple[CompactedTask, int]] = deque(maxlen=capacity)  # guarded-by: _lock
        self.appended_total = 0  # guarded-by: _lock
        self.labeled_total = 0  # guarded-by: _lock

    def extend(self, tasks: list[CompactedTask]) -> None:
        with self._lock:
            self._tasks.extend(tasks)
            self.appended_total += len(tasks)

    def observe(self, task: CompactedTask, label: int) -> None:
        with self._lock:
            self._labeled.append((task, int(label)))
            self.labeled_total += 1

    def sample(self) -> list[CompactedTask]:
        """Every retained live task, oldest first (a copy)."""

        with self._lock:
            return list(self._tasks)

    def labeled(self) -> tuple[list[CompactedTask], np.ndarray]:
        """The labelled subset as ``(tasks, labels)`` copies."""

        with self._lock:
            pairs = list(self._labeled)
        tasks = [task for task, _ in pairs]
        labels = np.asarray([label for _, label in pairs], dtype=np.int64)
        return tasks, labels

    def __len__(self) -> int:
        return len(self._tasks)  # unguarded-ok: advisory size for gates/stats; len() is atomic under the GIL


@dataclass(frozen=True, slots=True)
class ShadowVerdict:
    """Outcome of one shadow evaluation (candidate vs incumbent)."""

    ok: bool
    reasons: tuple[str, ...] = ()
    skipped: bool = False
    details: dict = field(default_factory=dict)

    def event_fields(self) -> dict:
        fields = {"shadow_skipped": self.skipped}
        if self.reasons:
            fields["reasons"] = ",".join(self.reasons)
        for key, value in self.details.items():
            if isinstance(value, float):
                value = round(value, 4)
            fields[key] = value
        return fields


@dataclass(frozen=True, slots=True)
class OfferOutcome:
    """What happened to a candidate handed to :meth:`RolloutController.offer`.

    ``stage`` is ``"published"`` (shadow-only mode: the candidate went
    live immediately), ``"canary"`` (staged; promotion pending clean
    windows), ``"shadow_rejected"``, or ``"canary_in_progress"`` (an
    earlier candidate still owns the canary slot; retry later).
    ``snapshot`` is set for the first two.
    """

    snapshot: ModelSnapshot | None
    stage: str
    verdict: ShadowVerdict

    @property
    def accepted(self) -> bool:
        return self.snapshot is not None


def _snapshot_like(model: object,
                   features_count: int | None = None) -> ModelSnapshot:
    """An unpublished scoring snapshot over ``model`` (version 0).

    Compiles when the model supports it so shadow scoring runs the same
    fused ``predict_proba`` path serving would; duck-typed doubles fall
    back to ``align`` + ``predict`` with no confidence signal.
    """

    if features_count is None:
        features_count = getattr(model, "features_count", None)
    if features_count is None:
        raise ValueError("features_count required to shadow-score a model "
                         "that does not expose one")
    plan = None
    compiler = getattr(model, "compile", None)
    if compiler is not None:
        try:
            plan = compiler(model_version=0)
        except Exception:  # noqa: BLE001 — eager scoring fallback
            plan = None
    return ModelSnapshot(version=0, model=model,
                         features_count=int(features_count),
                         published_at=0.0, plan=plan)


def _score(snapshot: ModelSnapshot, X) -> tuple[np.ndarray, float | None]:
    """``(predicted groups, mean max-probability | None)`` for a block.

    The compiled path yields calibrated-ish confidences via the plan's
    softmax head; plan-less snapshots (duck-typed doubles, eager mode)
    predict labels only and the confidence gates go vacuous.
    """

    if snapshot.plan is not None:
        proba = snapshot.plan.predict_proba(X)
        groups = proba.argmax(axis=1)
        return groups, float(proba.max(axis=1).mean())
    rows = X.toarray() if hasattr(X, "toarray") else np.asarray(X)
    groups = snapshot.predict(snapshot.align(rows))
    return np.asarray(groups), None


class RolloutController:
    """Shadow → canary → promote/rollback state machine for one cell.

    The trainer hands every retrained candidate to :meth:`offer`
    instead of publishing; batcher workers report canary outcomes via
    :meth:`note_canary` after each split batch.  All handle mutations
    (:meth:`~repro.serve.ModelHandle.stage` / ``promote`` / ``demote``)
    happen outside the controller lock, so the only lock this class
    holds while calling out is none — the static lock-order graph gains
    no edges.
    """

    def __init__(self, handle: ModelHandle, registry,
                 registry_lock, policy: RolloutPolicy | None = None,
                 telemetry=None, cell: str | None = None):
        self.handle = handle
        self.registry = registry
        self.registry_lock = registry_lock
        self.policy = policy or RolloutPolicy()
        self.telemetry = telemetry
        self.cell = cell
        self.ring = ReplayRing(self.policy.shadow_window)

        self._lock = new_lock("RolloutController._lock")
        # Open canary evaluation window, keyed by the staged candidate's
        # version so stray late batches of a demoted candidate cannot
        # leak into its successor's window.
        self._win_version: int | None = None  # guarded-by: _lock
        self._win_n = 0  # guarded-by: _lock
        self._win_agree = 0  # guarded-by: _lock
        self._win_cand_conf = 0.0  # guarded-by: _lock
        self._win_inc_conf = 0.0  # guarded-by: _lock
        self._win_conf_n = 0  # guarded-by: _lock
        self._clean_windows = 0  # guarded-by: _lock

        self.staged_total = 0  # guarded-by: _lock
        self.promoted_total = 0  # guarded-by: _lock
        self.rolled_back_total = 0  # guarded-by: _lock
        self.shadow_rejected_total = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # trainer side
    # ------------------------------------------------------------------
    def offer(self, model: object,
              features_count: int | None = None) -> OfferOutcome:
        """Stage one retrained candidate through the rollout gates.

        Runs the shadow evaluation, then either rejects, publishes
        directly (``canary_fraction == 0``), or stages the candidate
        for canary traffic.  Called from the trainer thread; the model
        is adopted without cloning (trainer shadows are discarded).
        """

        verdict = self._shadow_gate(model, features_count)
        if not verdict.ok:
            with self._lock:
                self.shadow_rejected_total += 1
            self._event("shadow_rejected", **verdict.event_fields())
            return OfferOutcome(None, "shadow_rejected", verdict)
        if self.policy.canary_fraction <= 0.0:
            snapshot = self.handle.publish(
                model, features_count=features_count, clone=False)
            return OfferOutcome(snapshot, "published", verdict)
        if self.handle.candidate_route() is not None:
            return OfferOutcome(None, "canary_in_progress", verdict)
        snapshot = self.handle.stage(model, self.policy.canary_fraction,
                                     features_count=features_count,
                                     clone=False)
        with self._lock:
            self.staged_total += 1
            self._win_version = snapshot.version
            self._win_n = self._win_agree = 0
            self._win_cand_conf = self._win_inc_conf = 0.0
            self._win_conf_n = 0
            self._clean_windows = 0
        self._event("canary_started", version=snapshot.version,
                    fraction=self.policy.canary_fraction,
                    **verdict.event_fields())
        return OfferOutcome(snapshot, "canary", verdict)

    def _shadow_gate(self, model: object,
                     features_count: int | None) -> ShadowVerdict:
        """Score the candidate on the replay ring against the incumbent."""

        policy = self.policy
        tasks = self.ring.sample()
        if not self.handle.serving or len(tasks) < policy.min_shadow:
            return ShadowVerdict(ok=True, skipped=True,
                                 details={"n_shadow": len(tasks)})
        incumbent = self.handle.snapshot()
        candidate = _snapshot_like(model, features_count)
        with self.registry_lock:
            X = COVVEncoder(self.registry).encode_rows(tasks)
        cand_groups, cand_conf = _score(candidate, X)
        inc_groups, inc_conf = _score(incumbent, X)
        agreement = float(np.mean(cand_groups == inc_groups))
        details: dict = {"n_shadow": len(tasks), "agreement": agreement}
        if cand_conf is not None and inc_conf is not None:
            details["confidence_candidate"] = cand_conf
            details["confidence_incumbent"] = inc_conf
        reasons: list[str] = []
        overridden: list[str] = []
        # Agreement and confidence are proxies for correctness on
        # unlabelled traffic.  When enough labelled replay exists to
        # judge accuracy directly and the candidate holds it, a low
        # proxy reading IS the improvement (a retrain that learned new
        # features must disagree with the incumbent it outgrew), so the
        # proxies only bind when labels cannot.
        accuracy_holds = False
        if "accuracy" in policy.rollback_on:
            accs = self._labeled_accuracy(candidate, incumbent)
            if accs is not None:
                acc_cand, acc_inc, n_labeled = accs
                details.update(accuracy_candidate=acc_cand,
                               accuracy_incumbent=acc_inc,
                               n_labeled=n_labeled)
                if acc_inc - acc_cand > policy.max_accuracy_drop:
                    reasons.append("accuracy")
                else:
                    accuracy_holds = True
        if ("agreement" in policy.rollback_on
                and agreement < policy.min_agreement):
            (overridden if accuracy_holds else reasons).append("agreement")
        if ("confidence" in policy.rollback_on
                and cand_conf is not None and inc_conf is not None
                and inc_conf - cand_conf > policy.max_confidence_drop):
            (overridden if accuracy_holds else reasons).append("confidence")
        if overridden:
            details["labeled_override"] = ",".join(overridden)
        return ShadowVerdict(ok=not reasons, reasons=tuple(reasons),
                             details=details)

    def _labeled_accuracy(self, candidate: ModelSnapshot,
                          incumbent: ModelSnapshot
                          ) -> tuple[float, float, int] | None:
        """Accuracy of both models on the labelled replay subset, or
        ``None`` when too few labelled observations exist to bind."""

        tasks, labels = self.ring.labeled()
        if len(tasks) < self.policy.min_labeled:
            return None
        with self.registry_lock:
            X = COVVEncoder(self.registry).encode_rows(tasks)
        cand_groups, _ = _score(candidate, X)
        inc_groups, _ = _score(incumbent, X)
        return (float(np.mean(cand_groups == labels)),
                float(np.mean(inc_groups == labels)), len(tasks))

    # ------------------------------------------------------------------
    # batcher side
    # ------------------------------------------------------------------
    def note_canary(self, version: int, n: int, agree: int,
                    cand_conf: float, inc_conf: float,
                    conf_n: int) -> None:
        """Fold one split batch's canary outcome into the open window.

        ``agree`` counts canary rows where candidate and incumbent
        predicted the same group (both scored the *same* rows, so
        disagreement is the live error-rate proxy); the confidence sums
        cover ``conf_n`` rows when both sides served compiled plans.
        Closing a full window triggers the promote/rollback decision on
        the calling worker thread — one labelled re-score per window,
        not per batch.
        """

        if n <= 0:
            return
        with self._lock:
            if version != self._win_version:
                return  # stale batch of a demoted/promoted candidate
            self._win_n += n
            self._win_agree += agree
            self._win_cand_conf += cand_conf
            self._win_inc_conf += inc_conf
            self._win_conf_n += conf_n
            if self._win_n < self.policy.canary_window:
                return
            window = {"n": self._win_n, "agree": self._win_agree,
                      "cand_conf": self._win_cand_conf,
                      "inc_conf": self._win_inc_conf,
                      "conf_n": self._win_conf_n}
            self._win_n = self._win_agree = 0
            self._win_cand_conf = self._win_inc_conf = 0.0
            self._win_conf_n = 0
        self._decide(version, window)

    def _decide(self, version: int, window: dict) -> None:
        """Judge one closed canary window: demote, promote, or continue."""

        policy = self.policy
        route = self.handle.candidate_route()
        if route is None or route.snapshot.version != version:
            return  # already resolved (publish superseded, or raced)
        agreement = window["agree"] / window["n"]
        details: dict = {"window_n": window["n"],
                         "agreement": round(agreement, 4)}
        reasons: list[str] = []
        overridden: list[str] = []
        # Same override as the shadow gate: a candidate that holds
        # labelled accuracy may legitimately disagree with the incumbent
        # it improved on, so the live proxies only bind without labels.
        accuracy_holds = False
        if "accuracy" in policy.rollback_on:
            accs = self._labeled_accuracy(route.snapshot,
                                          self.handle.snapshot())
            if accs is not None:
                acc_cand, acc_inc, n_labeled = accs
                details.update(accuracy_candidate=round(acc_cand, 4),
                               accuracy_incumbent=round(acc_inc, 4),
                               n_labeled=n_labeled)
                if acc_inc - acc_cand > policy.max_accuracy_drop:
                    reasons.append("accuracy")
                else:
                    accuracy_holds = True
        if ("agreement" in policy.rollback_on
                and agreement < policy.min_agreement):
            (overridden if accuracy_holds else reasons).append("agreement")
        if "confidence" in policy.rollback_on and window["conf_n"] > 0:
            cand_conf = window["cand_conf"] / window["conf_n"]
            inc_conf = window["inc_conf"] / window["conf_n"]
            details["confidence_candidate"] = round(cand_conf, 4)
            details["confidence_incumbent"] = round(inc_conf, 4)
            if inc_conf - cand_conf > policy.max_confidence_drop:
                (overridden if accuracy_holds
                 else reasons).append("confidence")
        if overridden:
            details["labeled_override"] = ",".join(overridden)

        if reasons:
            demoted = self.handle.demote()
            if demoted is None:
                return  # another decision got there first
            with self._lock:
                self.rolled_back_total += 1
                if self._win_version == version:
                    self._win_version = None
            self._event("rollback", version=version,
                        reasons=",".join(reasons),
                        incumbent_version=self.handle.version, **details)
            logger.warning("canary v%d rolled back (%s); incumbent v%d "
                           "keeps serving", version, ",".join(reasons),
                           self.handle.version)
            return

        with self._lock:
            if self._win_version != version:
                return
            self._clean_windows += 1
            clean = self._clean_windows
        if clean < policy.promote_after:
            return
        try:
            snapshot = self.handle.promote()
        except RuntimeError:
            return  # demoted/superseded between the check and promote
        with self._lock:
            self.promoted_total += 1
            if self._win_version == version:
                self._win_version = None
        self._event("promote", version=snapshot.version,
                    clean_windows=clean, **details)
        logger.info("canary v%d promoted after %d clean window(s)",
                    snapshot.version, clean)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """One consistent copy of the rollout counters and gauges."""

        route = self.handle.candidate_route()
        with self._lock:
            return {
                "rollouts_staged": self.staged_total,
                "rollouts_promoted": self.promoted_total,
                "rollouts_rolled_back": self.rolled_back_total,
                "rollouts_shadow_rejected": self.shadow_rejected_total,
                "canary_fraction": (route.fraction if route is not None
                                    else 0.0),
                "candidate_version": (route.snapshot.version
                                      if route is not None else 0),
                "replay_window": len(self.ring),
            }

    def _event(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.events.append(kind, cell=self.cell, **fields)

    def canary_active(self) -> bool:
        return self.handle.candidate_route() is not None
