"""Multi-cell routing: one serving stack per computing cell.

The paper evaluates four computing cells, each with its own constraint
vocabulary and task mix; related RL schedulers ("A HPC Co-Scheduler
with Reinforcement Learning", "Deep Reinforcement Agent for Scheduling
in HPC") likewise run per-queue / per-partition agents.
:class:`CellRouter` gives the Task CO Analyzer that shape: every cell
owns a full serving stack — a :class:`~repro.serve.ModelHandle`, a
(sharded) :class:`~repro.serve.MicroBatcher`, and an optional
:class:`~repro.serve.BackgroundTrainer` — behind one dispatch layer
that routes ``submit(cell_id, task)`` to the owning stack.

Isolation is the point: hot-swaps, registry growth, and retraining stay
per-cell, so one cell's model update can never misroute or stall
another cell's task stream.  Cells are registered up front (e.g. from
trace-profile deployments via :meth:`CellRouter.from_deployments`) or
dynamically on a live router (:meth:`CellRouter.add_cell`).
"""

from __future__ import annotations

import re
import zlib
from contextlib import AbstractContextManager
from pathlib import Path

import numpy as np

from ..analysis.concur.runtime import new_lock
from ..constraints.compaction import CompactedTask
from ..datasets.registry import FeatureRegistry
from ..errors import (CircuitOpenError, OverloadedError, ServiceClosedError,
                      UnknownCellError)
from ..sim.online import RetrainPolicy
from .admission import SHED_POLICIES
from .handle import ModelSnapshot
from .metrics import RouterStats
from .microbatch import ClassifyRequest
from .rollout import RolloutPolicy
from .service import ClassificationService

__all__ = ["CellRouter"]

# add_cell override sentinel: None is meaningful ("no budget"), so
# "inherit the router default" needs its own marker.
_INHERIT = object()

_CELL_ID_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize_cell_id(cell_id: str) -> str:
    """A filesystem-safe per-cell subdirectory name.

    Collision-proof: when sanitization changes the id at all, a CRC of
    the original is appended, so ``a/b`` and ``a:b`` cannot share a
    checkpoint directory.
    """

    safe = _CELL_ID_UNSAFE.sub("_", cell_id).strip(".") or "cell"
    if safe != cell_id:
        safe = f"{safe}-{zlib.crc32(cell_id.encode('utf-8')):08x}"
    return safe


class CellRouter(AbstractContextManager):
    """Dispatch classifications across per-cell serving stacks.

    Parameters
    ----------
    n_workers / max_batch / max_wait_us:
        Defaults for every cell's :class:`~repro.serve.MicroBatcher`;
        :meth:`add_cell` can override them per cell.
    latency_budget_ms / max_queue / shed_policy / autotune / compile /
    fused_train / rollout / warm_start:
        Admission-control, autotuning, compiled-fast-path,
        fused-retraining, staged-rollout, and warm-start defaults
        applied to every cell (see
        :class:`~repro.serve.ClassificationService`);
        :meth:`add_cell` can override them per cell, so a small cell
        can run a tighter budget than a large one (or serve / retrain
        eagerly next to compiled cells, or canary only where traffic
        is heavy enough to judge a window).
    state_dir:
        Durability root: every cell checkpoints into (and
        warm-restores from) its own subdirectory
        ``<state_dir>/<sanitized cell id>``, so cells never share
        checkpoint files.
    supervise:
        Start a per-cell :class:`~repro.serve.Supervisor` + circuit
        breaker in every cell (overridable per :meth:`add_cell`); a
        sick cell then fails fast with
        :class:`~repro.errors.CircuitOpenError` while its neighbours
        keep serving.
    """

    def __init__(self, n_workers: int = 1, max_batch: int = 64,
                 max_wait_us: int = 500,
                 latency_budget_ms: float | None = None,
                 max_queue: int | None = None,
                 shed_policy: str = "reject",
                 autotune: bool = False,
                 compile: bool = True,
                 fused_train: bool = True,
                 rollout: RolloutPolicy | None = None,
                 warm_start: bool = True,
                 state_dir: str | None = None,
                 supervise: bool = False):
        # Fail at construction, not at the first add_cell: a typo'd
        # router-wide policy would otherwise sit latent until a cell
        # joins.
        if shed_policy not in SHED_POLICIES:
            raise ValueError(f"shed_policy must be one of {SHED_POLICIES}")
        self.n_workers = n_workers
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.latency_budget_ms = latency_budget_ms
        self.max_queue = max_queue
        self.shed_policy = shed_policy
        self.autotune = autotune
        self.compile = compile
        self.fused_train = fused_train
        self.rollout = rollout
        self.warm_start = warm_start
        self.state_dir = state_dir
        self.supervise = supervise
        self._services: dict[str, ClassificationService] = {}  # guarded-by: _lock
        self._lock = new_lock("CellRouter._lock")
        self._started = False  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    @classmethod
    def from_deployments(cls, deployments: dict[str, tuple[object,
                                                           FeatureRegistry]],
                         n_workers: int = 1, max_batch: int = 64,
                         max_wait_us: int = 500, trainer: bool = False,
                         latency_budget_ms: float | None = None,
                         max_queue: int | None = None,
                         shed_policy: str = "reject",
                         autotune: bool = False,
                         compile: bool = True,
                         fused_train: bool = True,
                         rollout: RolloutPolicy | None = None,
                         warm_start: bool = True,
                         state_dir: str | None = None,
                         supervise: bool = False,
                         **cell_kwargs) -> "CellRouter":
        """Declare cells up front from ``{cell_id: (model, registry)}``.

        The usual source is one trained model + pipeline registry per
        trace profile; extra keyword arguments (``policy``, ``rng``,
        ...) are passed to every :meth:`add_cell`.
        """

        router = cls(n_workers=n_workers, max_batch=max_batch,
                     max_wait_us=max_wait_us,
                     latency_budget_ms=latency_budget_ms,
                     max_queue=max_queue, shed_policy=shed_policy,
                     autotune=autotune, compile=compile,
                     fused_train=fused_train, rollout=rollout,
                     warm_start=warm_start, state_dir=state_dir,
                     supervise=supervise)
        for cell_id, (model, registry) in deployments.items():
            router.add_cell(cell_id, model, registry, trainer=trainer,
                            **cell_kwargs)
        return router

    # ------------------------------------------------------------------
    # cell registry
    # ------------------------------------------------------------------
    def add_cell(self, cell_id: str, model: object,
                 registry: FeatureRegistry, *,
                 n_workers: int | None = None,
                 max_batch: int | None = None,
                 max_wait_us: int | None = None,
                 trainer: bool = False,
                 policy: RetrainPolicy | None = None,
                 features_count: int | None = None,
                 latency_budget_ms: float | None | object = _INHERIT,
                 max_queue: int | None | object = _INHERIT,
                 shed_policy: str | object = _INHERIT,
                 autotune: bool | object = _INHERIT,
                 compile: bool | object = _INHERIT,
                 fused_train: bool | object = _INHERIT,
                 rollout: RolloutPolicy | None | object = _INHERIT,
                 warm_start: bool | object = _INHERIT,
                 supervise: bool | object = _INHERIT,
                 rng: np.random.Generator | None = None
                 ) -> ClassificationService:
        """Register one cell's stack; on a started router it goes live
        immediately (dynamic registration).

        ``latency_budget_ms`` / ``max_queue`` / ``shed_policy`` /
        ``autotune`` / ``compile`` / ``fused_train`` / ``rollout`` /
        ``warm_start`` / ``supervise`` default to the router-wide
        settings; pass an explicit value (including ``None``, to
        disable a budget or a cell's staged rollout) to override per
        cell.  With a router ``state_dir`` the cell checkpoints into
        ``<state_dir>/<sanitized cell id>`` — and warm-restores from
        it right here, before the first request is routed.
        """

        if latency_budget_ms is _INHERIT:
            latency_budget_ms = self.latency_budget_ms
        if max_queue is _INHERIT:
            max_queue = self.max_queue
        if shed_policy is _INHERIT:
            shed_policy = self.shed_policy
        if autotune is _INHERIT:
            autotune = self.autotune
        if compile is _INHERIT:
            compile = self.compile
        if fused_train is _INHERIT:
            fused_train = self.fused_train
        if rollout is _INHERIT:
            rollout = self.rollout
        if warm_start is _INHERIT:
            warm_start = self.warm_start
        if supervise is _INHERIT:
            supervise = self.supervise
        cell_state_dir = (None if self.state_dir is None
                          else str(Path(self.state_dir)
                                   / _sanitize_cell_id(cell_id)))
        service = ClassificationService(
            model, registry,
            max_batch=self.max_batch if max_batch is None else max_batch,
            max_wait_us=(self.max_wait_us if max_wait_us is None
                         else max_wait_us),
            n_workers=self.n_workers if n_workers is None else n_workers,
            trainer=trainer, policy=policy,
            features_count=features_count,
            latency_budget_ms=latency_budget_ms, max_queue=max_queue,
            shed_policy=shed_policy, autotune=autotune, compile=compile,
            fused_train=fused_train, rollout=rollout,
            warm_start=warm_start, state_dir=cell_state_dir,
            supervise=supervise, rng=rng)
        if service.breaker is not None:
            # The breaker's error message and telemetry name the cell.
            service.breaker.name = cell_id
        with self._lock:
            if self._closed:
                raise ServiceClosedError("router is closed")
            if cell_id in self._services:
                raise ValueError(f"cell {cell_id!r} already registered")
            if self._started:
                service.start()
            self._services[cell_id] = service
        return service

    @property
    def cells(self) -> tuple[str, ...]:
        """Registered cell ids, in registration order."""

        return tuple(self._services)  # unguarded-ok: atomic dict iteration; registration publishes via single item set

    def service(self, cell_id: str) -> ClassificationService:
        """The serving stack owning ``cell_id``."""

        try:
            return self._services[cell_id]  # unguarded-ok: hot path; atomic dict lookup, values are never mutated in place
        except KeyError:
            raise UnknownCellError(
                f"no serving stack registered for cell {cell_id!r} "
                f"(cells: {sorted(self._services)})") from None  # unguarded-ok: error-path name listing; racy view acceptable

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CellRouter":
        with self._lock:
            if self._closed:
                raise RuntimeError("router was closed and cannot restart; "
                                   "build a new one")
            if self._started:
                raise RuntimeError("router already started")
            self._started = True
            services = list(self._services.values())
        for service in services:
            service.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop every cell's stack; with ``drain`` accepted requests
        finish first."""

        with self._lock:
            self._closed = True
            self._started = False
            services = list(self._services.values())
        for service in services:
            service.close(drain=drain)

    def __enter__(self) -> "CellRouter":
        return self.start() if not self._started else self  # unguarded-ok: control-plane convenience check; start() re-checks under _lock

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch (hot path)
    # ------------------------------------------------------------------
    def submit(self, cell_id: str, task: CompactedTask) -> ClassifyRequest:
        """Route one task to its cell's batcher (non-blocking).

        A shed arrival raises :class:`~repro.errors.OverloadedError`,
        and a tripped cell :class:`~repro.errors.CircuitOpenError`,
        both annotated with the cell's id.
        """

        try:
            request = self.service(cell_id).submit(task)
        except (OverloadedError, CircuitOpenError) as exc:
            exc.cell = cell_id
            raise
        request.cell = cell_id
        return request

    def submit_many(self, cell_id: str, tasks: list[CompactedTask]
                    ) -> list[ClassifyRequest]:
        """Route a whole batch to its cell's batcher in one round trip.

        The batched ``/classify`` wire format's dispatch: one admission
        decision for the batch as a unit (a shed raises one
        :class:`~repro.errors.OverloadedError` annotated with the
        cell), requests returned in task order.
        """

        try:
            requests = self.service(cell_id).submit_many(tasks)
        except (OverloadedError, CircuitOpenError) as exc:
            exc.cell = cell_id
            raise
        for request in requests:
            request.cell = cell_id
        return requests

    def classify(self, cell_id: str, task: CompactedTask,
                 timeout: float | None = 5.0) -> ClassifyRequest:
        """Submit and block until classified; returns the completed
        request."""

        request = self.submit(cell_id, task)
        if not request.wait(timeout):
            raise TimeoutError("classification did not complete in time")
        return request

    def observe(self, cell_id: str, task: CompactedTask, group: int) -> None:
        """Feed one labelled observation to a cell's training loop."""

        self.service(cell_id).observe(task, group)

    def publish(self, cell_id: str, model: object,
                features_count: int | None = None,
                clone: bool = True) -> ModelSnapshot:
        """Hot-swap one cell's served model; other cells are untouched."""

        return self.service(cell_id).publish(
            model, features_count=features_count, clone=clone)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def model_version(self, cell_id: str) -> int:
        return self.service(cell_id).model_version

    def stats(self) -> RouterStats:
        with self._lock:
            services = dict(self._services)
        return RouterStats(cells={cell_id: service.stats()
                                  for cell_id, service in services.items()})

    def telemetries(self) -> dict[str, object]:
        """Per-cell :class:`~repro.serve.telemetry.Telemetry` planes
        (stage histograms + event rings), keyed like :meth:`stats`."""

        with self._lock:
            return {cell_id: service.telemetry
                    for cell_id, service in self._services.items()}

    def admission_snapshots(self) -> dict[str, dict]:
        """Per-cell admission-controller snapshots; cells without
        admission control are omitted."""

        with self._lock:
            services = dict(self._services)
        return {cell_id: service.admission.snapshot()
                for cell_id, service in services.items()
                if service.admission is not None}
