"""The online classification service: Figure 3's Task CO Analyzer, live.

:class:`ClassificationService` composes the serving stack:

* a :class:`~repro.serve.ModelHandle` holding the published model
  (double-buffered hot-swap),
* a :class:`~repro.serve.MicroBatcher` absorbing arrivals and
  classifying them in vectorized microbatches,
* an optional :class:`~repro.serve.BackgroundTrainer` that retrains and
  republishes as new constraint vocabulary arrives — the paper's
  parallel model-update path, on a real thread.

A scheduler integration calls :meth:`submit` per arriving constrained
task (non-blocking; the returned request completes within the microbatch
window) and :meth:`observe` once the task's true suitable-node count is
known, closing the training loop.
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager

import numpy as np

from ..analysis.concur.runtime import new_lock
from ..constraints.compaction import CompactedTask
from ..core.growing import GrowingModel
from ..datasets.co_vv import COVVEncoder
from ..datasets.registry import FeatureRegistry
from ..errors import OverloadedError, ServiceError
from ..sim.online import RetrainPolicy
from .admission import SHED_POLICIES, AdmissionController, AutoTuner
from .handle import ModelHandle, ModelSnapshot
from .metrics import ServiceStats
from .microbatch import ClassifyRequest, MicroBatcher
from .persistence import AsyncCheckpointer, CellCheckpoint, CheckpointStore
from .rollout import RolloutController, RolloutPolicy
from .supervise import CircuitBreaker, Supervisor
from .telemetry import Telemetry
from .trainer import BackgroundTrainer

__all__ = ["ClassificationService"]


class ClassificationService(AbstractContextManager):
    """Serve group predictions for arriving constrained tasks.

    Parameters
    ----------
    model:
        The initially-deployed model (anything with ``predict``;
        a trained :class:`~repro.core.GrowingModel` in production).
    registry:
        The CO-VV feature registry the model was trained against; grows
        in place as :meth:`observe` sees new vocabulary.
    max_batch / max_wait_us:
        Microbatching knobs: classify as soon as ``max_batch`` requests
        are queued, or when the oldest has waited ``max_wait_us``.
    n_workers:
        Batcher worker shards draining the shared request queue (each
        with a private encoder; see :class:`~repro.serve.MicroBatcher`).
    trainer:
        ``True`` (default) starts the background retrainer with
        ``policy``; ``False`` serves the initial model forever (hot-swap
        still possible via :meth:`publish`).
    latency_budget_ms / max_queue / shed_policy:
        Admission control: when a budget or hard queue cap is set,
        arrivals that would blow it are shed with
        :class:`~repro.errors.OverloadedError` (``shed_policy="reject"``)
        or admitted by evicting the oldest queued request
        (``"drop-oldest"``).  Both ``None`` (default) admits everything.
    autotune:
        Continuously re-fit the microbatch size / wait to the observed
        arrival rate; ``max_batch`` / ``max_wait_us`` then act as the
        tuner's caps rather than fixed settings.
    compile:
        ``True`` (default) publishes every model together with its
        fused :class:`~repro.core.InferencePlan` and serves batches
        through it (sparse end-to-end, no autograd);
        ``False`` keeps everything on the eager ``Module`` path — the
        fallback and the fast path's equivalence oracle.
    fused_train:
        ``True`` (default) retrains through the compiled
        :class:`~repro.core.TrainPlan` (fused backprop on the
        CSR-kept observation matrix — the training-side mirror of
        ``compile``); ``False`` keeps the eager autograd loop.
    rollout:
        A :class:`~repro.serve.RolloutPolicy` turns on the staged
        rollout control plane: the trainer's retrained candidates are
        shadow-scored on a replay ring of recent live traffic, then
        canaried on a hash-split fraction of requests, and promoted or
        auto-rolled-back on the policy's regression gates.  ``None``
        (default) keeps publication a direct swap.
    warm_start:
        ``True`` (default) lets the background trainer resume the
        previous retrain's Adam optimizer state each cycle, shrinking
        the trigger→publish staleness window.
    state_dir / checkpoint_retain / checkpoint_replay_tail:
        ``state_dir`` turns on the durability plane: the newest valid
        checkpoint under it is warm-restored at construction (the cell
        serves immediately at its restored model version — version
        numbers stay monotone across restarts), every publish schedules
        an off-path checkpoint via :class:`~repro.serve.persistence.
        AsyncCheckpointer`, and :meth:`close` flushes a final one.
        ``checkpoint_retain`` bounds on-disk history;
        ``checkpoint_replay_tail`` bounds the rollout replay tail
        bundled into each checkpoint.
    supervise / breaker:
        ``supervise=True`` starts a :class:`~repro.serve.Supervisor`
        watchdog (wedged-worker detection, trainer restart with
        backoff, crash-loop suspension into degraded mode) wired to a
        :class:`~repro.serve.CircuitBreaker` (created with defaults
        unless an explicit ``breaker`` is given).  A ``breaker`` alone
        (without ``supervise``) gates :meth:`submit` on error rate
        only.
    """

    def __init__(self, model: object, registry: FeatureRegistry,
                 max_batch: int = 64, max_wait_us: int = 500,
                 n_workers: int = 1,
                 trainer: bool = True, policy: RetrainPolicy | None = None,
                 features_count: int | None = None,
                 latency_budget_ms: float | None = None,
                 max_queue: int | None = None,
                 shed_policy: str = "reject",
                 autotune: bool = False,
                 compile: bool = True,
                 fused_train: bool = True,
                 rollout: RolloutPolicy | None = None,
                 warm_start: bool = True,
                 state_dir: str | None = None,
                 checkpoint_retain: int = 5,
                 checkpoint_replay_tail: int = 1024,
                 supervise: bool = False,
                 breaker: CircuitBreaker | None = None,
                 rng: np.random.Generator | None = None):
        self.registry = registry
        # Durable-state plane: restore the newest valid checkpoint (if
        # any) *before* the handle exists, so the initial publication
        # below lands exactly at the restored version and the caller's
        # cold model is superseded by the trained one from disk.
        self.store: CheckpointStore | None = None
        self.checkpointer: AsyncCheckpointer | None = None
        self._checkpoint_replay_tail = checkpoint_replay_tail
        self._restored_version = 0
        restored = None
        if state_dir is not None:
            self.store = CheckpointStore(state_dir, retain=checkpoint_retain)
            restored = self.store.load_latest()
        if restored is not None and restored.model_bytes is not None:
            registry.restore(restored.registry_features)
            rebuilt = (GrowingModel(model.config, rng=model.rng)
                       if isinstance(model, GrowingModel)
                       else GrowingModel(rng=rng))
            rebuilt.restore_bytes(restored.model_bytes,
                                  features_count=restored.features_count)
            model = rebuilt
            features_count = restored.features_count
            self._restored_version = restored.version
        clone = isinstance(model, GrowingModel)
        # The telemetry plane exists before anything that reports into
        # it: the initial publication below is already event #1.
        self.telemetry = Telemetry(n_shards=n_workers)
        self.handle = ModelHandle(compile=compile,
                                  telemetry=self.telemetry,
                                  base_version=max(
                                      0, self._restored_version - 1))
        self.handle.publish(model, features_count=features_count,
                            clone=clone)
        # One lock serializes registry growth (observe path) against the
        # batcher's and trainer's encoders — see MicroBatcher's docstring.
        registry_lock = new_lock("ClassificationService.registry_lock")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(f"shed_policy must be one of {SHED_POLICIES}")
        if (shed_policy != "reject" and latency_budget_ms is None
                and max_queue is None):
            raise ValueError(
                f"shed_policy={shed_policy!r} needs a latency budget or "
                f"queue cap to act on — without one it would silently "
                f"never shed")
        self.autotuner: AutoTuner | None = None
        if autotune:
            self.autotuner = AutoTuner(
                max_batch=max_batch,
                min_wait_us=min(50, max_wait_us),
                max_wait_us=max_wait_us)
        self.admission: AdmissionController | None = None
        if latency_budget_ms is not None or max_queue is not None:
            # Share the tuner's arrival estimator when both watch the
            # same stream; the batcher then feeds only the tuner.
            self.admission = AdmissionController(
                latency_budget_ms=latency_budget_ms, policy=shed_policy,
                max_queue=max_queue,
                arrivals=(None if self.autotuner is None
                          else self.autotuner.arrivals))
        self.rollout: RolloutController | None = None
        if rollout is not None:
            self.rollout = RolloutController(self.handle, registry,
                                             registry_lock=registry_lock,
                                             policy=rollout,
                                             telemetry=self.telemetry)
        self.batcher = MicroBatcher(self.handle, registry,
                                    max_batch=max_batch,
                                    max_wait_us=max_wait_us,
                                    registry_lock=registry_lock,
                                    n_workers=n_workers,
                                    admission=self.admission,
                                    autotuner=self.autotuner,
                                    compile=compile,
                                    telemetry=self.telemetry,
                                    rollout=self.rollout)
        self.trainer: BackgroundTrainer | None = None
        if trainer:
            self.trainer = BackgroundTrainer(self.handle, registry,
                                             policy=policy,
                                             registry_lock=registry_lock,
                                             fused=fused_train,
                                             telemetry=self.telemetry,
                                             rollout=self.rollout,
                                             warm_start=warm_start,
                                             rng=rng)
        if restored is not None:
            # Warm-start continuity: the trainer resumes the restored
            # Adam moments and drift reference; the rollout replay ring
            # re-seeds from the checkpointed tail.
            if self.trainer is not None:
                self.trainer.restore_state(
                    optimizer_state=restored.optimizer_state,
                    ref_label_counts=restored.ref_label_counts)
            if self.rollout is not None:
                if restored.replay_tasks:
                    self.rollout.ring.extend(list(restored.replay_tasks))
                for replay_task, replay_label in restored.replay_labeled:
                    self.rollout.ring.observe(replay_task, replay_label)
        if self.store is not None:
            # The hook is set *after* the initial publication above, so
            # a warm restore does not immediately rewrite the identical
            # checkpoint it just read.
            self.checkpointer = AsyncCheckpointer(self.store,
                                                  self._collect_checkpoint,
                                                  telemetry=self.telemetry)
            self.handle.on_publish = self._on_publish
        # Self-healing plane: an explicit breaker gates submissions on
        # error rate; supervise=True adds the watchdog (and a default
        # breaker when none was given).
        self.breaker: CircuitBreaker | None = breaker
        self.supervisor: Supervisor | None = None
        if supervise:
            if self.breaker is None:
                self.breaker = CircuitBreaker(rng=rng,
                                              telemetry=self.telemetry)
            self.supervisor = Supervisor(self, breaker=self.breaker,
                                         rng=rng, telemetry=self.telemetry)
        # Lifecycle flags flip under their own lock so concurrent
        # start()/close() calls cannot interleave (a double close used
        # to re-stop the batcher mid-drain of the first close).
        self._state_lock = new_lock("ClassificationService._state_lock")
        self._started = False  # guarded-by: _state_lock
        self._closed = False  # guarded-by: _state_lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClassificationService":
        with self._state_lock:
            if self._closed:
                raise RuntimeError("service was closed and cannot restart; "
                                   "build a new one")
            if self._started:
                raise RuntimeError("service already started")
            self._started = True
        # Component startup happens outside the lock: it spawns threads,
        # and holding a state lock across thread management is exactly
        # the blocking-under-lock shape the linter exists to catch.
        if self.checkpointer is not None:
            self.checkpointer.start()
            if self._restored_version == 0:
                # Cold start over empty (or unreadable) history: make
                # the initial publication durable right away, so a hard
                # kill before the first retrain still restarts warm.
                # Warm restores skip this — the newest checkpoint on
                # disk is already the state being served.
                self.checkpointer.request()
        self.batcher.start()
        if self.trainer is not None:
            self.trainer.start()
        if self.supervisor is not None:
            self.supervisor.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop the stack; with ``drain`` every accepted request finishes.

        Idempotent: only the first close stops the components — a second
        call (an explicit close followed by ``with`` exit, say) returns
        without re-joining worker threads.
        """

        with self._state_lock:
            already_closed = self._closed
            self._started = False
            self._closed = True
        if already_closed:
            return
        # Stops join worker threads; never do that under _state_lock.
        # The supervisor goes first so it cannot restart the trainer
        # mid-shutdown; the final checkpoint is flushed last, after the
        # batcher drain, so it captures the end-of-life state.
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.trainer is not None:
            self.trainer.stop()
        self.batcher.stop(drain=drain)
        if self.checkpointer is not None:
            try:
                self.checkpointer.flush()
            finally:
                self.checkpointer.stop()

    def __enter__(self) -> "ClassificationService":
        return self.start() if not self._started else self  # unguarded-ok: convenience check; start() re-checks under _state_lock

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------
    def submit(self, task: CompactedTask) -> ClassifyRequest:
        """Enqueue one task for classification (non-blocking).

        With admission control configured this may raise
        :class:`~repro.errors.OverloadedError` instead of queueing; with
        a circuit breaker configured, an open breaker fails fast with
        :class:`~repro.errors.CircuitOpenError` before the queue is
        even touched.
        """

        breaker = self.breaker
        if breaker is None:
            return self.batcher.submit(task)
        breaker.check()
        try:
            request = self.batcher.submit(task)
        except OverloadedError:
            # Backpressure is load, not sickness: shedding must not trip
            # the breaker (that would turn every burst into an outage).
            raise
        except ServiceError:
            breaker.record_failure()
            raise
        breaker.record_success()
        return request

    def submit_many(self, tasks: list[CompactedTask]
                    ) -> list[ClassifyRequest]:
        """Enqueue a whole batch of tasks in one batcher round trip.

        The backing primitive of the batched ``/classify`` wire format:
        one lock acquisition, one admission decision for the batch as a
        unit (a shed rejects the whole batch with
        :class:`~repro.errors.OverloadedError`), and requests returned
        in task order.  Breaker semantics match :meth:`submit` — the
        whole batch counts as one outcome.
        """

        breaker = self.breaker
        if breaker is None:
            return self.batcher.submit_many(tasks)
        breaker.check()
        try:
            requests = self.batcher.submit_many(tasks)
        except OverloadedError:
            raise
        except ServiceError:
            breaker.record_failure()
            raise
        breaker.record_success()
        return requests

    def audit_classify(self, task: CompactedTask, version: int) -> int:
        """Re-classify ``task`` under the exact retained ``version``.

        The wire-level misroute audit's backend: raises ``KeyError``
        when the version has been evicted from the audit history.  The
        registry lock is held only while the task's CO-VV cells are
        read out of the (possibly still-growing) registry; the dense
        row build and the model forward run outside it, so an audit
        sweep cannot stall the batcher shards' encodes.
        """

        snapshot = self.handle.snapshot_for(version)
        encoder = COVVEncoder(self.registry)
        with self.batcher.registry_lock:
            width, cols, vals = encoder.task_cells(task)
        row = np.zeros(width, dtype=np.float32)
        row[cols] = vals
        rows = snapshot.align(row.reshape(1, -1))
        return int(snapshot.predict(rows)[0])

    def classify(self, task: CompactedTask,
                 timeout: float | None = 5.0) -> ClassifyRequest:
        """Submit and block until classified; returns the completed request."""

        request = self.submit(task)
        if not request.wait(timeout):
            raise TimeoutError("classification did not complete in time")
        return request

    def observe(self, task: CompactedTask, group: int) -> None:
        """Feed one labelled observation to the training loop (no-op
        when the trainer is disabled)."""

        if self.trainer is not None:
            self.trainer.observe(task, group)

    def publish(self, model: object, features_count: int | None = None,
                clone: bool = True) -> ModelSnapshot:
        """Manually hot-swap the served model (e.g. an external trainer)."""

        return self.handle.publish(model, features_count=features_count,
                                   clone=clone)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _on_publish(self, snapshot: ModelSnapshot) -> None:
        """Publish hook: mark the durable state dirty (constant-time;
        the actual write happens on the checkpointer thread)."""

        checkpointer = self.checkpointer
        if checkpointer is not None:
            checkpointer.request()

    def _collect_checkpoint(self) -> CellCheckpoint | None:
        """Assemble one durable unit from the live cell state.

        Runs on the checkpointer thread (or the shutdown path's
        synchronous flush).  Only the registry snapshot is read under a
        lock — model bytes come from the immutable published snapshot,
        and the trainer/replay copies take their own locks internally.
        """

        handle = self.handle
        if not handle.serving:
            return None
        snapshot = handle.snapshot()
        state_bytes = getattr(snapshot.model, "state_bytes", None)
        if not callable(state_bytes):
            return None  # duck-typed model with no durable form
        model_bytes = state_bytes()
        with self.batcher.registry_lock:
            registry_features = self.registry.snapshot()
        optimizer_state, ref_label_counts = (
            self.trainer.checkpoint_state()
            if self.trainer is not None else (None, None))
        replay_tasks: tuple[CompactedTask, ...] = ()
        replay_labeled: tuple[tuple[CompactedTask, int], ...] = ()
        if self.rollout is not None:
            tail = self._checkpoint_replay_tail
            ring = self.rollout.ring
            replay_tasks = tuple(ring.sample()[-tail:])
            labeled_tasks, labels = ring.labeled()
            replay_labeled = tuple(
                (labeled_task, int(label))
                for labeled_task, label
                in zip(labeled_tasks, labels))[-tail:]
        return CellCheckpoint(
            version=snapshot.version,
            features_count=snapshot.features_count,
            model_bytes=model_bytes,
            registry_features=registry_features,
            optimizer_state=optimizer_state,
            ref_label_counts=ref_label_counts,
            replay_tasks=replay_tasks,
            replay_labeled=replay_labeled)

    @property
    def restored_version(self) -> int:
        """The model version warm-restored from ``state_dir`` at
        construction (0 on a cold start)."""

        return self._restored_version

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True between :meth:`start` and :meth:`close` — the window in
        which liveness checks (trainer thread, workers) are meaningful."""

        return self._started  # unguarded-ok: atomic bool read for health probes; staleness is benign

    @property
    def model_version(self) -> int:
        return self.handle.version

    def stats(self) -> ServiceStats:
        batcher = self.batcher
        trainer = self.trainer
        # counters() copies everything under the batcher's stats_lock —
        # reading the attributes directly would race the worker shards
        # (a versions_served copy mid-insert raises RuntimeError).
        counters = batcher.counters()
        serving = self.handle.serving
        snapshot = self.handle.snapshot() if serving else None
        staleness = (time.monotonic() - snapshot.published_at
                     if serving else 0.0)
        last_update = (trainer.updates[-1]
                       if trainer is not None and trainer.updates else None)
        rollout = (self.rollout.counters()
                   if self.rollout is not None else None)
        store = self.store
        checkpointer = self.checkpointer
        breaker = self.breaker
        supervisor = self.supervisor
        checkpoints = (0 if store is None
                       else store.written_total)  # unguarded-ok: advisory counter read for stats
        checkpoint_failures = 0
        if store is not None:
            checkpoint_failures += store.quarantined_total  # unguarded-ok: advisory counter read for stats
        if checkpointer is not None:
            checkpoint_failures += checkpointer.failures_total  # unguarded-ok: advisory counter read for stats
        breaker_trips = (0 if breaker is None
                         else breaker.trips_total)  # unguarded-ok: advisory counter read for stats
        breaker_rejected = (0 if breaker is None
                            else breaker.rejected_total)  # unguarded-ok: advisory counter read for stats
        supervisor_restarts = (0 if supervisor is None
                               else supervisor.restarts_total)  # unguarded-ok: advisory counter read for stats
        return ServiceStats(
            requests=counters["requests"],
            completed=counters["completed"],
            rejected=counters["rejected"],
            cancelled=counters["cancelled"],
            failed=counters["failed"],
            shed_rejected=counters["shed_rejected"],
            shed_evicted=counters["shed_evicted"],
            shed_expired=counters["shed_expired"],
            batch_limit=counters["batch_limit"],
            wait_limit_us=counters["wait_limit_us"],
            pending=batcher.pending,
            batches=counters["batches"],
            compiled_batches=counters["compiled_batches"],
            largest_batch=counters["largest_batch"],
            versions_served=counters["versions_served"],
            model_version=self.handle.version,
            swaps=self.handle.swap_count,
            trainer_updates=0 if trainer is None else len(trainer.updates),
            trainer_failures=0 if trainer is None else trainer.failed_updates,
            observations=0 if trainer is None else trainer.observations_total,
            workers=batcher.n_workers,
            shard_completed=counters["shard_completed"],
            model_staleness_s=staleness,
            has_published=serving,
            last_publish_unix=(snapshot.published_unix if serving else 0.0),
            last_train_seconds=(0.0 if last_update is None
                                else last_update.train_seconds),
            rollouts_staged=(0 if rollout is None
                             else rollout["rollouts_staged"]),
            rollouts_promoted=(0 if rollout is None
                               else rollout["rollouts_promoted"]),
            rollouts_rolled_back=(0 if rollout is None
                                  else rollout["rollouts_rolled_back"]),
            rollouts_shadow_rejected=(
                0 if rollout is None
                else rollout["rollouts_shadow_rejected"]),
            canary_served=counters["canary_served"],
            canary_fraction=(0.0 if rollout is None
                             else rollout["canary_fraction"]),
            candidate_version=(0 if rollout is None
                               else rollout["candidate_version"]),
            replay_window=(0 if rollout is None
                           else rollout["replay_window"]),
            drift=0.0 if trainer is None else trainer.drift(),
            trainer_consecutive_failures=(
                0 if trainer is None else trainer.consecutive_failures),
            checkpoints=checkpoints,
            checkpoint_failures=checkpoint_failures,
            restored_version=self._restored_version,
            breaker_state=(0 if breaker is None else breaker.state_code),
            breaker_trips=breaker_trips,
            breaker_rejected=breaker_rejected,
            supervisor_restarts=supervisor_restarts,
            degraded=(supervisor is not None and supervisor.degraded))
