"""The online classification service: Figure 3's Task CO Analyzer, live.

:class:`ClassificationService` composes the serving stack:

* a :class:`~repro.serve.ModelHandle` holding the published model
  (double-buffered hot-swap),
* a :class:`~repro.serve.MicroBatcher` absorbing arrivals and
  classifying them in vectorized microbatches,
* an optional :class:`~repro.serve.BackgroundTrainer` that retrains and
  republishes as new constraint vocabulary arrives — the paper's
  parallel model-update path, on a real thread.

A scheduler integration calls :meth:`submit` per arriving constrained
task (non-blocking; the returned request completes within the microbatch
window) and :meth:`observe` once the task's true suitable-node count is
known, closing the training loop.
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager

import numpy as np

from ..analysis.concur.runtime import new_lock
from ..constraints.compaction import CompactedTask
from ..core.growing import GrowingModel
from ..datasets.co_vv import COVVEncoder
from ..datasets.registry import FeatureRegistry
from ..sim.online import RetrainPolicy
from .admission import SHED_POLICIES, AdmissionController, AutoTuner
from .handle import ModelHandle, ModelSnapshot
from .metrics import ServiceStats
from .microbatch import ClassifyRequest, MicroBatcher
from .rollout import RolloutController, RolloutPolicy
from .telemetry import Telemetry
from .trainer import BackgroundTrainer

__all__ = ["ClassificationService"]


class ClassificationService(AbstractContextManager):
    """Serve group predictions for arriving constrained tasks.

    Parameters
    ----------
    model:
        The initially-deployed model (anything with ``predict``;
        a trained :class:`~repro.core.GrowingModel` in production).
    registry:
        The CO-VV feature registry the model was trained against; grows
        in place as :meth:`observe` sees new vocabulary.
    max_batch / max_wait_us:
        Microbatching knobs: classify as soon as ``max_batch`` requests
        are queued, or when the oldest has waited ``max_wait_us``.
    n_workers:
        Batcher worker shards draining the shared request queue (each
        with a private encoder; see :class:`~repro.serve.MicroBatcher`).
    trainer:
        ``True`` (default) starts the background retrainer with
        ``policy``; ``False`` serves the initial model forever (hot-swap
        still possible via :meth:`publish`).
    latency_budget_ms / max_queue / shed_policy:
        Admission control: when a budget or hard queue cap is set,
        arrivals that would blow it are shed with
        :class:`~repro.errors.OverloadedError` (``shed_policy="reject"``)
        or admitted by evicting the oldest queued request
        (``"drop-oldest"``).  Both ``None`` (default) admits everything.
    autotune:
        Continuously re-fit the microbatch size / wait to the observed
        arrival rate; ``max_batch`` / ``max_wait_us`` then act as the
        tuner's caps rather than fixed settings.
    compile:
        ``True`` (default) publishes every model together with its
        fused :class:`~repro.core.InferencePlan` and serves batches
        through it (sparse end-to-end, no autograd);
        ``False`` keeps everything on the eager ``Module`` path — the
        fallback and the fast path's equivalence oracle.
    fused_train:
        ``True`` (default) retrains through the compiled
        :class:`~repro.core.TrainPlan` (fused backprop on the
        CSR-kept observation matrix — the training-side mirror of
        ``compile``); ``False`` keeps the eager autograd loop.
    rollout:
        A :class:`~repro.serve.RolloutPolicy` turns on the staged
        rollout control plane: the trainer's retrained candidates are
        shadow-scored on a replay ring of recent live traffic, then
        canaried on a hash-split fraction of requests, and promoted or
        auto-rolled-back on the policy's regression gates.  ``None``
        (default) keeps publication a direct swap.
    warm_start:
        ``True`` (default) lets the background trainer resume the
        previous retrain's Adam optimizer state each cycle, shrinking
        the trigger→publish staleness window.
    """

    def __init__(self, model: object, registry: FeatureRegistry,
                 max_batch: int = 64, max_wait_us: int = 500,
                 n_workers: int = 1,
                 trainer: bool = True, policy: RetrainPolicy | None = None,
                 features_count: int | None = None,
                 latency_budget_ms: float | None = None,
                 max_queue: int | None = None,
                 shed_policy: str = "reject",
                 autotune: bool = False,
                 compile: bool = True,
                 fused_train: bool = True,
                 rollout: RolloutPolicy | None = None,
                 warm_start: bool = True,
                 rng: np.random.Generator | None = None):
        self.registry = registry
        clone = isinstance(model, GrowingModel)
        # The telemetry plane exists before anything that reports into
        # it: the initial publication below is already event #1.
        self.telemetry = Telemetry(n_shards=n_workers)
        self.handle = ModelHandle(compile=compile,
                                  telemetry=self.telemetry)
        self.handle.publish(model, features_count=features_count,
                            clone=clone)
        # One lock serializes registry growth (observe path) against the
        # batcher's and trainer's encoders — see MicroBatcher's docstring.
        registry_lock = new_lock("ClassificationService.registry_lock")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(f"shed_policy must be one of {SHED_POLICIES}")
        if (shed_policy != "reject" and latency_budget_ms is None
                and max_queue is None):
            raise ValueError(
                f"shed_policy={shed_policy!r} needs a latency budget or "
                f"queue cap to act on — without one it would silently "
                f"never shed")
        self.autotuner: AutoTuner | None = None
        if autotune:
            self.autotuner = AutoTuner(
                max_batch=max_batch,
                min_wait_us=min(50, max_wait_us),
                max_wait_us=max_wait_us)
        self.admission: AdmissionController | None = None
        if latency_budget_ms is not None or max_queue is not None:
            # Share the tuner's arrival estimator when both watch the
            # same stream; the batcher then feeds only the tuner.
            self.admission = AdmissionController(
                latency_budget_ms=latency_budget_ms, policy=shed_policy,
                max_queue=max_queue,
                arrivals=(None if self.autotuner is None
                          else self.autotuner.arrivals))
        self.rollout: RolloutController | None = None
        if rollout is not None:
            self.rollout = RolloutController(self.handle, registry,
                                             registry_lock=registry_lock,
                                             policy=rollout,
                                             telemetry=self.telemetry)
        self.batcher = MicroBatcher(self.handle, registry,
                                    max_batch=max_batch,
                                    max_wait_us=max_wait_us,
                                    registry_lock=registry_lock,
                                    n_workers=n_workers,
                                    admission=self.admission,
                                    autotuner=self.autotuner,
                                    compile=compile,
                                    telemetry=self.telemetry,
                                    rollout=self.rollout)
        self.trainer: BackgroundTrainer | None = None
        if trainer:
            self.trainer = BackgroundTrainer(self.handle, registry,
                                             policy=policy,
                                             registry_lock=registry_lock,
                                             fused=fused_train,
                                             telemetry=self.telemetry,
                                             rollout=self.rollout,
                                             warm_start=warm_start,
                                             rng=rng)
        # Lifecycle flags flip under their own lock so concurrent
        # start()/close() calls cannot interleave (a double close used
        # to re-stop the batcher mid-drain of the first close).
        self._state_lock = new_lock("ClassificationService._state_lock")
        self._started = False  # guarded-by: _state_lock
        self._closed = False  # guarded-by: _state_lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClassificationService":
        with self._state_lock:
            if self._closed:
                raise RuntimeError("service was closed and cannot restart; "
                                   "build a new one")
            if self._started:
                raise RuntimeError("service already started")
            self._started = True
        # Component startup happens outside the lock: it spawns threads,
        # and holding a state lock across thread management is exactly
        # the blocking-under-lock shape the linter exists to catch.
        self.batcher.start()
        if self.trainer is not None:
            self.trainer.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop the stack; with ``drain`` every accepted request finishes.

        Idempotent: only the first close stops the components — a second
        call (an explicit close followed by ``with`` exit, say) returns
        without re-joining worker threads.
        """

        with self._state_lock:
            already_closed = self._closed
            self._started = False
            self._closed = True
        if already_closed:
            return
        # Stops join worker threads; never do that under _state_lock.
        if self.trainer is not None:
            self.trainer.stop()
        self.batcher.stop(drain=drain)

    def __enter__(self) -> "ClassificationService":
        return self.start() if not self._started else self  # unguarded-ok: convenience check; start() re-checks under _state_lock

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------
    def submit(self, task: CompactedTask) -> ClassifyRequest:
        """Enqueue one task for classification (non-blocking).

        With admission control configured this may raise
        :class:`~repro.errors.OverloadedError` instead of queueing.
        """

        return self.batcher.submit(task)

    def submit_many(self, tasks: list[CompactedTask]
                    ) -> list[ClassifyRequest]:
        """Enqueue a whole batch of tasks in one batcher round trip.

        The backing primitive of the batched ``/classify`` wire format:
        one lock acquisition, one admission decision for the batch as a
        unit (a shed rejects the whole batch with
        :class:`~repro.errors.OverloadedError`), and requests returned
        in task order.
        """

        return self.batcher.submit_many(tasks)

    def audit_classify(self, task: CompactedTask, version: int) -> int:
        """Re-classify ``task`` under the exact retained ``version``.

        The wire-level misroute audit's backend: raises ``KeyError``
        when the version has been evicted from the audit history.  The
        registry lock is held only while the task's CO-VV cells are
        read out of the (possibly still-growing) registry; the dense
        row build and the model forward run outside it, so an audit
        sweep cannot stall the batcher shards' encodes.
        """

        snapshot = self.handle.snapshot_for(version)
        encoder = COVVEncoder(self.registry)
        with self.batcher.registry_lock:
            width, cols, vals = encoder.task_cells(task)
        row = np.zeros(width, dtype=np.float32)
        row[cols] = vals
        rows = snapshot.align(row.reshape(1, -1))
        return int(snapshot.predict(rows)[0])

    def classify(self, task: CompactedTask,
                 timeout: float | None = 5.0) -> ClassifyRequest:
        """Submit and block until classified; returns the completed request."""

        request = self.submit(task)
        if not request.wait(timeout):
            raise TimeoutError("classification did not complete in time")
        return request

    def observe(self, task: CompactedTask, group: int) -> None:
        """Feed one labelled observation to the training loop (no-op
        when the trainer is disabled)."""

        if self.trainer is not None:
            self.trainer.observe(task, group)

    def publish(self, model: object, features_count: int | None = None,
                clone: bool = True) -> ModelSnapshot:
        """Manually hot-swap the served model (e.g. an external trainer)."""

        return self.handle.publish(model, features_count=features_count,
                                   clone=clone)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True between :meth:`start` and :meth:`close` — the window in
        which liveness checks (trainer thread, workers) are meaningful."""

        return self._started  # unguarded-ok: atomic bool read for health probes; staleness is benign

    @property
    def model_version(self) -> int:
        return self.handle.version

    def stats(self) -> ServiceStats:
        batcher = self.batcher
        trainer = self.trainer
        # counters() copies everything under the batcher's stats_lock —
        # reading the attributes directly would race the worker shards
        # (a versions_served copy mid-insert raises RuntimeError).
        counters = batcher.counters()
        serving = self.handle.serving
        snapshot = self.handle.snapshot() if serving else None
        staleness = (time.monotonic() - snapshot.published_at
                     if serving else 0.0)
        last_update = (trainer.updates[-1]
                       if trainer is not None and trainer.updates else None)
        rollout = (self.rollout.counters()
                   if self.rollout is not None else None)
        return ServiceStats(
            requests=counters["requests"],
            completed=counters["completed"],
            rejected=counters["rejected"],
            cancelled=counters["cancelled"],
            failed=counters["failed"],
            shed_rejected=counters["shed_rejected"],
            shed_evicted=counters["shed_evicted"],
            shed_expired=counters["shed_expired"],
            batch_limit=counters["batch_limit"],
            wait_limit_us=counters["wait_limit_us"],
            pending=batcher.pending,
            batches=counters["batches"],
            compiled_batches=counters["compiled_batches"],
            largest_batch=counters["largest_batch"],
            versions_served=counters["versions_served"],
            model_version=self.handle.version,
            swaps=self.handle.swap_count,
            trainer_updates=0 if trainer is None else len(trainer.updates),
            trainer_failures=0 if trainer is None else trainer.failed_updates,
            observations=0 if trainer is None else trainer.observations_total,
            workers=batcher.n_workers,
            shard_completed=counters["shard_completed"],
            model_staleness_s=staleness,
            has_published=serving,
            last_publish_unix=(snapshot.published_unix if serving else 0.0),
            last_train_seconds=(0.0 if last_update is None
                                else last_update.train_seconds),
            rollouts_staged=(0 if rollout is None
                             else rollout["rollouts_staged"]),
            rollouts_promoted=(0 if rollout is None
                               else rollout["rollouts_promoted"]),
            rollouts_rolled_back=(0 if rollout is None
                                  else rollout["rollouts_rolled_back"]),
            rollouts_shadow_rejected=(
                0 if rollout is None
                else rollout["rollouts_shadow_rejected"]),
            canary_served=counters["canary_served"],
            canary_fraction=(0.0 if rollout is None
                             else rollout["canary_fraction"]),
            candidate_version=(0 if rollout is None
                               else rollout["candidate_version"]),
            replay_window=(0 if rollout is None
                           else rollout["replay_window"]),
            drift=0.0 if trainer is None else trainer.drift(),
            trainer_consecutive_failures=(
                0 if trainer is None else trainer.consecutive_failures))
