"""Self-healing cells: circuit breaker + per-cell supervisor watchdog.

A long-running serving process fails in ways admission control cannot
see: a worker thread wedged inside a pathological batch, a trainer
thread that died or crash-loops, a cell whose error rate spikes.  This
module adds the control loop that notices and reacts:

* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine.  Failures recorded on the submit path (or a forced trip from
  the supervisor's wedge detector) open the breaker; while open, every
  submission fails fast with
  :class:`~repro.errors.CircuitOpenError` (HTTP 503 + ``Retry-After``)
  instead of queueing behind a sick cell.  After a jittered exponential
  backoff the breaker half-opens and admits a bounded number of probe
  requests; a probe success closes it, a probe failure re-opens with a
  doubled backoff.
* :class:`Supervisor` — a per-cell watchdog thread.  It heartbeats the
  batcher's worker shards (a shard busy on one batch past
  ``wedge_timeout_s`` is wedged → trip the breaker so callers stop
  piling onto a stuck queue) and the background trainer: a dead trainer
  thread is restarted with exponential backoff (supervised restart), a
  crash-looping trainer (``consecutive_failures`` past its threshold)
  is *suspended* — training stops, the cell keeps serving its last-good
  snapshot in degraded mode, surfaced via ``/healthz`` and stats — and
  retried later on the same backoff schedule.

Both are deliberately decoupled: a breaker works without a supervisor
(pure error-rate protection) and a supervisor without a breaker
(restart/degrade only).
"""

from __future__ import annotations

import logging
import threading
import time

import numpy as np

from ..analysis.concur.runtime import new_lock
from ..errors import CircuitOpenError

__all__ = ["CircuitBreaker", "Supervisor", "BREAKER_CLOSED",
           "BREAKER_HALF_OPEN", "BREAKER_OPEN"]

logger = logging.getLogger(__name__)

#: Breaker state gauge encoding (exported as ``repro_serve_breaker_state``).
BREAKER_CLOSED = 0
BREAKER_HALF_OPEN = 1
BREAKER_OPEN = 2

_STATE_NAMES = {BREAKER_CLOSED: "closed", BREAKER_HALF_OPEN: "half_open",
                BREAKER_OPEN: "open"}


class CircuitBreaker:
    """Per-cell closed/open/half-open failure gate.

    Parameters
    ----------
    failure_threshold / min_samples / window:
        Trip when at least ``min_samples`` outcomes are in the sliding
        ``window`` and the failure fraction reaches
        ``failure_threshold``.
    backoff_s / max_backoff_s:
        Reopen backoff: ``backoff_s * 2^(trips-1)`` capped at
        ``max_backoff_s``, then jittered up to +50% so cells sharing a
        failing dependency don't probe in lockstep.
    probe_limit:
        Concurrent probe submissions admitted while half-open.
    """

    def __init__(self, name: str = "cell",
                 failure_threshold: float = 0.5,
                 min_samples: int = 10,
                 window: int = 64,
                 backoff_s: float = 1.0,
                 max_backoff_s: float = 30.0,
                 probe_limit: int = 1,
                 rng: np.random.Generator | None = None,
                 telemetry=None):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_samples < 1 or window < min_samples:
            raise ValueError("need window >= min_samples >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.window = window
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.probe_limit = probe_limit
        self.rng = rng or np.random.default_rng()
        self.telemetry = telemetry
        self._lock = new_lock("CircuitBreaker._lock")
        self._state = BREAKER_CLOSED  # guarded-by: _lock
        self._successes = 0  # guarded-by: _lock
        self._failures = 0  # guarded-by: _lock
        self._not_before = 0.0  # guarded-by: _lock
        self._last_backoff_s = 0.0  # guarded-by: _lock
        self._consecutive_trips = 0  # guarded-by: _lock
        self._probes = 0  # guarded-by: _lock
        self._last_reason = ""  # guarded-by: _lock
        self.trips_total = 0  # guarded-by: _lock
        self.rejected_total = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # submit-path gate
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Admit or refuse one submission (raises when open).

        Open → half-open happens here, lazily, once the backoff expires:
        the next arrival becomes the probe.
        """

        with self._lock:
            if self._state == BREAKER_CLOSED:
                return
            now = time.monotonic()
            if self._state == BREAKER_OPEN:
                if now < self._not_before:
                    self.rejected_total += 1
                    retry = self._not_before - now
                    reason = self._last_reason
                    raise CircuitOpenError(
                        f"cell {self.name!r} circuit is open "
                        f"({reason or 'failure threshold'}); retry in "
                        f"{retry:.1f}s", retry_after_s=retry,
                        cell=self.name, reason=reason or "open")
                self._state = BREAKER_HALF_OPEN
                self._probes = 0
            # Half-open: admit up to probe_limit in-flight probes; the
            # rest fail fast with a short retry hint.
            if self._probes >= self.probe_limit:
                self.rejected_total += 1
                raise CircuitOpenError(
                    f"cell {self.name!r} circuit is half-open; probe in "
                    f"flight", retry_after_s=self.backoff_s,
                    cell=self.name, reason="probing")
            self._probes += 1

    def record_success(self) -> None:
        """One successful submission; a half-open probe success closes."""

        event = None
        with self._lock:
            self._successes += 1
            self._shrink_window_locked()
            if self._state == BREAKER_HALF_OPEN:
                event = self._close_locked()
        self._emit(event)

    def record_failure(self) -> None:
        """One failed submission; may trip (or re-open from a probe)."""

        event = None
        with self._lock:
            self._failures += 1
            self._shrink_window_locked()
            if self._state == BREAKER_HALF_OPEN:
                event = self._trip_locked("probe_failed")
            elif self._state == BREAKER_CLOSED:
                total = self._successes + self._failures
                if (total >= self.min_samples
                        and self._failures / total
                        >= self.failure_threshold):
                    event = self._trip_locked("failure_rate")
        self._emit(event)

    def trip(self, reason: str = "forced") -> None:
        """Force the breaker open (the supervisor's wedge reaction)."""

        event = None
        with self._lock:
            if self._state != BREAKER_OPEN:
                event = self._trip_locked(reason)
        self._emit(event)

    def reset(self) -> None:
        """Force-close (an operator action; clears the trip streak)."""

        event = None
        with self._lock:
            if self._state != BREAKER_CLOSED:
                event = self._close_locked()
            self._consecutive_trips = 0
        self._emit(event)

    # ------------------------------------------------------------------
    def _shrink_window_locked(self) -> None:
        # requires-lock: _lock
        # A counter pair approximates the sliding window: past `window`
        # outcomes, halve both so old history decays instead of pinning
        # the rate forever.
        total = self._successes + self._failures
        if total > self.window:
            self._successes //= 2
            self._failures //= 2

    def _trip_locked(self, reason: str) -> tuple:
        # requires-lock: _lock
        self._state = BREAKER_OPEN
        self._consecutive_trips += 1
        self.trips_total += 1
        backoff = min(self.backoff_s * (2 ** (self._consecutive_trips - 1)),
                      self.max_backoff_s)
        backoff *= 1.0 + 0.5 * float(self.rng.random())  # jitter
        self._not_before = time.monotonic() + backoff
        self._last_backoff_s = backoff
        self._last_reason = reason
        self._successes = 0
        self._failures = 0
        return ("breaker_open", {"cell": self.name, "reason": reason,
                                 "trips": self.trips_total,
                                 "backoff_s": round(backoff, 3)})

    def _close_locked(self) -> tuple:
        # requires-lock: _lock
        self._state = BREAKER_CLOSED
        self._consecutive_trips = 0
        self._probes = 0
        self._successes = 0
        self._failures = 0
        return ("breaker_closed", {"cell": self.name})

    def _emit(self, event: tuple | None) -> None:
        # Telemetry appends take the event ring's own lock — emit
        # strictly outside the breaker lock, like every other serve
        # component.
        if event is None or self.telemetry is None:
            return
        kind, fields = event
        self.telemetry.events.append(kind, **fields)
        logger.info("%s: %s", kind, fields)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def state_code(self) -> int:
        """0 closed / 1 half-open / 2 open (the Prometheus gauge)."""

        return self._state  # unguarded-ok: atomic int read for stats; staleness is benign

    @property
    def state(self) -> str:
        return _STATE_NAMES[self.state_code]

    @property
    def retry_after_s(self) -> float:
        """Remaining reopen backoff (0.0 unless open)."""

        with self._lock:
            if self._state != BREAKER_OPEN:
                return 0.0
            return max(0.0, self._not_before - time.monotonic())


class Supervisor:
    """Per-cell watchdog: wedge detection, restart, degraded mode.

    The loop polls every ``poll_interval_s``:

    1. **Wedged workers** — any batcher shard busy on a single batch
       longer than ``wedge_timeout_s`` trips the breaker (if one is
       wired) so new arrivals fail fast instead of queueing behind the
       stuck shard, and marks the cell degraded until the shard
       recovers.
    2. **Dead trainer** — a started service whose trainer thread has
       died is restarted with exponential (jittered) backoff;
       successful restarts clear the failure streak.
    3. **Crash-looping trainer** — ``consecutive_failures`` at or past
       the trainer's own threshold suspends training entirely: the
       thread is stopped, the cell keeps serving its last-good
       snapshot (degraded mode), and a restart is attempted on the
       same backoff schedule.
    """

    def __init__(self, service, breaker: CircuitBreaker | None = None,
                 poll_interval_s: float = 0.25,
                 wedge_timeout_s: float = 5.0,
                 restart_backoff_s: float = 0.5,
                 max_restart_backoff_s: float = 30.0,
                 rng: np.random.Generator | None = None,
                 telemetry=None):
        self.service = service
        self.breaker = breaker
        self.poll_interval_s = poll_interval_s
        self.wedge_timeout_s = wedge_timeout_s
        self.restart_backoff_s = restart_backoff_s
        self.max_restart_backoff_s = max_restart_backoff_s
        self.rng = rng or np.random.default_rng()
        self.telemetry = telemetry
        self._lock = new_lock("Supervisor._lock")
        self._degraded_reasons: set[str] = set()  # guarded-by: _lock
        self.restarts_total = 0  # guarded-by: _lock
        self.wedges_total = 0  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Loop-thread private restart pacing.
        self._restart_not_before = 0.0
        self._consecutive_restarts = 0
        self._suspended = False
        self._wedged_before: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-supervisor",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    @property
    def alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while the cell serves on its last-good snapshot only
        (training suspended/dead or a worker wedged)."""

        with self._lock:
            return bool(self._degraded_reasons)

    @property
    def degraded_reasons(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._degraded_reasons))

    def _set_degraded(self, reason: str, active: bool) -> None:
        changed = False
        with self._lock:
            if active and reason not in self._degraded_reasons:
                self._degraded_reasons.add(reason)
                changed = True
            elif not active and reason in self._degraded_reasons:
                self._degraded_reasons.discard(reason)
                changed = True
        if changed and self.telemetry is not None:
            self.telemetry.events.append(
                "degraded" if active else "recovered", reason=reason)

    # ------------------------------------------------------------------
    # the watchdog loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            try:
                self._tick()
            except Exception:  # noqa: BLE001 — the watchdog must not die
                logger.exception("supervisor tick failed; continuing")

    def _tick(self) -> None:
        service = self.service
        if not service.started:
            return
        self._check_workers(service)
        self._check_trainer(service)

    def _check_workers(self, service) -> None:
        wedged = service.batcher.wedged_shards(self.wedge_timeout_s)
        if wedged and wedged != self._wedged_before:
            with self._lock:
                self.wedges_total += len(set(wedged)
                                         - set(self._wedged_before))
            logger.warning("batcher shard(s) %s wedged > %.1fs",
                           list(wedged), self.wedge_timeout_s)
            if self.telemetry is not None:
                self.telemetry.events.append(
                    "worker_wedged", shards=",".join(map(str, wedged)),
                    timeout_s=self.wedge_timeout_s)
        if wedged and self.breaker is not None:
            # Re-trip as long as the wedge persists: a half-open probe
            # admitted into a still-stuck shard must not close the
            # breaker's protection.
            if (wedged != self._wedged_before
                    or self.breaker.state_code != BREAKER_OPEN):
                self.breaker.trip("wedged_worker")
        self._wedged_before = wedged
        self._set_degraded("wedged_worker", bool(wedged))

    def _check_trainer(self, service) -> None:
        trainer = service.trainer
        if trainer is None:
            return
        now = time.monotonic()
        crash_looping = (trainer.consecutive_failures
                         >= trainer.max_consecutive_failures)
        if trainer.alive and not crash_looping:
            if not self._suspended:
                self._consecutive_restarts = 0
                self._set_degraded("trainer_down", False)
            return
        if trainer.alive and crash_looping and not self._suspended:
            # Suspend: stop feeding a crash loop; keep serving the
            # last-good snapshot.  The stop() join happens on this
            # watchdog thread with no locks held.
            logger.warning("trainer crash-looping (%d consecutive); "
                           "suspending training",
                           trainer.consecutive_failures)
            trainer.stop(timeout=5.0)
            self._suspended = True
            self._schedule_restart(now)
            self._set_degraded("trainer_down", True)
            if self.telemetry is not None:
                self.telemetry.events.append(
                    "trainer_suspended",
                    consecutive_failures=trainer.consecutive_failures)
            return
        # Dead (or suspended) trainer: restart once the backoff expires.
        self._set_degraded("trainer_down", True)
        if now < self._restart_not_before:
            return
        trainer.stop(timeout=5.0)  # reap the dead thread, if any
        trainer.reset_failures()
        try:
            trainer.start()
        except RuntimeError:  # pragma: no cover - lost race with close()
            return
        self._suspended = False
        self._schedule_restart(now)
        with self._lock:
            self.restarts_total += 1
            restarts = self.restarts_total
        logger.info("trainer restarted (restart #%d)", restarts)
        if self.telemetry is not None:
            self.telemetry.events.append("trainer_restarted",
                                         restarts=restarts)

    def _schedule_restart(self, now: float) -> None:
        self._consecutive_restarts += 1
        backoff = min(self.restart_backoff_s
                      * (2 ** (self._consecutive_restarts - 1)),
                      self.max_restart_backoff_s)
        backoff *= 1.0 + 0.5 * float(self.rng.random())  # jitter
        self._restart_not_before = now + backoff
