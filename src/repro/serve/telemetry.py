"""Telemetry plane for the serving stack.

Three pieces, kept deliberately separable from the serving hot path
(the app / telemetry / report split of benchmark harnesses like CORTEX):

* :class:`StreamingHistogram` — a fixed-bucket, log-spaced latency
  histogram.  Observation is O(log buckets) under a lock held for an
  integer increment (batch observation folds a whole array under one
  hold), and two histograms over the same bounds merge by adding
  counts — which is how per-shard instances combine into one service
  view without the workers ever contending on a shared structure.
* :class:`EventLog` — a bounded ring buffer of *structural* events:
  hot-swaps (with the staleness window each closed), retrain
  trigger→publish cycles, shed-policy activations, autotuner re-fits.
  Counters say how much; the event log says what happened and when.
* :func:`render_prometheus` — a Prometheus text-exposition (0.0.4)
  encoder over :class:`~repro.serve.ServiceStats` /
  :class:`~repro.serve.RouterStats` dictionaries, admission snapshots,
  and stage histograms, with per-cell labels throughout.  It is
  deliberately driven off ``to_dict()`` so every counter the stats
  layer grows is exported automatically — the schema-sync tests pin
  that no key can silently vanish from ``/metrics``.

:class:`Telemetry` composes the three per serving stack: an ingress
:class:`StageTimings` (submit and publish, written from producer
threads), one :class:`StageTimings` per batcher shard (written only by
the owning worker), and the event log.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

from ..analysis.concur.runtime import new_lock

__all__ = [
    "STAGES", "DEFAULT_BUCKET_BOUNDS", "bucket_bounds",
    "HistogramSnapshot", "StreamingHistogram", "StageTimings",
    "ServeEvent", "EventLog", "Telemetry", "render_prometheus",
]

#: Lock-discipline declarations for ``repro lint`` — the map form of
#: the ``# guarded-by:`` trailing comment (kept in one place here
#: because two classes share the same simple discipline).
GUARDED_BY = {
    "StreamingHistogram._counts": "_lock",
    "StreamingHistogram._sum": "_lock",
    "EventLog._events": "_lock",
    "EventLog._seq": "_lock",
    "EventLog._dropped": "_lock",
}

#: The serving pipeline's instrumented stages, in request order:
#: ``submit`` (admission gate + enqueue, the submit→enqueue cost),
#: ``queue_wait`` (enqueue → batch take), ``assembly`` (snapshot +
#: CO-VV encode of the batch), ``inference`` (the model/plan forward),
#: ``total`` (enqueue → completion, what the caller experiences), and
#: ``publish`` (clone + compile + swap of one model publication).
STAGES = ("submit", "queue_wait", "assembly", "inference", "total",
          "publish")


def bucket_bounds(lo_us: float = 1.0, hi_us: float = 1e7,
                  per_decade: int = 3) -> tuple[float, ...]:
    """Log-spaced histogram bucket upper bounds (microseconds).

    Fixed at construction so histograms built from the same spec are
    mergeable; the default spans 1 µs – 10 s at three buckets per
    decade, which resolves the sub-millisecond serving tail while still
    covering a wedged multi-second outlier.
    """

    if lo_us <= 0 or hi_us <= lo_us:
        raise ValueError("need 0 < lo_us < hi_us")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n_decades = np.log10(hi_us / lo_us)
    n_bounds = int(round(n_decades * per_decade)) + 1
    bounds = lo_us * 10.0 ** (np.arange(n_bounds) / per_decade)
    # Round to 4 significant digits so the ``le`` labels stay readable
    # and stable across platforms.
    rounded = [float(f"{b:.4g}") for b in bounds]
    return tuple(rounded)


DEFAULT_BUCKET_BOUNDS = bucket_bounds()


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """Immutable point-in-time copy of one histogram.

    ``counts`` has one entry per bound plus a final overflow bucket
    (the Prometheus ``+Inf`` bucket); ``cumulative()`` yields the
    exposition's running totals.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float

    @property
    def count(self) -> int:
        return sum(self.counts)

    def cumulative(self) -> tuple[int, ...]:
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return tuple(out)

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum)

    def to_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}


_EMPTY_CACHE: dict[tuple[float, ...], HistogramSnapshot] = {}


def _empty_snapshot(bounds: tuple[float, ...]) -> HistogramSnapshot:
    snap = _EMPTY_CACHE.get(bounds)
    if snap is None:
        snap = HistogramSnapshot(bounds, (0,) * (len(bounds) + 1), 0.0)
        _EMPTY_CACHE[bounds] = snap
    return snap


class StreamingHistogram:
    """Fixed log-spaced-bucket histogram for latency populations.

    The write path is cheap by construction: :meth:`observe` is one
    bisect plus one locked integer increment, and :meth:`observe_many`
    bins a whole array with ``np.searchsorted`` before taking the lock
    once.  Bounds are fixed at construction, so histograms sharing a
    spec merge exactly (per-shard instances → one service view).
    """

    __slots__ = ("bounds", "_np_bounds", "_counts", "_sum", "_lock")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS):
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("bounds must be strictly increasing and "
                             "non-empty")
        self.bounds = tuple(float(b) for b in bounds)
        self._np_bounds = np.asarray(self.bounds, dtype=np.float64)
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._lock = new_lock("StreamingHistogram._lock")

    def observe(self, value_us: float) -> None:
        idx = bisect_left(self.bounds, value_us)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value_us

    def observe_many(self, values_us) -> None:
        arr = np.asarray(values_us, dtype=np.float64)
        if arr.size == 0:
            return
        # side='left' matches bisect_left: bucket i holds values <=
        # bounds[i] (Prometheus ``le`` semantics).
        idx = np.searchsorted(self._np_bounds, arr, side="left")
        binned = np.bincount(idx, minlength=len(self._counts))  # unguarded-ok: bucket count is fixed at construction; only elements mutate under the lock
        total = float(arr.sum())
        with self._lock:
            for i, n in enumerate(binned):
                if n:
                    self._counts[i] += int(n)
            self._sum += total

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(self.bounds, tuple(self._counts),
                                     self._sum)


class StageTimings:
    """One :class:`StreamingHistogram` per pipeline stage.

    A writer owns its instance (per-shard, or the ingress side), so the
    only contention on any histogram lock is with the snapshot reader.
    """

    __slots__ = ("_stages",)

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS):
        self._stages = {name: StreamingHistogram(bounds) for name in STAGES}

    def observe(self, stage: str, value_us: float) -> None:
        self._stages[stage].observe(value_us)

    def observe_many(self, stage: str, values_us) -> None:
        self._stages[stage].observe_many(values_us)

    def stage(self, name: str) -> StreamingHistogram:
        return self._stages[name]

    def snapshot(self) -> dict[str, HistogramSnapshot]:
        return {name: hist.snapshot()
                for name, hist in self._stages.items()}


@dataclass(frozen=True, slots=True)
class ServeEvent:
    """One structural serving event (hot-swap, retrain, shed episode,
    autotuner re-fit)."""

    seq: int
    unix_ts: float
    kind: str
    cell: str | None = None
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {"seq": self.seq, "unix_ts": self.unix_ts,
                   "kind": self.kind}
        if self.cell is not None:
            payload["cell"] = self.cell
        payload.update(self.fields)
        return payload


class EventLog:
    """Bounded ring buffer of :class:`ServeEvent`.

    Appends are O(1) and never block on readers beyond the ring lock;
    when the ring is full the oldest event is evicted and counted in
    :attr:`dropped` so a reader can tell the tail is partial.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = new_lock("EventLog._lock")
        self._events: list[ServeEvent] = []
        self._seq = 0
        self._dropped = 0

    def append(self, kind: str, cell: str | None = None,
               **fields) -> ServeEvent:
        with self._lock:
            self._seq += 1
            event = ServeEvent(seq=self._seq, unix_ts=time.time(),
                               kind=kind, cell=cell, fields=fields)
            self._events.append(event)
            if len(self._events) > self.capacity:
                del self._events[0]
                self._dropped += 1
        return event

    @property
    def total(self) -> int:
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def tail(self, n: int | None = None) -> list[ServeEvent]:
        """The most recent ``n`` events (all retained when ``None``),
        oldest first."""

        with self._lock:
            events = list(self._events)
        return events if n is None else events[-n:]

    def kind_counts(self) -> dict[str, int]:
        with self._lock:
            counts: dict[str, int] = {}
            for event in self._events:
                counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


class Telemetry:
    """Per-stack telemetry: stage histograms + structural event log.

    ``shard(i)`` hands worker *i* its private :class:`StageTimings`
    (written lock-contention-free); the ingress instance takes the
    producer-side stages (``submit``, ``publish``).
    :meth:`stage_snapshots` merges everything into one per-stage view.
    """

    def __init__(self, n_shards: int = 1, events_capacity: int = 256,
                 bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.bounds = bounds
        self.events = EventLog(events_capacity)
        self.ingress = StageTimings(bounds)
        self._shards = [StageTimings(bounds) for _ in range(n_shards)]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard(self, index: int) -> StageTimings:
        return self._shards[index]

    def observe(self, stage: str, value_us: float) -> None:
        """Record one ingress-side stage observation."""

        self.ingress.observe(stage, value_us)

    def stage_snapshots(self) -> dict[str, HistogramSnapshot]:
        """Per-stage histograms merged across ingress + all shards."""

        merged = {name: _empty_snapshot(self.bounds) for name in STAGES}
        for timings in (self.ingress, *self._shards):
            for name, snap in timings.snapshot().items():
                merged[name] = merged[name].merge(snap)
        return merged

    def to_dict(self, events_tail: int | None = 64) -> dict:
        """JSON-ready view (the ``/stats`` payload's telemetry block)."""

        return {
            "stages": {name: snap.to_dict()
                       for name, snap in self.stage_snapshots().items()},
            "events": [e.to_dict() for e in self.events.tail(events_tail)],
            "events_total": self.events.total,
            "events_dropped": self.events.dropped,
        }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_PREFIX = "repro_serve"

#: ``ServiceStats.to_dict()`` keys that are point-in-time gauges; every
#: other scalar key is exported as a monotone counter.  A new stats key
#: lands here only if it can go down — the encoder defaults to counter.
GAUGE_KEYS = frozenset({
    "pending", "batch_limit", "wait_limit_us", "mean_batch",
    "largest_batch", "model_version", "workers", "model_staleness_s",
    "last_train_seconds", "has_published", "last_publish_unix",
    "canary_fraction", "candidate_version", "replay_window", "drift",
    "trainer_consecutive_failures", "restored_version", "breaker_state",
    "degraded",
})

#: Structured (non-scalar) stats keys with dedicated encodings.
_STRUCTURED_KEYS = ("versions_served", "shard_completed")

#: Admission-snapshot keys exported as numbers (policy becomes a label).
_ADMISSION_GAUGES = ("latency_budget_ms", "max_queue", "arrival_rate",
                     "service_rate")
_ADMISSION_COUNTERS = ("admitted", "shed")


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels(**kv) -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in kv.items()
             if v is not None]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf",
                float("-inf"): "-Inf"}.get(value, "NaN")
    return repr(value)


class _Families:
    """Accumulates samples grouped into metric families so each family
    renders one ``# HELP`` / ``# TYPE`` header followed by every cell's
    samples."""

    def __init__(self):
        self._families: dict[str, tuple[str, str, list[str]]] = {}

    def add(self, name: str, mtype: str, help_text: str,
            value, **labels) -> None:
        family = self._families.get(name)
        if family is None:
            family = (mtype, help_text, [])
            self._families[name] = family
        family[2].append(f"{name}{_labels(**labels)} "
                         f"{_format_value(value)}")

    def render(self) -> str:
        lines: list[str] = []
        for name, (mtype, help_text, samples) in self._families.items():
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"


def _encode_stats(families: _Families, cell: str, stats_dict: dict) -> None:
    for key, value in stats_dict.items():
        if key == "cells":
            continue  # per-cell dicts are encoded per cell by the caller
        if key == "versions_served":
            for version, count in sorted(value.items()):
                families.add(
                    f"{_PREFIX}_versions_served_total", "counter",
                    "Classifications served, by model version.",
                    count, cell=cell, version=str(version))
            continue
        if key == "shard_completed":
            for shard, count in enumerate(value):
                families.add(
                    f"{_PREFIX}_shard_completed_total", "counter",
                    "Classifications completed, by batcher shard.",
                    count, cell=cell, shard=str(shard))
            continue
        if not isinstance(value, (bool, int, float)):
            raise TypeError(
                f"stats key {key!r} has unexported type "
                f"{type(value).__name__}; teach the Prometheus encoder "
                f"about it")
        if key in GAUGE_KEYS:
            families.add(f"{_PREFIX}_{key}", "gauge",
                         f"Point-in-time {key.replace('_', ' ')}.",
                         value, cell=cell)
        else:
            families.add(f"{_PREFIX}_{key}_total", "counter",
                         f"Total {key.replace('_', ' ')}.",
                         value, cell=cell)


def _encode_admission(families: _Families, cell: str,
                      snapshot: dict) -> None:
    families.add(f"{_PREFIX}_admission_policy", "gauge",
                 "Configured shed policy (value is always 1).",
                 1, cell=cell, policy=snapshot.get("policy"))
    for key in _ADMISSION_GAUGES:
        value = snapshot.get(key)
        if value is not None:
            families.add(f"{_PREFIX}_admission_{key}", "gauge",
                         f"Admission controller {key.replace('_', ' ')}.",
                         value, cell=cell)
    for key in _ADMISSION_COUNTERS:
        value = snapshot.get(key)
        if value is not None:
            families.add(f"{_PREFIX}_admission_{key}_total", "counter",
                         f"Admission controller {key} decisions.",
                         value, cell=cell)


def _encode_stages(families: _Families, cell: str,
                   stages: dict[str, HistogramSnapshot]) -> None:
    name = f"{_PREFIX}_stage_duration_us"
    for stage, snap in stages.items():
        cumulative = snap.cumulative()
        for bound, count in zip(snap.bounds, cumulative):
            families.add(f"{name}_bucket", "histogram",
                         "Per-stage serving latency, microseconds.",
                         count, cell=cell, stage=stage,
                         le=_format_value(float(bound)))
        # cumulative() spans the overflow bucket, so its last entry IS
        # the +Inf sample (equal to the total observation count).
        families.add(f"{name}_bucket", "histogram",
                     "Per-stage serving latency, microseconds.",
                     cumulative[-1], cell=cell, stage=stage, le="+Inf")
        families.add(f"{name}_sum", "counter",
                     "Sum of per-stage serving latency, microseconds.",
                     snap.sum, cell=cell, stage=stage)
        families.add(f"{name}_count", "counter",
                     "Observations of per-stage serving latency.",
                     snap.count, cell=cell, stage=stage)


def _encode_events(families: _Families, cell: str, events: EventLog) -> None:
    families.add(f"{_PREFIX}_events_total", "counter",
                 "Structural events appended to the telemetry ring.",
                 events.total, cell=cell)
    families.add(f"{_PREFIX}_events_dropped_total", "counter",
                 "Structural events evicted from the full telemetry ring.",
                 events.dropped, cell=cell)
    for kind, count in sorted(events.kind_counts().items()):
        families.add(f"{_PREFIX}_events_retained", "gauge",
                     "Events currently retained in the ring, by kind.",
                     count, cell=cell, kind=kind)


def render_prometheus(
        cells: dict[str, dict],
        admission: dict[str, dict] | None = None,
        stages: dict[str, dict[str, HistogramSnapshot]] | None = None,
        events: dict[str, EventLog] | None = None) -> str:
    """Render the Prometheus text exposition (format 0.0.4).

    ``cells`` maps cell id → ``ServiceStats.to_dict()`` (a single
    un-routed service conventionally uses cell id ``"default"``);
    ``admission`` / ``stages`` / ``events`` optionally map the same ids
    to :meth:`AdmissionController.snapshot` dicts, merged per-stage
    :class:`HistogramSnapshot` maps, and :class:`EventLog` instances.
    Every scalar stats key is exported exactly once per cell —
    unexportable types raise so a new structured counter cannot be
    silently skipped.
    """

    families = _Families()
    for cell, stats_dict in cells.items():
        _encode_stats(families, cell, stats_dict)
        if admission and cell in admission:
            _encode_admission(families, cell, admission[cell])
        if stages and cell in stages:
            _encode_stages(families, cell, stages[cell])
        if events and cell in events:
            _encode_events(families, cell, events[cell])
    return families.render()
