"""Background retraining thread: the real-time `OnlineModelUpdater`.

The simulated side-car (:class:`~repro.sim.OnlineModelUpdater`) models
retraining as a delay inside the replay's timebase.  Here the same loop
runs on a real thread against wall time: labelled observations
accumulate in a bounded buffer, the shared
:class:`~repro.sim.RetrainPolicy` decides when enough new constraint
vocabulary has appeared, and a *clone* of the currently-served model is
transfer-trained (input-layer extension + damped gradients, the paper's
Listings 2–3) off the serving path.  Only the final
:meth:`~repro.serve.ModelHandle.publish` touches shared state — the
serving thread never waits on training.

Two levers keep the retrain→publish staleness window tight:

* **Wakeup, not polling** — the loop blocks on a condition variable
  signalled by every :meth:`BackgroundTrainer.observe` (the only event
  that can arm the trigger), with ``poll_interval_s`` demoted to a
  watchdog upper bound (it still re-arms backoff expiry, which no
  observation signals).
* **Fused training** (default) — the shadow model retrains through the
  compiled :class:`~repro.core.TrainPlan`: the encoded CO-VV matrix
  stays CSR end to end (``keep_sparse``) and each epoch runs fused
  NumPy backprop with zero autograd graphs.  ``fused=False`` keeps the
  eager Listing-3 loop as the fallback and equivalence oracle.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..analysis.concur.runtime import new_lock
from ..constraints.compaction import CompactedTask
from ..core.growing import GrowingModel
from ..datasets.co_vv import COVVEncoder
from ..datasets.dataset import DatasetData
from ..datasets.registry import FeatureRegistry
from ..errors import TrainingFailedError
from ..sim.online import RetrainPolicy
from .handle import ModelHandle

__all__ = ["ServeUpdate", "BackgroundTrainer"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class ServeUpdate:
    """One completed real-time retraining (wall-clock UpdateRecord).

    ``staleness_closed_s`` is the age of the *replaced* snapshot at the
    moment this update published — how stale the served model had
    become before retraining caught up (0 when nothing was being
    served).  ``train_seconds`` is the retrain-trigger→publish latency;
    shrinking it is what the fused training path is for.

    ``stage`` is ``"published"`` for a direct swap and ``"canary"``
    when a rollout controller staged the model for canary traffic
    instead (promotion happens later, off this record).
    ``warm_started`` marks retrains that resumed the previous cycle's
    Adam optimizer state instead of cold-starting the moments.
    """

    version: int
    triggered_at: float
    published_at: float
    features_before: int
    features_after: int
    n_observations: int
    epochs: int
    accuracy: float
    staleness_closed_s: float = 0.0
    fused: bool = True
    stage: str = "published"
    warm_started: bool = False

    @property
    def train_seconds(self) -> float:
        return self.published_at - self.triggered_at


class BackgroundTrainer:
    """Watch the registry for growth; retrain and hot-swap off-path.

    Parameters
    ----------
    handle / registry:
        The serving slot to publish into and the CO-VV registry that
        observations extend (the AGOCS side of Figure 3).
    policy:
        The shared retrain trigger (growth + observation thresholds).
    poll_interval_s:
        Watchdog upper bound on how long the thread sleeps without an
        observation wakeup (backoff expiry is time-, not event-driven).
    retry_backoff_s:
        Cool-down after an unsuccessful attempt (undertrained data or
        exhausted fail-fast budget) before the trigger is re-armed.
    fused:
        ``True`` (default) retrains through the compiled
        :class:`~repro.core.TrainPlan` on the CSR-kept dataset;
        ``False`` uses the eager autograd loop on densified data.
    """

    def __init__(self, handle: ModelHandle, registry: FeatureRegistry,
                 policy: RetrainPolicy | None = None,
                 poll_interval_s: float = 0.05,
                 retry_backoff_s: float = 1.0,
                 max_buffer: int = 50_000,
                 config=None,
                 registry_lock: threading.Lock | None = None,
                 fused: bool = True,
                 telemetry=None,
                 rng: np.random.Generator | None = None,
                 rollout=None,
                 warm_start: bool = True,
                 max_consecutive_failures: int = 5,
                 max_backoff_s: float = 30.0):
        """``config`` (a :class:`~repro.core.CTLMConfig`) is only used
        when no served model exists to clone from.  ``registry_lock``
        serializes registry growth against concurrent encoders (share it
        with the batcher; the service does this automatically).
        ``telemetry`` logs each retrain trigger→publish cycle (and each
        rejected attempt) into the structural event ring.

        ``rollout`` (a :class:`~repro.serve.rollout.RolloutController`)
        reroutes publication through the staged-rollout gates: the
        retrained shadow is *offered* (shadow-scored, then canaried)
        instead of blindly published.  ``warm_start`` resumes the
        previous cycle's Adam optimizer state on each retrain (fused
        path only), cutting epochs-to-acceptance and thereby the
        trigger→publish staleness window.  ``max_consecutive_failures``
        is the health-probe threshold surfaced via
        :attr:`consecutive_failures` after crashed (raising) retrain
        attempts, which back off exponentially up to ``max_backoff_s``
        (with jitter) and never kill the trainer thread."""

        self.handle = handle
        self.registry = registry
        self.policy = policy or RetrainPolicy()
        self.config = config
        self.registry_lock = (registry_lock
                              or new_lock("BackgroundTrainer.registry_lock"))
        self.poll_interval_s = poll_interval_s
        self.retry_backoff_s = retry_backoff_s
        self.max_buffer = max_buffer
        self.fused = fused
        self.telemetry = telemetry
        self.rng = rng or np.random.default_rng()
        self.rollout = rollout
        self.warm_start = warm_start
        self.max_consecutive_failures = max_consecutive_failures
        self.max_backoff_s = max_backoff_s

        self._lock = new_lock("BackgroundTrainer._lock")
        # Observation wakeup: observe() signals, the loop waits with
        # poll_interval_s as the watchdog timeout.  _wake_seq lets the
        # loop detect arrivals that landed between its trigger check
        # and the wait (no missed-wakeup window).
        self._wake = threading.Condition(self._lock)
        self._wake_seq = 0  # guarded-by: _lock
        self._tasks: list[CompactedTask] = []  # guarded-by: _lock
        self._labels: list[int] = []  # guarded-by: _lock
        # Incremental label histogram over the live buffer, plus the
        # histogram of what the last published model trained on — the
        # drift signal is the total-variation distance between the two.
        self._label_counts: dict[int, int] = {}  # guarded-by: _lock
        self._ref_label_counts: dict[int, int] | None = None  # guarded-by: _lock
        self._consecutive_failures = 0  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._width_at_last_publish = (
            handle.snapshot().features_count if handle.serving
            else registry.features_count)
        self._not_before = 0.0
        # Adam state of the last successful retrain.  Written by
        # train_once, read by the durability layer's checkpoint
        # collector — hence lock-guarded, not thread-private.  The dict
        # holds copies (TrainPlan.optimizer_state copies; load copies
        # back in), so sharing the reference across the lock is safe.
        self._opt_state: dict | None = None  # guarded-by: _lock

        self.updates: list[ServeUpdate] = []
        self.failed_updates = 0
        self.observations_total = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BackgroundTrainer":
        if self._thread is not None:
            raise RuntimeError("trainer already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-trainer",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def alive(self) -> bool:
        """True while the retrain loop thread is running.

        The health plane's trainer-liveness probe: a trainer that was
        started and whose thread died (however that happened) reports
        ``False``, and the service can no longer close staleness.
        A never-started or cleanly-stopped trainer also reports
        ``False`` — liveness only means anything after :meth:`start`.
        """

        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------
    # observation intake (called from serving / ingest threads)
    # ------------------------------------------------------------------
    def observe(self, task: CompactedTask, group: int) -> None:
        """Record one labelled observation; extends the registry and
        wakes the trainer thread."""

        with self.registry_lock:
            self.registry.observe_task(task)
        with self._wake:
            self._tasks.append(task)
            group = int(group)
            self._labels.append(group)
            self._label_counts[group] = self._label_counts.get(group, 0) + 1
            self.observations_total += 1
            if len(self._tasks) > self.max_buffer:
                # Sliding window: keep the freshest observations (and
                # keep the drift histogram consistent with the window).
                for evicted in self._labels[:-self.max_buffer]:
                    remaining = self._label_counts.get(evicted, 0) - 1
                    if remaining > 0:
                        self._label_counts[evicted] = remaining
                    else:
                        self._label_counts.pop(evicted, None)
                del self._tasks[:-self.max_buffer]
                del self._labels[:-self.max_buffer]
            self._wake_seq += 1
            self._wake.notify()
        if self.rollout is not None:
            self.rollout.ring.observe(task, group)

    @property
    def n_observations(self) -> int:
        return len(self._tasks)  # unguarded-ok: advisory size for monitoring; len() is atomic under the GIL

    # ------------------------------------------------------------------
    # durable state (checkpoint collector / warm restart)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> tuple[dict | None, dict[int, int] | None]:
        """``(optimizer_state, ref_label_counts)`` for a checkpoint.

        The optimizer dict is shared by reference (its arrays are
        copies that nothing mutates in place); the drift-reference
        histogram is copied.
        """

        with self._lock:
            reference = (dict(self._ref_label_counts)
                         if self._ref_label_counts else None)
            return self._opt_state, reference

    def restore_state(self, optimizer_state: dict | None = None,
                      ref_label_counts: dict[int, int] | None = None
                      ) -> None:
        """Warm-restart from a checkpoint (call before :meth:`start`).

        Seeds the next retrain's Adam moments and the drift-reference
        histogram, so a restarted trainer resumes exactly where the
        pre-crash one left off instead of cold-starting both.
        """

        with self._lock:
            if optimizer_state is not None:
                self._opt_state = optimizer_state
            if ref_label_counts is not None:
                self._ref_label_counts = dict(ref_label_counts)

    def reset_failures(self) -> None:
        """Clear the crash streak (a supervisor restarting the trainer
        gives the fresh thread a clean health slate and no backoff)."""

        with self._lock:
            self._consecutive_failures = 0
        self._not_before = 0.0

    # ------------------------------------------------------------------
    # trigger + training
    # ------------------------------------------------------------------
    def drift(self) -> float:
        """Label-distribution shift of the live window vs last publish.

        Total-variation distance between the current observation
        buffer's label histogram and the histogram the last published
        (or staged) model trained on: 0 means identical mix, 1 means
        disjoint.  0 until a first retrain establishes the reference.
        """

        with self._lock:
            counts = dict(self._label_counts)
            reference = (dict(self._ref_label_counts)
                         if self._ref_label_counts else None)
        if not counts or not reference:
            return 0.0
        n = sum(counts.values())
        m = sum(reference.values())
        labels = set(counts) | set(reference)
        return 0.5 * sum(abs(counts.get(label, 0) / n
                             - reference.get(label, 0) / m)
                         for label in labels)

    def due(self) -> bool:
        if time.monotonic() < self._not_before:
            return False
        return self.policy.due(len(self._tasks),  # unguarded-ok: atomic len; a stale count only delays the trigger one poll
                               self.registry.features_count,
                               self._width_at_last_publish,
                               drift=self.drift())

    def _loop(self) -> None:
        while not self._stop.is_set():
            with self._wake:
                seen = self._wake_seq
            if self.due():
                # A crashing retrain attempt must never kill the loop:
                # the incumbent keeps serving, the failure is logged
                # and counted for the health plane, and the next
                # attempt waits out an exponential (jittered) backoff.
                try:
                    self.train_once()
                except Exception as exc:  # noqa: BLE001 — trainer must survive
                    self._note_crashed(exc)
                else:
                    with self._lock:
                        self._consecutive_failures = 0
                continue
            backoff = self._not_before - time.monotonic()
            if backoff > 0:
                # Cool-down is time-gated: observation wakeups cannot
                # arm the trigger until it expires, so sleep it out
                # (watchdog-bounded) instead of re-checking per
                # observation.
                self._stop.wait(min(backoff, self.poll_interval_s))
                continue
            with self._wake:
                # Sleep only if nothing arrived since the trigger
                # check; the watchdog timeout covers time-driven
                # re-arming (backoff expiry).
                if self._wake_seq == seen and not self._stop.is_set():
                    self._wake.wait(self.poll_interval_s)

    @property
    def consecutive_failures(self) -> int:
        """Crashed retrain attempts since the last clean cycle.

        The health plane 503s the cell once this passes
        :attr:`max_consecutive_failures` — the trainer is alive but
        wedged, and staleness can no longer close.
        """

        return self._consecutive_failures  # unguarded-ok: atomic int read for health probes

    def _note_crashed(self, exc: BaseException) -> None:
        """Record one crashed (raising) retrain attempt and back off."""

        logger.exception("retrain attempt crashed; trainer continues")
        self.failed_updates += 1
        with self._lock:
            self._consecutive_failures += 1
            failures = self._consecutive_failures
        backoff = min(self.retry_backoff_s * (2 ** (failures - 1)),
                      self.max_backoff_s)
        # Jitter de-synchronizes retry stampedes across cells sharing a
        # failing dependency.
        backoff *= 1.0 + 0.5 * float(self.rng.random())
        self._not_before = time.monotonic() + backoff
        if self.telemetry is not None:
            self.telemetry.events.append(
                "retrain_failed", error=type(exc).__name__,
                consecutive=failures, backoff_s=round(backoff, 3))

    def train_once(self) -> ServeUpdate | None:
        """One retrain → publish cycle (public for deterministic tests)."""

        triggered_at = time.monotonic()
        with self._lock:
            tasks = list(self._tasks)
            labels = list(self._labels)
            opt_state = self._opt_state if self.warm_start else None
        features_before = self._width_at_last_publish

        with self.registry_lock:
            X = COVVEncoder(self.registry).encode_rows(tasks)
        y = np.asarray(labels, dtype=np.int64)
        if X.shape[0] < 8 or len(np.unique(y)) < 2:
            self._not_before = time.monotonic() + self.retry_backoff_s
            if self.telemetry is not None:
                self.telemetry.events.append(
                    "retrain_rejected", reason="undertrained",
                    n_observations=int(X.shape[0]),
                    backoff_s=self.retry_backoff_s)
            return None

        shadow = self._shadow_model()
        # The fused path trains straight off the encoder's CSR output;
        # the eager oracle needs it densified.
        dataset = DatasetData(X, y, batch_size=shadow.config.batch_size,
                              keep_sparse=self.fused, rng=self.rng)
        try:
            outcome = shadow.fit_step(dataset, fused=self.fused,
                                      optimizer_state=opt_state)
        except TrainingFailedError:
            self.failed_updates += 1
            self._not_before = time.monotonic() + self.retry_backoff_s
            if self.telemetry is not None:
                self.telemetry.events.append(
                    "retrain_rejected", reason="training_failed",
                    n_observations=int(X.shape[0]),
                    backoff_s=self.retry_backoff_s)
            return None
        if self.warm_start:
            # Seed the next cycle's Adam from this accepted retrain,
            # even if the rollout gates end up holding this one back.
            with self._lock:
                self._opt_state = getattr(shadow, "last_optimizer_state",
                                          None)

        previous = self.handle.snapshot() if self.handle.serving else None
        stage = "published"
        # The shadow is discarded after publication, so no clone needed.
        if self.rollout is not None:
            offer = self.rollout.offer(shadow)
            stage = offer.stage
            if offer.snapshot is None:
                # Shadow-gate rejection or a canary still in flight:
                # the incumbent keeps serving; re-arm after a cooldown.
                self._not_before = time.monotonic() + self.retry_backoff_s
                if self.telemetry is not None:
                    self.telemetry.events.append(
                        "retrain_rejected", reason=stage,
                        n_observations=int(X.shape[0]),
                        backoff_s=self.retry_backoff_s)
                return None
            snapshot = offer.snapshot
        else:
            snapshot = self.handle.publish(shadow, clone=False)
        self._width_at_last_publish = snapshot.features_count
        with self._lock:
            # This retrain's label mix becomes the drift reference.
            reference: dict[int, int] = {}
            for label in labels:
                reference[label] = reference.get(label, 0) + 1
            self._ref_label_counts = reference
        update = ServeUpdate(
            version=snapshot.version, triggered_at=triggered_at,
            published_at=time.monotonic(),
            features_before=features_before,
            features_after=snapshot.features_count,
            n_observations=X.shape[0], epochs=outcome.epochs,
            accuracy=outcome.accuracy,
            staleness_closed_s=(
                0.0 if previous is None or stage != "published"
                else snapshot.published_at - previous.published_at),
            fused=self.fused, stage=stage,
            warm_started=getattr(outcome, "warm_started", False))
        self.updates.append(update)
        if self.telemetry is not None:
            self.telemetry.events.append(
                "retrain", version=update.version,
                train_seconds=round(update.train_seconds, 6),
                epochs=update.epochs,
                accuracy=round(update.accuracy, 4),
                n_observations=update.n_observations,
                features_before=update.features_before,
                features_after=update.features_after,
                fused=update.fused, stage=update.stage,
                warm_started=update.warm_started)
        logger.info("%s model v%d: %d -> %d features, %d epochs, "
                    "acc %.3f, %.3fs trigger->%s (%s%s)",
                    "staged" if stage == "canary" else "published",
                    update.version, update.features_before,
                    update.features_after, update.epochs, update.accuracy,
                    update.train_seconds,
                    "stage" if stage == "canary" else "publish",
                    "fused" if self.fused else "eager",
                    ", warm" if update.warm_started else "")
        return update

    def _shadow_model(self) -> GrowingModel:
        """A private, trainable copy of the served model (or a fresh one)."""

        if self.handle.serving:
            served = self.handle.snapshot().model
            if isinstance(served, GrowingModel):
                shadow = served.clone()
                shadow.rng = self.rng
                return shadow
        if self.config is not None:
            return GrowingModel(self.config, rng=self.rng)
        return GrowingModel(rng=self.rng)
