"""``repro.sim`` — AGOCS-style cluster scheduling simulator.

Cluster state, the conventional main scheduler, the Figure 3 Task CO
Analyzer + High-Priority Scheduler pair, gang scheduling, latency
instrumentation, and the event-driven replay engine.
"""

from .cluster import ClusterState, PendingTask
from .engine import SimulationConfig, SimulationEngine, SimulationResult
from .gang import Gang, GangScheduler, group_into_gangs
from .highpriority import HighPriorityScheduler, TaskCOAnalyzer
from .latency import LatencyRecorder, LatencySample, LatencySummary
from .online import OnlineModelUpdater, RetrainPolicy, UpdateRecord
from .scheduler import MainScheduler, SchedulerStats

__all__ = [
    "ClusterState", "PendingTask",
    "MainScheduler", "SchedulerStats",
    "TaskCOAnalyzer", "HighPriorityScheduler",
    "Gang", "GangScheduler", "group_into_gangs",
    "LatencyRecorder", "LatencySample", "LatencySummary",
    "SimulationConfig", "SimulationEngine", "SimulationResult",
    "OnlineModelUpdater", "RetrainPolicy", "UpdateRecord",
]
