"""Cluster runtime state for the scheduling simulator.

Tracks, on top of :class:`~repro.constraints.matcher.MachinePark`
(attributes + constraint matching), the mutable allocation state: per-
machine free CPU/memory and the set of running task instances.  This is
the state both schedulers (main and high-priority) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.compaction import CompactedTask
from ..constraints.matcher import MachinePark
from ..constraints.soft import SoftAffinityTask
from ..errors import SchedulingError

__all__ = ["PendingTask", "ClusterState"]


@dataclass
class PendingTask:
    """A task waiting in (or running out of) the scheduler queue.

    ``task`` may be a plain :class:`CompactedTask` (hard constraints
    only), a :class:`SoftAffinityTask` (hard + weighted preferences, the
    §VI extension), or None for unconstrained tasks.
    """

    collection_id: int
    task_index: int
    submit_time: int
    cpu: float
    mem: float
    priority: int
    task: CompactedTask | SoftAffinityTask | None = None
    suitable_count: int | None = None        # filled by the CO analyzer
    predicted_group: int | None = None
    machine_id: int | None = None            # where it ended up
    scheduled_time: int | None = None

    @property
    def key(self) -> tuple[int, int]:
        return (self.collection_id, self.task_index)

    @property
    def latency(self) -> int | None:
        """Scheduling latency in microseconds (None while pending)."""

        if self.scheduled_time is None:
            return None
        return self.scheduled_time - self.submit_time


class ClusterState:
    """Machine park + allocation bookkeeping."""

    def __init__(self) -> None:
        self.park = MachinePark()
        self._free_cpu: dict = {}
        self._free_mem: dict = {}
        self._running: dict[tuple[int, int], tuple[object, float, float]] = {}

    # -- machine lifecycle ---------------------------------------------------
    def add_machine(self, machine_id, cpu: float, mem: float,
                    attributes=None) -> None:
        self.park.add_machine(machine_id, cpu=cpu, mem=mem,
                              attributes=attributes)
        self._free_cpu[machine_id] = cpu
        self._free_mem[machine_id] = mem

    def remove_machine(self, machine_id) -> list[tuple[int, int]]:
        """Remove a machine; returns keys of tasks evicted by the removal."""

        self.park.remove_machine(machine_id)
        evicted = [key for key, (mid, _c, _m) in self._running.items()
                   if mid == machine_id]
        for key in evicted:
            del self._running[key]
        self._free_cpu.pop(machine_id, None)
        self._free_mem.pop(machine_id, None)
        return evicted

    def set_attribute(self, machine_id, attribute: str, value) -> None:
        self.park.set_attribute(machine_id, attribute, value)

    # -- capacity ---------------------------------------------------------
    def free_cpu(self, machine_id) -> float:
        return self._free_cpu.get(machine_id, 0.0)

    def free_mem(self, machine_id) -> float:
        return self._free_mem.get(machine_id, 0.0)

    def utilization(self) -> tuple[float, float]:
        """(cpu, mem) utilization over alive machines, each in [0, 1]."""

        alive = self.park.machine_ids()
        if not alive:
            return (0.0, 0.0)
        total_cpu = total_mem = used_cpu = used_mem = 0.0
        for mid in alive:
            cap_cpu, cap_mem = self.park.capacity_of(mid)
            total_cpu += cap_cpu
            total_mem += cap_mem
            used_cpu += cap_cpu - self._free_cpu.get(mid, 0.0)
            used_mem += cap_mem - self._free_mem.get(mid, 0.0)
        return (used_cpu / total_cpu if total_cpu else 0.0,
                used_mem / total_mem if total_mem else 0.0)

    # -- placement ---------------------------------------------------------
    def fits(self, machine_id, cpu: float, mem: float) -> bool:
        return (machine_id in self.park
                and self._free_cpu.get(machine_id, 0.0) >= cpu
                and self._free_mem.get(machine_id, 0.0) >= mem)

    @staticmethod
    def hard_constraints(pending: PendingTask) -> CompactedTask | None:
        """The mandatory constraint set of a pending task (soft-aware)."""

        if isinstance(pending.task, SoftAffinityTask):
            return pending.task.hard
        return pending.task

    def eligible_with_capacity(self, pending: PendingTask) -> list:
        """Machines satisfying hard constraints AND current free capacity."""

        hard = self.hard_constraints(pending)
        if hard is None:
            candidates = self.park.machine_ids()
        else:
            candidates = self.park.eligible_machines(hard)
        return [mid for mid in candidates
                if self.fits(mid, pending.cpu, pending.mem)]

    def preference_of(self, pending: PendingTask, machine_id) -> int:
        """Soft-affinity score of one machine for the task (0 if none)."""

        if not isinstance(pending.task, SoftAffinityTask):
            return 0
        return pending.task.score(self.park.attributes_of(machine_id))

    def place(self, pending: PendingTask, machine_id, time: int) -> None:
        """Commit a task to a machine."""

        if not self.fits(machine_id, pending.cpu, pending.mem):
            raise SchedulingError(
                f"machine {machine_id!r} cannot host task {pending.key}")
        if pending.key in self._running:
            raise SchedulingError(f"task {pending.key} is already running")
        self._free_cpu[machine_id] -= pending.cpu
        self._free_mem[machine_id] -= pending.mem
        self._running[pending.key] = (machine_id, pending.cpu, pending.mem)
        pending.machine_id = machine_id
        pending.scheduled_time = time

    def release(self, key: tuple[int, int]) -> None:
        """Free a finished/killed task's resources (no-op if unknown)."""

        entry = self._running.pop(key, None)
        if entry is None:
            return
        machine_id, cpu, mem = entry
        if machine_id in self._free_cpu:
            self._free_cpu[machine_id] += cpu
            self._free_mem[machine_id] += mem

    def is_running(self, key: tuple[int, int]) -> bool:
        return key in self._running

    @property
    def n_running(self) -> int:
        return len(self._running)
