"""Event-driven cluster scheduling simulation (the AGOCS replay engine).

Replays a cell trace against the simulator's own schedulers: machine
events mutate the cluster, task SUBMITs enter the scheduling path (and
are classified by the Task CO Analyzer when one is installed), trace
termination events release resources.  The trace's own SCHEDULE events
are ignored — placement decisions belong to the simulated schedulers,
which is the whole point of the Figure 3 experiment.

The main scheduler runs on a fixed cycle cadence; the high-priority path
runs at arrival.  Per-task scheduling latencies land in a
:class:`~repro.sim.latency.LatencyRecorder` keyed by the task's *true*
group, computed from the live machine park at submit time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.compaction import compact
from ..datasets.grouping import group_of
from ..errors import CompactionError
from ..trace.events import (MICROS_PER_SECOND, CellTrace, CollectionEvent,
                            MachineAttributeEvent, MachineEvent,
                            MachineEventKind, TaskEvent, TaskEventKind)
from ..trace.synthetic import SyntheticCell
from .cluster import ClusterState, PendingTask
from .highpriority import HighPriorityScheduler, TaskCOAnalyzer
from .latency import LatencyRecorder
from .scheduler import MainScheduler

__all__ = ["SimulationConfig", "SimulationResult", "SimulationEngine"]


@dataclass
class SimulationConfig:
    """Engine knobs."""

    cycle_period_us: int = 10 * MICROS_PER_SECOND
    scan_budget: int = 64
    route_threshold: int = 0          # analyzer routes predicted group ≤ this
    hp_dispatch_latency_us: int = 50_000
    allow_preemption: bool = True
    hp_priority_boost: int | None = 12  # rerouted tasks preempt as if ≥ this
    restrictive_group_max: int = 0    # metrics: "restrictive" population


@dataclass
class SimulationResult:
    """Outputs of one replay."""

    recorder: LatencyRecorder
    main_stats: object
    hp_stats: object | None
    analyzer: TaskCOAnalyzer | None
    tasks_submitted: int
    tasks_scheduled: int
    tasks_unscheduled_at_end: int
    compaction_anomalies: int

    def restrictive_speedup_vs(self, baseline: "SimulationResult") -> float:
        """mean restrictive latency: baseline / this (≥1 means faster)."""

        ours = self.recorder.summary_restrictive().mean_s
        theirs = baseline.recorder.summary_restrictive().mean_s
        if ours <= 0:
            return float("inf") if theirs > 0 else 1.0
        return theirs / ours


class SimulationEngine:
    """Replay one cell trace through the simulated scheduling stack."""

    def __init__(self, config: SimulationConfig | None = None,
                 analyzer: TaskCOAnalyzer | None = None,
                 updater=None):
        """``updater`` — optional
        :class:`~repro.sim.online.OnlineModelUpdater`; fed labelled
        observations at submit time and ticked once per scheduling cycle
        (the Figure 3 parallel model-update path)."""

        self.config = config or SimulationConfig()
        self.analyzer = analyzer
        self.updater = updater
        self.cluster = ClusterState()
        self.main = MainScheduler(self.cluster,
                                  scan_budget=self.config.scan_budget)
        self.hp = (HighPriorityScheduler(
            self.cluster, self.main,
            dispatch_latency=self.config.hp_dispatch_latency_us,
            allow_preemption=self.config.allow_preemption,
            priority_boost=self.config.hp_priority_boost)
            if analyzer is not None else None)
        self.recorder = LatencyRecorder(
            restrictive_group_max=self.config.restrictive_group_max)
        self._pending_by_key: dict[tuple[int, int], PendingTask] = {}
        self._recorded: set[tuple[int, int]] = set()
        self._group_bin: int | None = None

    # ------------------------------------------------------------------
    def run(self, cell: SyntheticCell | CellTrace,
            group_bin: int | None = None,
            limit_time: int | None = None) -> SimulationResult:
        """Replay the trace; returns collected metrics."""

        if isinstance(cell, SyntheticCell):
            trace = cell.trace
            self._group_bin = cell.group_bin if group_bin is None else group_bin
        else:
            trace = cell
            if group_bin is None:
                raise ValueError("bare traces need an explicit group_bin")
            self._group_bin = group_bin

        anomalies = 0
        submitted = 0
        next_cycle = 0
        for event in trace:
            if limit_time is not None and event.time > limit_time:
                break
            while next_cycle <= event.time:
                self._run_cycle(next_cycle)
                next_cycle += self.config.cycle_period_us

            if isinstance(event, MachineEvent):
                self._machine_event(event)
            elif isinstance(event, MachineAttributeEvent):
                if event.machine_id in self.cluster.park:
                    self.cluster.set_attribute(
                        event.machine_id, event.attribute,
                        None if event.deleted else event.value)
            elif isinstance(event, TaskEvent):
                if event.kind is TaskEventKind.SUBMIT:
                    submitted += 1
                    anomalies += self._submit(event)
                elif event.kind.is_termination:
                    self._terminate(event.task_key)
                # SCHEDULE / UPDATE events from the trace are ignored: the
                # simulated schedulers make their own placement decisions.
            elif isinstance(event, CollectionEvent):
                continue

        # Drain: let the scheduler run a few more cycles on leftovers.
        for _ in range(50):
            if not self.main.queue:
                break
            self._run_cycle(next_cycle)
            next_cycle += self.config.cycle_period_us

        for pending in self.main.queue:
            self.recorder.record_unscheduled()

        return SimulationResult(
            recorder=self.recorder, main_stats=self.main.stats,
            hp_stats=self.hp.stats if self.hp else None,
            analyzer=self.analyzer, tasks_submitted=submitted,
            tasks_scheduled=self.main.stats.scheduled
            + (self.hp.stats.scheduled if self.hp else 0),
            tasks_unscheduled_at_end=len(self.main.queue),
            compaction_anomalies=anomalies)

    # ------------------------------------------------------------------
    def _machine_event(self, event: MachineEvent) -> None:
        if event.kind is MachineEventKind.ADD:
            if event.machine_id not in self.cluster.park:
                self.cluster.add_machine(event.machine_id,
                                         cpu=event.cpu, mem=event.mem)
        elif event.kind is MachineEventKind.REMOVE:
            if event.machine_id in self.cluster.park:
                evicted = self.cluster.remove_machine(event.machine_id)
                for key in evicted:
                    victim = self._pending_by_key.get(key)
                    if victim is not None:
                        victim.machine_id = None
                        victim.scheduled_time = None
                        self.main.requeue_front(victim)

    def _submit(self, event: TaskEvent) -> int:
        """Route one arriving task; returns 1 on compaction anomaly."""

        task = None
        anomaly = 0
        if event.constraints:
            try:
                task = compact(event.constraints)
                if len(task) == 0:
                    task = None
            except CompactionError:
                # Anomalous task: logged and skipped, as in AGOCS.
                return 1
        pending = PendingTask(
            collection_id=event.collection_id, task_index=event.task_index,
            submit_time=event.time, cpu=event.cpu_request,
            mem=event.mem_request, priority=event.priority, task=task)
        self._pending_by_key[pending.key] = pending

        # True restrictiveness for metrics (park state at submit time).
        if task is not None:
            count = self.cluster.park.count_suitable(task)
            pending.suitable_count = count
            if self.updater is not None:
                self.updater.observe(task, count, self._group_bin,
                                     event.time)

        routed = False
        if self.analyzer is not None and task is not None:
            route, predicted = self.analyzer.should_route(task)
            pending.predicted_group = predicted
            if route and self.hp is not None:
                routed = True
                if self.hp.schedule(pending, event.time):
                    self.hp.register_running(pending)
                    self._record(pending, routed=True)
                    return anomaly
                # Deferred to main queue head by the HP scheduler.
                return anomaly
        self.main.submit(pending)
        return anomaly

    def _run_cycle(self, now: int) -> None:
        if self.updater is not None:
            self.updater.tick(now)
        for pending in self.main.run_cycle(now):
            if self.hp is not None:
                self.hp.register_running(pending)
            self._record(pending, routed=False)

    def _record(self, pending: PendingTask, routed: bool) -> None:
        # Latency is measured to the *first* placement; re-placements after
        # preemption or machine loss are not counted again.
        if pending.key in self._recorded:
            return
        self._recorded.add(pending.key)
        group = (group_of(pending.suitable_count, self._group_bin)
                 if pending.suitable_count is not None else 25)
        self.recorder.record(
            key=pending.key, submit_time=pending.submit_time,
            latency_us=pending.latency, group=group,
            constrained=pending.task is not None, routed=routed)

    def _terminate(self, key: tuple[int, int]) -> None:
        self.cluster.release(key)
        pending = self._pending_by_key.pop(key, None)
        if pending is not None and pending.scheduled_time is None:
            # Task ended (per trace) before we ever placed it; drop it
            # from the queue lazily by marking it — simplest is to filter.
            try:
                self.main.queue.remove(pending)
            except ValueError:
                pass
