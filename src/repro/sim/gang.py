"""Gang scheduling by constraint group (paper §VI).

"This approach works well with gang scheduling, where tasks in the same
job are grouped by their CO and scheduled together."  A gang is the set
of a collection's tasks sharing one compacted constraint set; the gang
scheduler performs all-or-nothing placement: either every member gets a
machine (capacity-respecting, constraints satisfied) or none is placed
and the gang stays queued.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constraints.compaction import CompactedTask
from .cluster import ClusterState, PendingTask

__all__ = ["Gang", "GangScheduler", "group_into_gangs"]


@dataclass
class Gang:
    """A collection's tasks sharing one constraint set."""

    collection_id: int
    task: CompactedTask | None
    members: list[PendingTask] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def cpu_total(self) -> float:
        return sum(m.cpu for m in self.members)

    @property
    def mem_total(self) -> float:
        return sum(m.mem for m in self.members)


def group_into_gangs(tasks: list[PendingTask]) -> list[Gang]:
    """Partition tasks into gangs by (collection, compacted constraints)."""

    gangs: dict[tuple, Gang] = {}
    for task in tasks:
        key = (task.collection_id, task.task)
        gang = gangs.get(key)
        if gang is None:
            gang = Gang(collection_id=task.collection_id, task=task.task)
            gangs[key] = gang
        gang.members.append(task)
    return list(gangs.values())


class GangScheduler:
    """All-or-nothing placement of whole gangs."""

    def __init__(self, cluster: ClusterState):
        self.cluster = cluster
        self.placed_gangs = 0
        self.rejected_gangs = 0

    def try_place(self, gang: Gang, now: int) -> bool:
        """Place every member or nothing; returns success.

        Members are assigned greedily to eligible machines with capacity,
        tracking capacity consumed by earlier members of the same gang so
        a machine is not double-booked within the atomic attempt.
        """

        if not gang.members:
            return True
        if gang.task is None:
            eligible = self.cluster.park.machine_ids()
        else:
            eligible = self.cluster.park.eligible_machines(gang.task)

        free_cpu = {m: self.cluster.free_cpu(m) for m in eligible}
        free_mem = {m: self.cluster.free_mem(m) for m in eligible}
        plan: list[tuple[PendingTask, object]] = []
        for member in gang.members:
            chosen = None
            for machine in eligible:
                if (free_cpu[machine] >= member.cpu
                        and free_mem[machine] >= member.mem):
                    chosen = machine
                    break
            if chosen is None:
                self.rejected_gangs += 1
                return False
            free_cpu[chosen] -= member.cpu
            free_mem[chosen] -= member.mem
            plan.append((member, chosen))

        for member, machine in plan:
            self.cluster.place(member, machine, now)
        self.placed_gangs += 1
        return True
