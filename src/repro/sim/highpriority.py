"""Task CO Analyzer and High-Priority Scheduler (paper Figure 3).

The paper's deployment schema: a **Task CO Analyzer** sits in front of the
pending job queue, classifies each arriving constrained task with the
(near real-time) CTLM model, and reroutes tasks predicted to fit only a
few nodes to a dedicated **High-Priority Scheduler** that places them
immediately — preempting lower-priority occupants of their scarce
suitable nodes when necessary — "minimizing task scheduling latency by
prioritizing tasks with fewer suitable nodes", while everything else
flows to the main cluster scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constraints.compaction import CompactedTask
from ..datasets.co_vv import COVVEncoder
from ..datasets.registry import FeatureRegistry
from .cluster import ClusterState, PendingTask
from .scheduler import MainScheduler

__all__ = ["TaskCOAnalyzer", "HighPriorityScheduler"]


class TaskCOAnalyzer:
    """Classify arriving tasks by predicted suitable-node group.

    Wraps a trained group classifier (GrowingModel or any object with
    ``predict(X) -> labels``) plus the CO-VV encoder/registry it was
    trained with.  Values unseen at training time simply contribute no
    known columns — prediction degrades gracefully, and
    :attr:`unseen_features` counts how often that happened (the signal
    that the parallel model-update path of Figure 3 should retrain).
    """

    def __init__(self, model, registry: FeatureRegistry,
                 route_threshold: int = 0):
        if route_threshold < 0:
            raise ValueError("route_threshold cannot be negative")
        self.model = model
        self.registry = registry
        self.encoder = COVVEncoder(registry)
        self.route_threshold = route_threshold
        self.predictions: int = 0
        self.routed: int = 0
        self.unseen_features: int = 0

    def _known_width(self) -> int:
        width = getattr(self.model, "features_count", None)
        return self.registry.features_count if width is None else width

    def predict_group(self, task: CompactedTask) -> int:
        """Predicted 26-group index for one compacted task."""

        row = self.encoder.encode_row_dense(task)
        width = self._known_width()
        if row.shape[0] < width:
            row = np.pad(row, (0, width - row.shape[0]))
        elif row.shape[0] > width:
            row = row[:width]
        for spec in task:
            if self.registry.column(spec.attribute) is None:
                self.unseen_features += 1
                break
        self.predictions += 1
        return int(self.model.predict(row.reshape(1, -1))[0])

    def should_route(self, task: CompactedTask) -> tuple[bool, int]:
        """(route to high-priority?, predicted group)."""

        group = self.predict_group(task)
        route = group <= self.route_threshold
        if route:
            self.routed += 1
        return route, group


@dataclass
class _HPStats:
    scheduled: int = 0
    preemptions: int = 0
    deferred: int = 0


class HighPriorityScheduler:
    """Immediate placement path for restrictive tasks.

    Runs at task arrival (not on the main scheduler's cycle), so its
    latency is bounded by ``dispatch_latency`` rather than queueing.  When
    every suitable node is full it evicts the lowest-priority running task
    whose departure makes room — the Kubernetes-preemption analogue the
    paper describes — and hands the victim back to the main queue.
    """

    def __init__(self, cluster: ClusterState, main: MainScheduler,
                 dispatch_latency: int = 50_000, allow_preemption: bool = True,
                 priority_boost: int | None = 12):
        """``priority_boost`` — rerouted tasks are treated as having at
        least this priority when selecting preemption victims (the paper
        reroutes "high-priority tasks to specialized allocation
        strategies"; its forced-migration analogue).  ``None`` keeps the
        task's own priority."""

        self.cluster = cluster
        self.main = main
        self.dispatch_latency = int(dispatch_latency)
        self.allow_preemption = allow_preemption
        self.priority_boost = priority_boost
        self.stats = _HPStats()
        # Running PendingTask objects, registered by the engine so that
        # preemption can requeue the actual task object.
        self._running_tasks: dict[tuple[int, int], PendingTask] = {}

    def schedule(self, pending: PendingTask, now: int) -> bool:
        """Try to place immediately; returns True on success.

        On failure (no suitable node even with preemption) the task is
        deferred to the main queue's head.
        """

        when = now + self.dispatch_latency
        machines = self.cluster.eligible_with_capacity(pending)
        if machines:
            self.cluster.place(pending, machines[0], when)
            self.stats.scheduled += 1
            return True

        if self.allow_preemption:
            victim = self._find_preemption(pending)
            if victim is not None:
                machine_id, victim_key, victim_task = victim
                self.cluster.release(victim_key)
                self.stats.preemptions += 1
                self.cluster.place(pending, machine_id, when)
                self.stats.scheduled += 1
                if victim_task is not None:
                    victim_task.machine_id = None
                    victim_task.scheduled_time = None
                    self.main.requeue_front(victim_task)
                return True

        self.stats.deferred += 1
        self.main.requeue_front(pending)
        return False

    def _find_preemption(self, pending: PendingTask):
        """Lowest-priority running task whose eviction frees a suitable node."""

        hard = self.cluster.hard_constraints(pending)
        if hard is None:
            suitable = set(self.cluster.park.machine_ids())
        else:
            suitable = set(self.cluster.park.eligible_machines(hard))
        effective_priority = pending.priority
        if self.priority_boost is not None:
            effective_priority = max(effective_priority, self.priority_boost)
        best = None
        for key, (machine_id, cpu, mem) in self.cluster._running.items():
            if machine_id not in suitable:
                continue
            task_obj = self._lookup_running_task(key)
            victim_priority = task_obj.priority if task_obj else 0
            if victim_priority >= effective_priority:
                continue
            if (self.cluster.free_cpu(machine_id) + cpu < pending.cpu
                    or self.cluster.free_mem(machine_id) + mem < pending.mem):
                continue
            if best is None or victim_priority < best[3]:
                best = (machine_id, key, task_obj, victim_priority)
        if best is None:
            return None
        return best[0], best[1], best[2]

    def register_running(self, pending: PendingTask) -> None:
        self._running_tasks[pending.key] = pending

    def _lookup_running_task(self, key) -> PendingTask | None:
        return self._running_tasks.get(key)
