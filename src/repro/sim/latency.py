"""Scheduling-latency bookkeeping and summaries.

The Figure 3 experiment's measurement layer: per-task latencies broken
out by *true* restrictiveness (suitable-node group at submit time), so
baseline and enhanced runs can be compared on exactly the population the
paper targets — "tasks with restrictive node-affinity constraints".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.events import MICROS_PER_SECOND

__all__ = ["LatencySample", "LatencyRecorder", "LatencySummary"]


@dataclass(frozen=True, slots=True)
class LatencySample:
    """One scheduled task's latency record."""

    key: tuple[int, int]
    submit_time: int
    latency_us: int
    group: int            # true group from suitable-node count at submit
    constrained: bool
    routed_high_priority: bool


@dataclass
class LatencySummary:
    """Aggregate latency statistics for one task population."""

    count: int
    mean_s: float
    median_s: float
    p95_s: float
    max_s: float

    @classmethod
    def from_micros(cls, latencies_us) -> "LatencySummary":
        arr = np.asarray(list(latencies_us), dtype=np.float64)
        if arr.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        arr_s = arr / MICROS_PER_SECOND
        return cls(int(arr.size), float(arr_s.mean()),
                   float(np.median(arr_s)),
                   float(np.percentile(arr_s, 95)), float(arr_s.max()))

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean_s:.2f}s "
                f"median={self.median_s:.2f}s p95={self.p95_s:.2f}s "
                f"max={self.max_s:.2f}s")


class LatencyRecorder:
    """Collects per-task samples and produces population summaries."""

    def __init__(self, restrictive_group_max: int = 0):
        self.restrictive_group_max = restrictive_group_max
        self.samples: list[LatencySample] = []
        self.unscheduled: int = 0

    def record(self, key, submit_time: int, latency_us: int, group: int,
               constrained: bool, routed: bool) -> None:
        self.samples.append(LatencySample(
            key=key, submit_time=submit_time, latency_us=latency_us,
            group=group, constrained=constrained,
            routed_high_priority=routed))

    def record_unscheduled(self) -> None:
        self.unscheduled += 1

    # -- views --------------------------------------------------------------
    def _subset(self, predicate) -> list[int]:
        return [s.latency_us for s in self.samples if predicate(s)]

    def summary_all(self) -> LatencySummary:
        return LatencySummary.from_micros(s.latency_us for s in self.samples)

    def summary_restrictive(self) -> LatencySummary:
        """Tasks whose true group ≤ the restrictive threshold (Group 0)."""

        return LatencySummary.from_micros(self._subset(
            lambda s: s.constrained and s.group <= self.restrictive_group_max))

    def summary_constrained(self) -> LatencySummary:
        return LatencySummary.from_micros(self._subset(lambda s: s.constrained))

    def summary_unconstrained(self) -> LatencySummary:
        return LatencySummary.from_micros(self._subset(lambda s: not s.constrained))

    def summary_by_group(self) -> dict[int, LatencySummary]:
        groups: dict[int, list[int]] = {}
        for s in self.samples:
            if s.constrained:
                groups.setdefault(s.group, []).append(s.latency_us)
        return {g: LatencySummary.from_micros(v)
                for g, v in sorted(groups.items())}
