"""Out-of-band model updates during scheduling (paper Figure 3).

"Additionally, updating ML model runs in parallel and won't block or slow
down the main cluster scheduler."

:class:`OnlineModelUpdater` implements that loop inside the simulation's
timebase: during replay it accumulates labelled observations (task CO
vector → live suitable-node group), watches the feature registry for
growth, and when enough new vocabulary has appeared it launches a
retraining job that *completes after a simulated delay* — the analyzer
keeps serving the old model until the new one is published, exactly like
an asynchronous side-car trainer.  Statistics expose how stale the
serving model was at each publication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constraints.compaction import CompactedTask
from ..core.growing import GrowingModel
from ..datasets.co_vv import COVVEncoder
from ..datasets.dataset import DatasetData
from ..datasets.grouping import group_of
from ..datasets.registry import FeatureRegistry
from ..errors import TrainingFailedError
from ..trace.events import MICROS_PER_MINUTE

__all__ = ["RetrainPolicy", "UpdateRecord", "OnlineModelUpdater"]


@dataclass(frozen=True, slots=True)
class RetrainPolicy:
    """When is an out-of-band retrain due?

    Shared between the simulated side-car (:class:`OnlineModelUpdater`)
    and the real-time serving trainer (``repro.serve.BackgroundTrainer``):
    retrain once at least ``growth_threshold`` new feature columns have
    appeared since the last publication *and* ``min_observations``
    labelled observations are buffered.

    With ``drift_threshold`` set, a measured distribution shift is a
    second trigger: once the caller-supplied ``drift`` signal (the
    serving trainer passes the total-variation distance between the
    live window's label histogram and the last publish's) reaches the
    threshold, retraining fires even with zero vocabulary growth —
    the workload changed under a vocabulary the model already knows.
    ``None`` (default) keeps the trigger growth-only.
    """

    growth_threshold: int = 8
    min_observations: int = 200
    drift_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.growth_threshold < 1:
            raise ValueError("growth_threshold must be >= 1")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if (self.drift_threshold is not None
                and not 0.0 < self.drift_threshold <= 1.0):
            raise ValueError("drift_threshold must be in (0, 1] (or None)")

    def due(self, n_observations: int, features_now: int,
            features_at_publish: int, drift: float = 0.0) -> bool:
        """True when a retrain should be launched."""

        if n_observations < self.min_observations:
            return False
        if features_now - features_at_publish >= self.growth_threshold:
            return True
        return (self.drift_threshold is not None
                and drift >= self.drift_threshold)


@dataclass(frozen=True)
class UpdateRecord:
    """One completed out-of-band retraining."""

    triggered_at: int
    published_at: int
    features_before: int
    features_after: int
    n_observations: int
    epochs: int
    accuracy: float


@dataclass
class _PendingUpdate:
    triggered_at: int
    ready_at: int


class OnlineModelUpdater:
    """Accumulate observations; retrain the growing model asynchronously.

    Parameters
    ----------
    model / registry:
        The serving :class:`GrowingModel` and the CO-VV registry it (and
        its analyzer) encode against.  The registry is *extended here*
        as new constraint vocabulary arrives — mirroring the AGOCS side
        of Figure 3.
    growth_threshold:
        Launch a retrain once this many new feature columns accumulated.
    retrain_delay_us:
        Simulated wall time between launching the side-car training job
        and the updated model being published.
    min_observations:
        Do not retrain before this many labelled observations exist.
    """

    def __init__(self, model: GrowingModel, registry: FeatureRegistry,
                 growth_threshold: int = 8,
                 retrain_delay_us: int = 2 * MICROS_PER_MINUTE,
                 min_observations: int = 200, max_buffer: int = 50_000,
                 rng: np.random.Generator | None = None):
        self.policy = RetrainPolicy(growth_threshold=growth_threshold,
                                    min_observations=min_observations)
        self.model = model
        self.registry = registry
        self.encoder = COVVEncoder(registry)
        self.retrain_delay_us = int(retrain_delay_us)
        self.max_buffer = max_buffer
        self.rng = rng or np.random.default_rng()

        self._tasks: list[CompactedTask] = []
        self._labels: list[int] = []
        self._width_at_last_publish = (model.features_count
                                       or registry.features_count)
        self._pending: _PendingUpdate | None = None
        self.updates: list[UpdateRecord] = []
        self.failed_updates: int = 0

    # ------------------------------------------------------------------
    @property
    def growth_threshold(self) -> int:
        return self.policy.growth_threshold

    @property
    def min_observations(self) -> int:
        return self.policy.min_observations

    @property
    def pending(self) -> bool:
        return self._pending is not None

    @property
    def n_observations(self) -> int:
        return len(self._tasks)

    def observe(self, task: CompactedTask, suitable_count: int,
                group_bin: int, time: int) -> None:
        """Record a labelled observation and maybe trigger a retrain."""

        self.registry.observe_task(task)
        self._tasks.append(task)
        self._labels.append(group_of(suitable_count, group_bin))
        if len(self._tasks) > self.max_buffer:
            # Keep the freshest observations (sliding window).
            self._tasks = self._tasks[-self.max_buffer:]
            self._labels = self._labels[-self.max_buffer:]
        self._maybe_trigger(time)

    def _maybe_trigger(self, time: int) -> None:
        if self._pending is not None:
            return
        if not self.policy.due(len(self._tasks), self.registry.features_count,
                               self._width_at_last_publish):
            return
        self._pending = _PendingUpdate(
            triggered_at=time, ready_at=time + self.retrain_delay_us)

    def tick(self, time: int) -> UpdateRecord | None:
        """Advance the simulated side-car; publish a finished update.

        Call this from the engine's cycle loop.  Returns the publication
        record when an update lands, else None.  The serving model object
        is mutated in place at publication (the analyzer sees it on its
        next prediction), never before — nothing blocks.
        """

        if self._pending is None or time < self._pending.ready_at:
            return None
        pending, self._pending = self._pending, None

        features_before = self._width_at_last_publish
        X = self.encoder.encode_rows(self._tasks)
        y = np.asarray(self._labels, dtype=np.int64)
        if X.shape[0] < 8 or len(np.unique(y)) < 2:
            return None
        dataset = DatasetData(X, y, batch_size=self.model.config.batch_size,
                              rng=self.rng)
        try:
            outcome = self.model.fit_step(dataset)
        except TrainingFailedError:
            self.failed_updates += 1
            return None
        self._width_at_last_publish = self.registry.features_count
        record = UpdateRecord(
            triggered_at=pending.triggered_at, published_at=time,
            features_before=features_before,
            features_after=self.registry.features_count,
            n_observations=X.shape[0], epochs=outcome.epochs,
            accuracy=outcome.accuracy)
        self.updates.append(record)
        return record
