"""The main cluster scheduler.

A deliberately conventional queue scheduler in the Kubernetes/Borg mould
(paper §II.A): a single pending queue ordered by (priority, submit time),
scanned every scheduling cycle with a bounded per-cycle budget, placing
tasks best-fit on eligible machines.  Its weakness is precisely the one
the paper targets — tasks with restrictive node-affinity constraints wait
in the same queue as everyone else, suffer head-of-line scanning, and
find their one suitable node occupied (Kubernetes "preemption ... may
block scheduling if no node satisfies affinity rules").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .cluster import ClusterState, PendingTask

__all__ = ["SchedulerStats", "MainScheduler"]


@dataclass
class SchedulerStats:
    """Counters one scheduler accumulates over a run."""

    scheduled: int = 0
    scan_attempts: int = 0
    failed_scans: int = 0
    cycles: int = 0


class MainScheduler:
    """Priority-FIFO queue with bounded scan budget and best-fit placement.

    Parameters
    ----------
    cluster:
        Shared cluster state.
    scan_budget:
        Queue entries examined per cycle — the scheduler's throughput
        limit; tasks beyond it wait for the next cycle (queueing delay).
    best_fit:
        Choose the eligible machine with the least free CPU after
        placement (reduces fragmentation, as Borg's hybrid model does);
        otherwise first-fit.
    """

    def __init__(self, cluster: ClusterState, scan_budget: int = 64,
                 best_fit: bool = True):
        if scan_budget <= 0:
            raise ValueError("scan_budget must be positive")
        self.cluster = cluster
        self.scan_budget = scan_budget
        self.best_fit = best_fit
        self.queue: deque[PendingTask] = deque()
        self.stats = SchedulerStats()

    def submit(self, pending: PendingTask) -> None:
        """Enqueue a task, keeping the queue priority-ordered (stable)."""

        # Priority-ordered insert: higher priority toward the head;
        # equal priorities keep submission order (FIFO).
        if not self.queue or pending.priority <= self.queue[-1].priority:
            self.queue.append(pending)
            return
        items = list(self.queue)
        for i, item in enumerate(items):
            if item.priority < pending.priority:
                items.insert(i, pending)
                break
        self.queue = deque(items)

    def requeue_front(self, pending: PendingTask) -> None:
        """Put an evicted task back at the head of the queue."""

        self.queue.appendleft(pending)

    def run_cycle(self, now: int) -> list[PendingTask]:
        """One scheduling pass; returns the tasks placed this cycle."""

        self.stats.cycles += 1
        placed: list[PendingTask] = []
        retries: list[PendingTask] = []
        scans = 0
        while self.queue and scans < self.scan_budget:
            pending = self.queue.popleft()
            scans += 1
            self.stats.scan_attempts += 1
            machine = self._choose_machine(pending)
            if machine is None:
                self.stats.failed_scans += 1
                retries.append(pending)
                continue
            self.cluster.place(pending, machine, now)
            self.stats.scheduled += 1
            placed.append(pending)
        # Failed tasks keep their queue position ahead of newer arrivals.
        for pending in reversed(retries):
            self.queue.appendleft(pending)
        return placed

    def _choose_machine(self, pending: PendingTask):
        candidates = self.cluster.eligible_with_capacity(pending)
        if not candidates:
            return None
        if not self.best_fit:
            return candidates[0]
        # Rank by soft-affinity preference first (Kubernetes'
        # preferred-affinity semantics, §VI extension), then best-fit.
        free = self.cluster.free_cpu
        preference = self.cluster.preference_of
        return min(candidates,
                   key=lambda mid: (-preference(pending, mid),
                                    free(mid) - pending.cpu, str(mid)))

    @property
    def queue_depth(self) -> int:
        return len(self.queue)
