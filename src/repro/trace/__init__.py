"""``repro.trace`` — Google-Cluster-Data-style trace substrate.

Event model, 2011 CSV / 2019 JSON codecs, per-cell synthetic generation,
anomaly injection + AGOCS auto-correction, and on-disk archives.
"""

from .anomalies import (AnomalyReport, CorrectionReport, autocorrect,
                        inject_anomalies)
from .archive import CellArchive
from .events import (MICROS_PER_DAY, MICROS_PER_HOUR, MICROS_PER_MINUTE,
                     MICROS_PER_SECOND, CellTrace, CollectionEvent,
                     CollectionEventKind, MachineAttributeEvent, MachineEvent,
                     MachineEventKind, TaskEvent, TaskEventKind,
                     format_sim_time, sim_time)
from .format2011 import read_2011, write_2011
from .format2019 import read_2019, write_2019
from .profiles import (CELL_2011, CELL_2019A, CELL_2019C, CELL_2019D,
                       PROFILES, AttributeProfile, Band, CellProfile,
                       GrowthStep, get_profile)
from .synthetic import SyntheticCell, generate_cell

__all__ = [
    "CellTrace", "MachineEvent", "MachineAttributeEvent", "CollectionEvent",
    "TaskEvent", "MachineEventKind", "TaskEventKind", "CollectionEventKind",
    "sim_time", "format_sim_time",
    "MICROS_PER_SECOND", "MICROS_PER_MINUTE", "MICROS_PER_HOUR",
    "MICROS_PER_DAY",
    "read_2011", "write_2011", "read_2019", "write_2019",
    "Band", "AttributeProfile", "GrowthStep", "CellProfile", "PROFILES",
    "CELL_2011", "CELL_2019A", "CELL_2019C", "CELL_2019D", "get_profile",
    "SyntheticCell", "generate_cell",
    "inject_anomalies", "autocorrect", "AnomalyReport", "CorrectionReport",
    "CellArchive",
]
