"""Trace-anomaly injection and AGOCS-style auto-correction.

The paper found the clusterdata-2019 traces "presented anomalies,
including (i) inaccurate event timings, where task updates occurred
before terminations ... and (ii) tasks missing eviction or failure
events, complicating task removal.  To address this, AGOCS was modified
to auto-correct event timings (e.g., offsetting updates after creation)
and synchronize task marker removal with collection events, ensuring
terminated collections deleted associated task markers."

:func:`inject_anomalies` reproduces both defect classes on a clean
synthetic trace; :func:`autocorrect` implements the AGOCS fixes and
reports what it changed, so the injection→correction round-trip is a
directly testable invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import (CellTrace, CollectionEvent, CollectionEventKind,
                     TaskEvent, TaskEventKind)

__all__ = ["AnomalyReport", "CorrectionReport", "inject_anomalies",
           "autocorrect"]


@dataclass
class AnomalyReport:
    """What :func:`inject_anomalies` did to the trace."""

    misordered_updates: int = 0
    dropped_terminations: int = 0
    affected_tasks: set = field(default_factory=set)


@dataclass
class CorrectionReport:
    """What :func:`autocorrect` repaired."""

    updates_offset: int = 0
    terminations_synthesized: int = 0


def inject_anomalies(trace: CellTrace, rng: np.random.Generator,
                     update_rate: float = 0.02,
                     missing_termination_rate: float = 0.02
                     ) -> tuple[CellTrace, AnomalyReport]:
    """Return a defective copy of ``trace`` plus a report.

    ``update_rate`` — fraction of tasks that gain an UPDATE event
    timestamped *before* their SUBMIT (the "updates before creation"
    timing defect).  ``missing_termination_rate`` — fraction of tasks whose
    termination event is silently dropped.
    """

    if not 0 <= update_rate <= 1 or not 0 <= missing_termination_rate <= 1:
        raise ValueError("anomaly rates must lie in [0, 1]")
    report = AnomalyReport()
    out = CellTrace(trace.name, trace.format)

    # First pass: choose victim tasks from the SUBMIT population.
    submits = [e for e in trace.events_of(TaskEvent)
               if e.kind is TaskEventKind.SUBMIT]
    update_victims = {e.task_key for e in submits
                      if rng.random() < update_rate}
    drop_victims = {e.task_key for e in submits
                    if rng.random() < missing_termination_rate}

    for event in trace:
        if isinstance(event, TaskEvent):
            if (event.kind.is_termination and event.task_key in drop_victims):
                report.dropped_terminations += 1
                report.affected_tasks.add(event.task_key)
                continue
            if (event.kind is TaskEventKind.SUBMIT
                    and event.task_key in update_victims):
                out.append(event)
                # The defective update lands before the creation time.
                early = max(0, event.time - int(rng.integers(1, 10_000_000)))
                out.append(TaskEvent(
                    early, event.collection_id, event.task_index,
                    TaskEventKind.UPDATE_PENDING,
                    cpu_request=event.cpu_request,
                    mem_request=event.mem_request,
                    priority=event.priority))
                report.misordered_updates += 1
                report.affected_tasks.add(event.task_key)
                continue
        out.append(event)
    out.sort()
    return out, report


def autocorrect(trace: CellTrace) -> tuple[CellTrace, CorrectionReport]:
    """Apply the AGOCS anomaly fixes; returns (clean trace, report).

    * Update events timestamped before their task's SUBMIT are offset to
      one microsecond after creation.
    * Tasks that never terminate but whose collection does get a
      synthesized KILL at the collection's termination time ("terminated
      collections deleted associated task markers").
    """

    report = CorrectionReport()

    submit_time: dict[tuple[int, int], int] = {}
    terminated: set[tuple[int, int]] = set()
    collection_of: dict[tuple[int, int], int] = {}
    collection_end: dict[int, int] = {}
    pending_updates: list[TaskEvent] = []

    for event in trace:
        if isinstance(event, TaskEvent):
            key = event.task_key
            collection_of.setdefault(key, event.collection_id)
            if event.kind is TaskEventKind.SUBMIT:
                # Keep the earliest submit (resubmissions reuse the key).
                submit_time.setdefault(key, event.time)
            elif event.kind.is_termination:
                terminated.add(key)
        elif isinstance(event, CollectionEvent):
            if event.kind is not CollectionEventKind.SUBMIT:
                collection_end[event.collection_id] = event.time

    out = CellTrace(trace.name, trace.format)
    for event in trace:
        if (isinstance(event, TaskEvent) and event.kind.is_update):
            created = submit_time.get(event.task_key)
            if created is not None and event.time < created:
                event = TaskEvent(
                    created + 1, event.collection_id, event.task_index,
                    event.kind, machine_id=event.machine_id,
                    cpu_request=event.cpu_request,
                    mem_request=event.mem_request, priority=event.priority,
                    constraints=event.constraints)
                report.updates_offset += 1
        out.append(event)

    # Synchronize task marker removal with collection termination.
    for key, cid in collection_of.items():
        if key in terminated:
            continue
        end = collection_end.get(cid)
        if end is None:
            continue
        out.append(TaskEvent(end, cid, key[1], TaskEventKind.KILL))
        report.terminations_synthesized += 1

    out.sort()
    return out, report
