"""Cell-archive persistence: write/read traces in their native format.

A :class:`CellArchive` is a directory holding one cell trace in the format
matching its generation (2011 → CSV tables, 2019 → JSON-lines) plus a
small JSON manifest with the metadata benches need (cell size, group bin,
growth-step times), so synthetic cells can be generated once and replayed
many times.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TraceFormatError
from .events import CellTrace
from .format2011 import read_2011, write_2011
from .format2019 import read_2019, write_2019
from .profiles import get_profile
from .synthetic import SyntheticCell

__all__ = ["CellArchive"]

_MANIFEST = "manifest.json"
_TRACE_2019 = "trace.jsonl"
_TRACE_2011 = "tables"


class CellArchive:
    """One cell trace on disk, with format auto-detection."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    # -- writing ---------------------------------------------------------
    def save(self, cell: SyntheticCell) -> Path:
        """Persist a synthetic cell (trace + manifest)."""

        self.directory.mkdir(parents=True, exist_ok=True)
        trace = cell.trace
        if trace.format == "2011":
            write_2011(trace, self.directory / _TRACE_2011)
        else:
            write_2019(trace, self.directory / _TRACE_2019)
        manifest = {
            "name": cell.profile.name,
            "format": trace.format,
            "scale": cell.scale,
            "seed": cell.seed,
            "n_machines": cell.n_machines,
            "group_bin": cell.group_bin,
            "step_times": list(cell.step_times),
            "machine_ids": list(cell.machine_ids),
        }
        with open(self.directory / _MANIFEST, "w") as fh:
            json.dump(manifest, fh, indent=1)
        return self.directory

    def save_trace(self, trace: CellTrace) -> Path:
        """Persist a bare trace (no synthetic metadata)."""

        self.directory.mkdir(parents=True, exist_ok=True)
        if trace.format == "2011":
            write_2011(trace, self.directory / _TRACE_2011)
        else:
            write_2019(trace, self.directory / _TRACE_2019)
        manifest = {"name": trace.name, "format": trace.format}
        with open(self.directory / _MANIFEST, "w") as fh:
            json.dump(manifest, fh, indent=1)
        return self.directory

    # -- reading ---------------------------------------------------------
    def manifest(self) -> dict:
        path = self.directory / _MANIFEST
        if not path.exists():
            raise TraceFormatError(f"no manifest in {self.directory}")
        with open(path) as fh:
            return json.load(fh)

    def load_trace(self) -> CellTrace:
        manifest = self.manifest()
        if manifest["format"] == "2011":
            return read_2011(self.directory / _TRACE_2011,
                             name=manifest["name"])
        return read_2019(self.directory / _TRACE_2019, name=manifest["name"])

    def load(self) -> SyntheticCell:
        """Load a full synthetic cell (requires a synthetic manifest)."""

        manifest = self.manifest()
        required = {"scale", "seed", "n_machines", "group_bin", "step_times"}
        if not required <= manifest.keys():
            raise TraceFormatError(
                f"{self.directory} was not saved from a SyntheticCell")
        return SyntheticCell(
            profile=get_profile(manifest["name"]),
            scale=manifest["scale"], seed=manifest["seed"],
            trace=self.load_trace(),
            n_machines=manifest["n_machines"],
            group_bin=manifest["group_bin"],
            step_times=tuple(manifest["step_times"]),
            machine_ids=tuple(manifest.get("machine_ids", ())))
