"""Event model for Google-Cluster-Data-style workload traces.

Two generations of the GCD archive are modelled (paper Section III.A):

* **clusterdata-2011** — CSV tables: machine events, machine attributes,
  task events, task constraints (4 constraint operators).
* **clusterdata-2019** — JSON records: collection & instance events with
  alloc-set/parent metadata and 8 constraint operators.

The in-memory representation is a single union of typed event records,
each carrying a microsecond timestamp.  A :class:`CellTrace` holds the
merged, time-sorted stream for one computing cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator

from ..constraints.operators import Constraint

__all__ = [
    "MICROS_PER_SECOND", "MICROS_PER_MINUTE", "MICROS_PER_HOUR",
    "MICROS_PER_DAY", "sim_time", "format_sim_time",
    "MachineEventKind", "TaskEventKind", "CollectionEventKind",
    "MachineEvent", "MachineAttributeEvent", "CollectionEvent", "TaskEvent",
    "TraceEvent", "CellTrace",
]

MICROS_PER_SECOND = 1_000_000
MICROS_PER_MINUTE = 60 * MICROS_PER_SECOND
MICROS_PER_HOUR = 60 * MICROS_PER_MINUTE
MICROS_PER_DAY = 24 * MICROS_PER_HOUR


def sim_time(day: int = 0, hour: int = 0, minute: int = 0,
             second: int = 0, micros: int = 0) -> int:
    """Build a trace timestamp from a (day, hour, minute) tuple.

    Table XI labels feature-growth steps by simulation day/hour/minute;
    this is the inverse of :func:`format_sim_time`.
    """

    return (day * MICROS_PER_DAY + hour * MICROS_PER_HOUR
            + minute * MICROS_PER_MINUTE + second * MICROS_PER_SECOND + micros)


def format_sim_time(timestamp: int) -> str:
    """Render a timestamp as ``d HH:MM`` (Table XI step labels)."""

    day, rem = divmod(timestamp, MICROS_PER_DAY)
    hour, rem = divmod(rem, MICROS_PER_HOUR)
    minute = rem // MICROS_PER_MINUTE
    return f"{day} {hour:02d}:{minute:02d}"


class MachineEventKind(IntEnum):
    """GCD machine event types."""

    ADD = 0
    REMOVE = 1
    UPDATE = 2


class TaskEventKind(IntEnum):
    """GCD task/instance event types (2011 numbering, reused by 2019)."""

    SUBMIT = 0
    SCHEDULE = 1
    EVICT = 2
    FAIL = 3
    FINISH = 4
    KILL = 5
    LOST = 6
    UPDATE_PENDING = 7
    UPDATE_RUNNING = 8

    @property
    def is_termination(self) -> bool:
        return self in (TaskEventKind.EVICT, TaskEventKind.FAIL,
                        TaskEventKind.FINISH, TaskEventKind.KILL,
                        TaskEventKind.LOST)

    @property
    def is_update(self) -> bool:
        return self in (TaskEventKind.UPDATE_PENDING,
                        TaskEventKind.UPDATE_RUNNING)


class CollectionEventKind(IntEnum):
    """Collection (job/alloc-set) lifecycle events."""

    SUBMIT = 0
    FINISH = 4
    KILL = 5


@dataclass(frozen=True, slots=True)
class MachineEvent:
    """A machine joining, leaving, or changing capacity."""

    time: int
    machine_id: int
    kind: MachineEventKind
    cpu: float = 0.0
    mem: float = 0.0
    platform: str = ""


@dataclass(frozen=True, slots=True)
class MachineAttributeEvent:
    """A machine attribute being set or deleted."""

    time: int
    machine_id: int
    attribute: str
    value: str | None = None
    deleted: bool = False


@dataclass(frozen=True, slots=True)
class CollectionEvent:
    """A collection (2011 'job' / 2019 'collection') lifecycle event."""

    time: int
    collection_id: int
    kind: CollectionEventKind
    user: str = ""
    priority: int = 0
    scheduling_class: int = 0
    parent_id: int | None = None  # 2019 parent-child dependency
    is_alloc_set: bool = False    # 2019 alloc sets


@dataclass(frozen=True, slots=True)
class TaskEvent:
    """A task (2011) / instance (2019) lifecycle event.

    Constraints travel on the SUBMIT event (the GCD constraint table is
    keyed by job+task and joined at parse time).
    """

    time: int
    collection_id: int
    task_index: int
    kind: TaskEventKind
    machine_id: int | None = None
    cpu_request: float = 0.0
    mem_request: float = 0.0
    priority: int = 0
    constraints: tuple[Constraint, ...] = ()

    @property
    def task_key(self) -> tuple[int, int]:
        return (self.collection_id, self.task_index)


TraceEvent = (MachineEvent | MachineAttributeEvent | CollectionEvent
              | TaskEvent)

# Tie-break ranks: at equal timestamps machines materialize before
# attributes, attributes before collections, collections before tasks.
_KIND_RANK = {MachineEvent: 0, MachineAttributeEvent: 1,
              CollectionEvent: 2, TaskEvent: 3}


def _sort_key(item: tuple[int, TraceEvent]) -> tuple[int, int, int]:
    seq, event = item
    return (event.time, _KIND_RANK[type(event)], seq)


class CellTrace:
    """The full, time-ordered event stream of one computing cell."""

    def __init__(self, name: str = "cell", format: str = "2019",
                 events: Iterable[TraceEvent] = ()):
        if format not in ("2011", "2019"):
            raise ValueError("trace format must be '2011' or '2019'")
        self.name = name
        self.format = format
        self._events: list[tuple[int, TraceEvent]] = []
        self._seq = 0
        self._sorted = True
        for event in events:
            self.append(event)

    # -- construction --------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        """Add an event; insertion order is preserved among equal keys."""

        item = (self._seq, event)
        self._seq += 1
        if self._events and _sort_key(item) < _sort_key(self._events[-1]):
            self._sorted = False
        self._events.append(item)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    def sort(self) -> None:
        """Time-sort in place ("the data was ... sorted by timestamp")."""

        if not self._sorted:
            self._events.sort(key=_sort_key)
            self._sorted = True

    # -- access ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        self.sort()
        return (event for _seq, event in self._events)

    def events_of(self, event_type) -> Iterator[TraceEvent]:
        """All events of one record type, in time order."""

        return (e for e in self if isinstance(e, event_type))

    def window(self, start: int, end: int) -> Iterator[TraceEvent]:
        """Events with ``start <= time < end``."""

        return (e for e in self if start <= e.time < end)

    @property
    def span(self) -> tuple[int, int]:
        """(first, last) event timestamps; (0, 0) when empty."""

        if not self._events:
            return (0, 0)
        self.sort()
        return (self._events[0][1].time, self._events[-1][1].time)

    def counts(self) -> dict[str, int]:
        """Event-type histogram, for trace summaries."""

        out: dict[str, int] = {}
        for event in self:
            key = type(event).__name__
            out[key] = out.get(key, 0) + 1
        return out

    def copy(self) -> "CellTrace":
        clone = CellTrace(self.name, self.format)
        clone.extend(event for event in self)
        return clone
