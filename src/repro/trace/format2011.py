"""clusterdata-2011 CSV codec.

The 2011 GCD archive ships gzipped CSV tables; this codec reads/writes the
four tables AGOCS consumes, using the archive's column orders:

* ``machine_events.csv``     — time, machine_id, event_type, platform, cpu, mem
* ``machine_attributes.csv`` — time, machine_id, name, value, deleted
* ``task_events.csv``        — time, job_id, task_index, event_type,
  machine_id, priority, cpu_request, mem_request
* ``task_constraints.csv``   — time, job_id, task_index, operator, name, value

Only the 2011 operator subset (codes 0–3) is legal in this format;
:class:`~repro.errors.TraceFormatError` is raised otherwise.  Constraint
rows are joined onto their task's SUBMIT event at read time, mirroring
the AGOCS pre-processing step.

Join key and the identical-timestamp tie-break: constraint rows join on
``(time, job, task_index)`` — the full key, not just ``(job,
task_index)``, so a *resubmitted* task (same job/index at a later
timestamp) keeps each submission's own constraint set.  When several
SUBMITs of one task share a single timestamp the format is genuinely
ambiguous (their rows pool under one key with no delimiter); the reader
then attaches the pooled rows to every co-timestamped SUBMIT of that
key.  Real GCD traces order a task's lifecycle events strictly in time,
so the pooled case never occurs in archive data.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..constraints.operators import Constraint, ConstraintOperator
from ..errors import TraceFormatError
from .events import (CellTrace, CollectionEvent, CollectionEventKind,
                     MachineAttributeEvent, MachineEvent, MachineEventKind,
                     TaskEvent, TaskEventKind)

__all__ = ["write_2011", "read_2011", "FILES_2011"]

FILES_2011 = ("machine_events.csv", "machine_attributes.csv",
              "task_events.csv", "task_constraints.csv",
              "collection_events.csv")

_MAX_2011_OPERATOR = 3


def write_2011(trace: CellTrace, directory: str | Path) -> Path:
    """Serialize a trace to a 2011-format directory; returns the path."""

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "machine_events.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        for e in trace.events_of(MachineEvent):
            writer.writerow([e.time, e.machine_id, int(e.kind), e.platform,
                             f"{e.cpu:.6f}", f"{e.mem:.6f}"])

    with open(directory / "machine_attributes.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        for e in trace.events_of(MachineAttributeEvent):
            writer.writerow([e.time, e.machine_id, e.attribute,
                             "" if e.value is None else e.value,
                             1 if e.deleted else 0])

    with open(directory / "collection_events.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        for e in trace.events_of(CollectionEvent):
            writer.writerow([e.time, e.collection_id, int(e.kind), e.user,
                             e.priority, e.scheduling_class])

    with open(directory / "task_events.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        for e in trace.events_of(TaskEvent):
            writer.writerow([e.time, e.collection_id, e.task_index,
                             int(e.kind),
                             "" if e.machine_id is None else e.machine_id,
                             e.priority, f"{e.cpu_request:.6f}",
                             f"{e.mem_request:.6f}"])

    with open(directory / "task_constraints.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        for e in trace.events_of(TaskEvent):
            if e.kind is not TaskEventKind.SUBMIT:
                continue
            for c in e.constraints:
                if int(c.op) > _MAX_2011_OPERATOR:
                    raise TraceFormatError(
                        f"operator {c.op.name} is not part of the 2011 "
                        f"format (task {e.task_key})")
                writer.writerow([e.time, e.collection_id, e.task_index,
                                 int(c.op), c.attribute,
                                 "" if c.value is None else c.value])
    return directory


def _parse_int(text: str, where: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise TraceFormatError(f"bad integer {text!r} in {where}") from None


def _parse_float(text: str, where: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise TraceFormatError(f"bad float {text!r} in {where}") from None


def read_2011(directory: str | Path, name: str | None = None) -> CellTrace:
    """Parse a 2011-format directory back into a time-sorted CellTrace."""

    directory = Path(directory)
    if not directory.is_dir():
        raise TraceFormatError(f"{directory} is not a directory")
    trace = CellTrace(name or directory.name, format="2011")

    # Constraint rows, keyed by (time, job, task_index) so resubmits of
    # one task keep their own constraint sets; joined onto SUBMITs
    # below (see the module docstring for the identical-timestamp
    # tie-break).
    constraints: dict[tuple[int, int, int], list[Constraint]] = {}
    path = directory / "task_constraints.csv"
    if path.exists():
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row:
                    continue
                time, job, idx, op_code, attr, value = row
                op_num = _parse_int(op_code, "task_constraints")
                if op_num > _MAX_2011_OPERATOR:
                    raise TraceFormatError(
                        f"operator code {op_num} invalid for 2011 traces")
                key = (_parse_int(time, "task_constraints"),
                       _parse_int(job, "task_constraints"),
                       _parse_int(idx, "task_constraints"))
                constraints.setdefault(key, []).append(Constraint(
                    attribute=attr, op=ConstraintOperator(op_num),
                    value=value if value != "" else None))

    path = directory / "machine_events.csv"
    if path.exists():
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row:
                    continue
                time, mid, kind, platform, cpu, mem = row
                trace.append(MachineEvent(
                    time=_parse_int(time, "machine_events"),
                    machine_id=_parse_int(mid, "machine_events"),
                    kind=MachineEventKind(_parse_int(kind, "machine_events")),
                    platform=platform,
                    cpu=_parse_float(cpu, "machine_events"),
                    mem=_parse_float(mem, "machine_events")))

    path = directory / "machine_attributes.csv"
    if path.exists():
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row:
                    continue
                time, mid, attr, value, deleted = row
                trace.append(MachineAttributeEvent(
                    time=_parse_int(time, "machine_attributes"),
                    machine_id=_parse_int(mid, "machine_attributes"),
                    attribute=attr,
                    value=value if value != "" else None,
                    deleted=deleted == "1"))

    path = directory / "collection_events.csv"
    if path.exists():
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row:
                    continue
                time, cid, kind, user, priority, sched = row
                trace.append(CollectionEvent(
                    time=_parse_int(time, "collection_events"),
                    collection_id=_parse_int(cid, "collection_events"),
                    kind=CollectionEventKind(_parse_int(kind, "collection_events")),
                    user=user,
                    priority=_parse_int(priority, "collection_events"),
                    scheduling_class=_parse_int(sched, "collection_events")))

    path = directory / "task_events.csv"
    if path.exists():
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row:
                    continue
                time, job, idx, kind, mid, priority, cpu, mem = row
                event_time = _parse_int(time, "task_events")
                key = (_parse_int(job, "task_events"),
                       _parse_int(idx, "task_events"))
                event_kind = TaskEventKind(_parse_int(kind, "task_events"))
                joined = (tuple(constraints.get((event_time, *key), ()))
                          if event_kind is TaskEventKind.SUBMIT else ())
                trace.append(TaskEvent(
                    time=event_time,
                    collection_id=key[0], task_index=key[1],
                    kind=event_kind,
                    machine_id=_parse_int(mid, "task_events") if mid else None,
                    priority=_parse_int(priority, "task_events"),
                    cpu_request=_parse_float(cpu, "task_events"),
                    mem_request=_parse_float(mem, "task_events"),
                    constraints=joined))

    trace.sort()
    return trace
