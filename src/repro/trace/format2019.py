"""clusterdata-2019 JSON codec.

The May-2019 GCD archive is distributed as BigQuery JSON; AGOCS was
"adapted to the clusterdata-2019 JSON format" (paper Section III.A).
This codec serializes a trace as JSON-lines, one record per event::

    {"type": "machine_event", "time": ..., "machine_id": ..., ...}
    {"type": "machine_attribute", ...}
    {"type": "collection_event", ..., "parent_id": ..., "alloc_set": ...}
    {"type": "instance_event", ..., "constraints": [{"name", "op", "value"}]}

All eight constraint operators are legal.  Records may appear in any
order on disk; :func:`read_2019` sorts by timestamp, reproducing the
paper's "downloaded, sorted by timestamp" pre-processing.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..constraints.operators import Constraint, ConstraintOperator
from ..errors import TraceFormatError
from .events import (CellTrace, CollectionEvent, CollectionEventKind,
                     MachineAttributeEvent, MachineEvent, MachineEventKind,
                     TaskEvent, TaskEventKind)

__all__ = ["write_2019", "read_2019"]


def _event_record(event) -> dict:
    if isinstance(event, MachineEvent):
        return {"type": "machine_event", "time": event.time,
                "machine_id": event.machine_id, "event": int(event.kind),
                "platform": event.platform,
                "capacity": {"cpus": event.cpu, "memory": event.mem}}
    if isinstance(event, MachineAttributeEvent):
        return {"type": "machine_attribute", "time": event.time,
                "machine_id": event.machine_id, "name": event.attribute,
                "value": event.value, "deleted": event.deleted}
    if isinstance(event, CollectionEvent):
        return {"type": "collection_event", "time": event.time,
                "collection_id": event.collection_id, "event": int(event.kind),
                "user": event.user, "priority": event.priority,
                "scheduling_class": event.scheduling_class,
                "parent_id": event.parent_id,
                "alloc_set": event.is_alloc_set}
    if isinstance(event, TaskEvent):
        record = {"type": "instance_event", "time": event.time,
                  "collection_id": event.collection_id,
                  "instance_index": event.task_index, "event": int(event.kind),
                  "machine_id": event.machine_id,
                  "priority": event.priority,
                  "resource_request": {"cpus": event.cpu_request,
                                       "memory": event.mem_request}}
        if event.constraints:
            record["constraints"] = [
                {"name": c.attribute, "op": int(c.op), "value": c.value}
                for c in event.constraints]
        return record
    raise TraceFormatError(f"unknown event type {type(event).__name__}")


def write_2019(trace: CellTrace, path: str | Path) -> Path:
    """Serialize a trace to one JSON-lines file; returns the path."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for event in trace:
            fh.write(json.dumps(_event_record(event), separators=(",", ":")))
            fh.write("\n")
    return path


def _require(record: dict, key: str):
    try:
        return record[key]
    except KeyError:
        raise TraceFormatError(
            f"record missing required field {key!r}: {record}") from None


def _parse_record(record: dict):
    rtype = _require(record, "type")
    time = int(_require(record, "time"))
    if rtype == "machine_event":
        capacity = record.get("capacity", {})
        return MachineEvent(
            time=time, machine_id=int(_require(record, "machine_id")),
            kind=MachineEventKind(int(_require(record, "event"))),
            platform=record.get("platform", ""),
            cpu=float(capacity.get("cpus", 0.0)),
            mem=float(capacity.get("memory", 0.0)))
    if rtype == "machine_attribute":
        return MachineAttributeEvent(
            time=time, machine_id=int(_require(record, "machine_id")),
            attribute=_require(record, "name"),
            value=record.get("value"),
            deleted=bool(record.get("deleted", False)))
    if rtype == "collection_event":
        return CollectionEvent(
            time=time, collection_id=int(_require(record, "collection_id")),
            kind=CollectionEventKind(int(_require(record, "event"))),
            user=record.get("user", ""),
            priority=int(record.get("priority", 0)),
            scheduling_class=int(record.get("scheduling_class", 0)),
            parent_id=record.get("parent_id"),
            is_alloc_set=bool(record.get("alloc_set", False)))
    if rtype == "instance_event":
        request = record.get("resource_request", {})
        constraints = tuple(
            Constraint(attribute=c["name"],
                       op=ConstraintOperator(int(c["op"])),
                       value=c.get("value"))
            for c in record.get("constraints", ()))
        machine_id = record.get("machine_id")
        return TaskEvent(
            time=time, collection_id=int(_require(record, "collection_id")),
            task_index=int(_require(record, "instance_index")),
            kind=TaskEventKind(int(_require(record, "event"))),
            machine_id=None if machine_id is None else int(machine_id),
            priority=int(record.get("priority", 0)),
            cpu_request=float(request.get("cpus", 0.0)),
            mem_request=float(request.get("memory", 0.0)),
            constraints=constraints)
    raise TraceFormatError(f"unknown record type {rtype!r}")


def read_2019(path: str | Path, name: str | None = None) -> CellTrace:
    """Parse a JSON-lines trace file into a time-sorted CellTrace."""

    path = Path(path)
    trace = CellTrace(name or path.stem, format="2019")
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: invalid JSON ({exc})") from None
            trace.append(_parse_record(record))
    trace.sort()
    return trace
