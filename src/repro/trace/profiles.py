"""Per-cell workload profiles calibrated to the paper's published statistics.

The reproduction cannot redistribute Google Cluster Data, so each of the
four computing cells the paper evaluates (clusterdata-2011, -2019a, -2019c,
-2019d) is described by a :class:`CellProfile` that captures everything the
paper reports about it:

* cell size (9.4k machines for 2019a, 12.1k–12.6k otherwise; Section III.A),
* the grouping bin width (500 suitable nodes, 360 for 2019a; Section III.E),
* the Table IX tasks-with-CO bands (min/max/avg by volume, CPU, memory),
* the Group 0 incidence band (0.03%–1.17% of tasks; Section V),
* the constraint-operator vocabulary (4 ops for 2011, 8 for 2019),
* a feature-growth schedule shaped like Table XI (step 0 defines most
  values; later steps append a few dozen new attribute values each).

Profiles are pure data; :mod:`repro.trace.synthetic` turns them into event
streams at any ``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.operators import OPERATORS_2011, OPERATORS_2019
from .events import sim_time

__all__ = ["Band", "AttributeProfile", "GrowthStep", "CellProfile",
           "CELL_2011", "CELL_2019A", "CELL_2019C", "CELL_2019D",
           "PROFILES", "get_profile"]


@dataclass(frozen=True, slots=True)
class Band:
    """A (min, max, avg) percentage band from Table IX."""

    lo: float
    hi: float
    avg: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo <= self.avg <= self.hi <= 1.0):
            raise ValueError(f"inconsistent band {self}")


@dataclass(frozen=True, slots=True)
class AttributeProfile:
    """Static description of one machine attribute family.

    ``values_per_machine_frac`` — fraction of machines carrying the
    attribute; ``domain`` — number of distinct values at step 0 (0 means
    one unique value per machine, e.g. node ids); ``numeric`` — values are
    canonical integers usable with order operators; ``cataloged`` — machine
    -side values enter the CO-VV catalogue (large-domain attributes are
    cataloged lazily from constraint operands instead, keeping the feature
    array proportional to observed constraint vocabulary).
    """

    name: str
    domain: int
    coverage: float = 1.0
    numeric: bool = False
    cataloged: bool = True


@dataclass(frozen=True, slots=True)
class GrowthStep:
    """One feature-array extension event (a Table XI row).

    ``new_rack_values`` etc. control how many fresh attribute values the
    step introduces; constraints submitted after the step may reference
    them, which is what extends the CO-VV feature array.
    """

    day: int
    hour: int
    minute: int
    new_values: int

    @property
    def time(self) -> int:
        return sim_time(self.day, self.hour, self.minute)

    @property
    def label(self) -> str:
        return f"{self.day} {self.hour:02d}:{self.minute:02d}"


@dataclass(frozen=True, slots=True)
class CellProfile:
    """Everything needed to synthesize one computing cell's trace."""

    name: str
    format: str                      # "2011" | "2019"
    full_machines: int
    group_bin_full: int              # 500, or 360 for the smaller 2019a cell
    days: int
    co_volume: Band                  # Table IX: tasks with CO by volume
    co_cpu: Band                     # Table IX: by requested CPU
    co_mem: Band                     # Table IX: by requested memory
    group0_rate: float               # fraction of tasks suiting exactly 1 node
    tasks_per_day_full: int
    attributes: tuple[AttributeProfile, ...]
    growth_steps: tuple[GrowthStep, ...]
    resource_pareto_alpha: float = 1.1   # heavy-tailed (top 1% ≫, Section V)
    mean_tasks_per_collection: float = 4.0
    machine_churn_per_day: float = 0.002

    def __post_init__(self) -> None:
        if self.format not in ("2011", "2019"):
            raise ValueError("profile format must be '2011' or '2019'")
        if not 0.0 < self.group0_rate < 0.05:
            raise ValueError("group0_rate outside the paper's plausible band")
        steps = sorted(s.time for s in self.growth_steps)
        if steps != [s.time for s in self.growth_steps]:
            raise ValueError("growth steps must be time-ordered")
        if self.growth_steps and self.growth_steps[0].time != 0:
            raise ValueError("step zero must exist (most values are defined there)")

    @property
    def operators(self):
        return OPERATORS_2011 if self.format == "2011" else OPERATORS_2019

    def machines_at_scale(self, scale: float) -> int:
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        return max(60, round(self.full_machines * scale))

    def group_bin_at_scale(self, scale: float) -> int:
        """Bin width preserving the 26-group scheme at reduced cell size."""

        if scale == 1.0:
            return self.group_bin_full
        machines = self.machines_at_scale(scale)
        return max(1, -(-machines // 25))  # ceil division

    def tasks_per_day_at_scale(self, scale: float) -> int:
        # Task volume shrinks super-linearly with cell size: a bench-scale
        # cell needs only enough tasks to populate the 26 groups, not a
        # proportional slice of Google's submission rate.
        return max(20, round(self.tasks_per_day_full * scale ** 1.5))


_COMMON_ATTRIBUTES = (
    AttributeProfile("platform", domain=3),
    AttributeProfile("zone", domain=8),
    AttributeProfile("rack", domain=40),
    AttributeProfile("tier", domain=4, coverage=0.8),
    AttributeProfile("AM", domain=10, coverage=0.7, numeric=True),
    AttributeProfile("kernel", domain=5, coverage=0.9),
    AttributeProfile("gpu", domain=1, coverage=0.1),
    AttributeProfile("rank", domain=0, numeric=True, cataloged=False),
    AttributeProfile("node_id", domain=0, cataloged=False),
)


def _steps(*triples: tuple[int, int, int, int]) -> tuple[GrowthStep, ...]:
    return tuple(GrowthStep(d, h, m, n) for d, h, m, n in triples)


CELL_2011 = CellProfile(
    name="clusterdata-2011",
    format="2011",
    full_machines=12_500,
    group_bin_full=500,
    days=29,
    co_volume=Band(0.081, 0.413, 0.205),
    co_cpu=Band(0.178, 0.455, 0.256),
    co_mem=Band(0.060, 0.363, 0.217),
    group0_rate=0.0035,
    tasks_per_day_full=140_000,
    attributes=_COMMON_ATTRIBUTES,
    growth_steps=_steps((0, 0, 0, 0), (3, 7, 40, 24), (8, 2, 15, 18),
                        (13, 11, 5, 30), (19, 16, 50, 22), (25, 9, 30, 16)),
)

CELL_2019A = CellProfile(
    name="clusterdata-2019a",
    format="2019",
    full_machines=9_400,
    group_bin_full=360,
    days=31,
    co_volume=Band(0.166, 0.626, 0.418),
    co_cpu=Band(0.174, 0.648, 0.383),
    co_mem=Band(0.199, 0.747, 0.485),
    group0_rate=0.0117,
    tasks_per_day_full=420_000,
    attributes=_COMMON_ATTRIBUTES,
    growth_steps=_steps((0, 0, 0, 0), (3, 14, 25, 28), (6, 3, 10, 20),
                        (9, 20, 45, 26), (14, 8, 0, 32), (18, 13, 35, 18),
                        (23, 5, 55, 24), (28, 17, 20, 20)),
)

CELL_2019C = CellProfile(
    name="clusterdata-2019c",
    format="2019",
    full_machines=12_300,
    group_bin_full=500,
    days=31,
    co_volume=Band(0.113, 0.493, 0.220),
    co_cpu=Band(0.106, 0.602, 0.219),
    co_mem=Band(0.106, 0.601, 0.229),
    group0_rate=0.0046,
    tasks_per_day_full=380_000,
    attributes=_COMMON_ATTRIBUTES,
    growth_steps=_steps((0, 0, 0, 0), (3, 9, 30, 26), (5, 22, 5, 18),
                        (8, 4, 45, 22), (10, 15, 10, 30), (13, 1, 50, 20),
                        (16, 19, 25, 24), (19, 6, 0, 16), (22, 12, 40, 28),
                        (25, 3, 15, 22), (28, 21, 55, 18), (30, 10, 30, 20)),
)

CELL_2019D = CellProfile(
    name="clusterdata-2019d",
    format="2019",
    full_machines=12_600,
    group_bin_full=500,
    days=31,
    co_volume=Band(0.082, 0.339, 0.136),
    co_cpu=Band(0.087, 0.337, 0.159),
    co_mem=Band(0.079, 0.507, 0.149),
    group0_rate=0.0003,
    tasks_per_day_full=350_000,
    attributes=_COMMON_ATTRIBUTES,
    growth_steps=_steps((0, 0, 0, 0), (3, 6, 20, 22), (6, 13, 45, 26),
                        (9, 1, 10, 18), (12, 18, 35, 24), (16, 10, 0, 28),
                        (20, 23, 25, 20), (24, 14, 50, 22), (28, 7, 15, 26),
                        (30, 19, 40, 16)),
)

PROFILES: dict[str, CellProfile] = {
    "clusterdata-2011": CELL_2011,
    "clusterdata-2019a": CELL_2019A,
    "clusterdata-2019c": CELL_2019C,
    "clusterdata-2019d": CELL_2019D,
    # Short aliases.
    "2011": CELL_2011,
    "2019a": CELL_2019A,
    "2019c": CELL_2019C,
    "2019d": CELL_2019D,
}


def get_profile(name: str) -> CellProfile:
    """Look up a cell profile by full name or short alias."""

    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; choose from "
            f"{sorted(k for k in PROFILES if k.startswith('cluster'))}") from None
